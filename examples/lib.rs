//! Placeholder library target for the `gunrock-examples` package; the
//! runnable binaries live in the adjacent `*.rs` example files.
