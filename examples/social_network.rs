//! Social-network analytics: the workload class the paper's intro
//! motivates. On a scale-free "social" graph, compute PageRank
//! (influence), single-source betweenness (brokerage), and connected
//! components (communities), then cross-reference the three.
//!
//! Run with: `cargo run --release -p gunrock-examples --example social_network`

use gunrock::prelude::*;
use gunrock_algos::{bc, cc, pagerank};
use gunrock_graph::prelude::*;

fn top_k(scores: &[f64], k: usize) -> Vec<(u32, f64)> {
    let mut idx: Vec<(u32, f64)> =
        scores.iter().enumerate().map(|(v, &s)| (v as u32, s)).collect();
    idx.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    idx.truncate(k);
    idx
}

fn main() {
    // A LiveJournal-like social topology (mild power-law skew).
    let coo = generators::rmat(13, 16, generators::RmatParams::social(), 7);
    let graph = GraphBuilder::new().build(coo);
    println!(
        "social graph: {} members, {} ties, max degree {}",
        graph.num_vertices(),
        graph.num_edges() / 2,
        graph.max_degree()
    );

    // Influence: PageRank over the whole graph.
    let ctx = Context::new(&graph);
    let pr =
        pagerank::pagerank(&ctx, pagerank::PrOptions { epsilon: 1e-12, ..Default::default() });
    println!(
        "\nPageRank converged in {} iterations ({:.1} ms)",
        pr.iterations,
        pr.elapsed.as_secs_f64() * 1e3
    );
    println!("top influencers (vertex, score):");
    for (v, s) in top_k(&pr.scores, 5) {
        println!("  #{v:<6} score {s:.5}  degree {}", graph.out_degree(v));
    }

    // Brokerage: betweenness contributions from the most influential seed.
    let seed = top_k(&pr.scores, 1)[0].0;
    let ctx = Context::new(&graph);
    let bc_r = bc::bc(&ctx, seed, bc::BcOptions::default());
    println!(
        "\nBC pass from seed #{seed}: {} iterations, {:.1} ms",
        bc_r.iterations,
        bc_r.elapsed.as_secs_f64() * 1e3
    );
    println!("top brokers on shortest paths from #{seed}:");
    for (v, s) in top_k(&bc_r.bc_values, 5) {
        println!("  #{v:<6} dependency {s:.1}");
    }

    // Communities: connected components.
    let ctx = Context::new(&graph);
    let cc_r = cc::cc(&ctx);
    let giant = {
        let mut counts = std::collections::HashMap::new();
        for &l in &cc_r.labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        counts.values().copied().max().unwrap_or(0)
    };
    println!(
        "\ncomponents: {} total; giant component holds {} / {} members",
        cc_r.num_components,
        giant,
        graph.num_vertices()
    );
}
