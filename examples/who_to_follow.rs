//! Twitter-style "who to follow" (§5.5, after Geil et al.'s "WTF,
//! GPU!"): personalized PageRank builds a circle of trust, SALSA ranks
//! the accounts that circle engages with, and already-followed accounts
//! are excluded.
//!
//! Run with: `cargo run --release -p gunrock-examples --example who_to_follow`

use gunrock::prelude::*;
use gunrock_algos::bipartite::{hits, salsa, who_to_follow};
use gunrock_graph::prelude::*;

fn main() {
    // A follower graph: 6000 users following 3000 accounts, follow
    // counts and popularity both skewed.
    let (coo, shape) = generators::bipartite_random(6000, 3000, 12, 2024);
    let directed = GraphBuilder::new().directed().build(coo);
    let reverse = directed.transpose();
    println!(
        "follower graph: {} users -> {} accounts, {} follow edges",
        shape.n_left,
        shape.n_right,
        directed.num_edges()
    );

    // Global hub/authority structure for context.
    let ctx = Context::new(&directed).with_reverse(&reverse);
    let h = hits(&ctx, shape.n_left, 25);
    let s = salsa(&ctx, shape.n_left, 25);
    let best_auth = (shape.n_left..shape.n_left + shape.n_right)
        .max_by(|&a, &b| h.auths[a].total_cmp(&h.auths[b]))
        .unwrap();
    println!(
        "\nHITS top authority: account #{} (auth {:.4}, salsa {:.4}, followers {})",
        best_auth,
        h.auths[best_auth],
        s.auths[best_auth],
        reverse.out_degree(best_auth as u32)
    );

    // Recommendations for one user. PPR walks both directions (user ->
    // account -> co-follower), so it runs on the symmetrized graph; the
    // final SALSA push uses the directed engagements.
    let user: VertexId = 17;
    let undirected = GraphBuilder::new().build(directed.to_coo());
    let ctx = Context::new(&undirected).with_reverse(&reverse);
    let recs = who_to_follow(&ctx, user, shape.n_left, 40, 8);
    println!("\nuser #{user} follows {} accounts; recommending:", directed.out_degree(user));
    for (rank, r) in recs.iter().enumerate() {
        println!(
            "  {}. account #{:<5} score {:.5} ({} followers)",
            rank + 1,
            r.vertex,
            r.score,
            reverse.out_degree(r.vertex)
        );
    }
    assert!(!recs.is_empty(), "a connected user always gets suggestions");
}
