//! Dataset I/O tour: generate a benchmark-style graph, persist it in
//! both supported formats, reload, and verify the analytics survive the
//! round trip — the workflow for caching generated datasets between
//! benchmark runs.
//!
//! Run with: `cargo run --release -p gunrock-examples --example graph_io`

use gunrock::prelude::*;
use gunrock_algos::cc::cc;
use gunrock_graph::io;
use gunrock_graph::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("gunrock_io_example");
    std::fs::create_dir_all(&dir)?;

    // Generate a mid-sized Kronecker graph with SSSP weights.
    let coo = generators::rmat(13, 16, generators::RmatParams::graph500(), 99);
    let graph = GraphBuilder::new().random_weights(1, 64, 99).build(coo);
    println!(
        "generated: {} vertices, {} edges, weighted: {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.edge_values().is_some()
    );

    // Binary CSR: compact and instant to reload.
    let bin = dir.join("kron.bin");
    io::write_csr_binary(&graph, std::fs::File::create(&bin)?)?;
    let reloaded = io::load_graph(&bin)?;
    println!(
        "binary file: {} KiB -> reloaded {} vertices",
        std::fs::metadata(&bin)?.len() / 1024,
        reloaded.num_vertices()
    );
    assert_eq!(reloaded.col_indices(), graph.col_indices());
    assert_eq!(reloaded.edge_values(), graph.edge_values());

    // Text edge list: interchange with other tools (SNAP-style).
    let txt = dir.join("kron.txt");
    io::write_edge_list(&graph.to_coo(), std::fs::File::create(&txt)?)?;
    let from_text = io::load_graph(&txt)?;
    println!(
        "edge list:   {} KiB -> rebuilt {} vertices",
        std::fs::metadata(&txt)?.len() / 1024,
        from_text.num_vertices()
    );

    // Analytics agree across all three copies.
    let comps = |g: &Csr| {
        let ctx = Context::new(g);
        cc(&ctx).num_components
    };
    let (a, b, c) = (comps(&graph), comps(&reloaded), comps(&from_text));
    assert_eq!(a, b);
    assert_eq!(a, c);
    println!("connected components agree across formats: {a}");

    std::fs::remove_dir_all(&dir)?;
    println!("cleaned up {}", dir.display());
    Ok(())
}
