//! Quickstart: build a graph, run BFS, inspect the results.
//!
//! Run with: `cargo run --release -p gunrock-examples --example quickstart`

use gunrock::prelude::*;
use gunrock_algos::bfs::{bfs, BfsOptions};
use gunrock_graph::prelude::*;

fn main() {
    // 1. Generate a scale-free graph (Graph500 Kronecker parameters) and
    //    prepare it the way the paper does: undirected, deduplicated.
    let coo = generators::rmat(14, 16, generators::RmatParams::graph500(), 42);
    let graph = GraphBuilder::new().build(coo);
    let stats = graph_stats(&graph);
    println!(
        "graph: {} vertices, {} directed edges, max degree {}, diameter ~{}",
        stats.vertices, stats.edges, stats.max_degree, stats.pseudo_diameter
    );

    // 2. Run direction-optimized BFS from vertex 0. The context carries
    //    the reverse graph for pull traversal (the graph itself, since
    //    it is undirected).
    let ctx = Context::new(&graph).with_reverse(&graph);
    let result = bfs(&ctx, 0, BfsOptions::direction_optimized());

    // 3. Inspect.
    let reached = result.labels.iter().filter(|&&l| l != INFINITY).count();
    let max_depth = result.labels.iter().filter(|&&l| l != INFINITY).max().unwrap();
    println!(
        "BFS reached {} / {} vertices, max depth {}, {} iterations ({} pull)",
        reached, stats.vertices, max_depth, result.iterations, result.pull_iterations
    );
    println!(
        "traversed {} edges in {:.2} ms -> {:.1} MTEPS",
        result.edges_examined,
        result.elapsed.as_secs_f64() * 1e3,
        result.mteps()
    );

    // 4. The predecessor array is a BFS tree: walk a path back to the
    //    source from the deepest vertex.
    let far = result
        .labels
        .iter()
        .enumerate()
        .filter(|&(_, &l)| l != INFINITY)
        .max_by_key(|&(_, &l)| l)
        .map(|(v, _)| v as u32)
        .unwrap();
    let mut path = vec![far];
    let mut cur = far;
    while result.preds[cur as usize] != INVALID_VERTEX {
        cur = result.preds[cur as usize];
        path.push(cur);
    }
    path.reverse();
    println!("example shortest hop path 0 -> {far}: {path:?}");
}
