//! Road-network routing: the large-diameter workload class (roadNet-CA
//! in the paper). Builds a perturbed grid road map with travel-time
//! weights, runs near-far delta-stepping SSSP, reconstructs a route from
//! the shortest-path tree, and shows the priority queue's work savings
//! over plain Bellman-Ford iteration.
//!
//! Run with: `cargo run --release -p gunrock-examples --example road_navigation`

use gunrock::prelude::*;
use gunrock_algos::sssp::{sssp, SsspOptions};
use gunrock_graph::prelude::*;

fn main() {
    // A 192x96 city grid with 5% closed roads, 2% diagonal shortcuts,
    // and travel times 1..=64 per segment.
    let coo = generators::grid2d(192, 96, 0.05, 0.02, 11);
    let graph = GraphBuilder::new().random_weights(1, 64, 11).build(coo);
    println!(
        "road network: {} intersections, {} road segments, diameter ~{}",
        graph.num_vertices(),
        graph.num_edges() / 2,
        gunrock_graph::stats::pseudo_diameter(&graph)
    );

    // Route from the north-west corner.
    let src: VertexId = 0;
    let ctx = Context::new(&graph);
    let nearfar = sssp(&ctx, src, SsspOptions::default());
    println!(
        "\nnear-far SSSP: {:.1} ms, {} iterations, {} edge relax attempts",
        nearfar.elapsed.as_secs_f64() * 1e3,
        nearfar.iterations,
        nearfar.edges_examined
    );

    let ctx = Context::new(&graph);
    let bellman =
        sssp(&ctx, src, SsspOptions { use_priority_queue: false, ..Default::default() });
    println!(
        "plain Bellman-Ford: {:.1} ms, {} iterations, {} edge relax attempts",
        bellman.elapsed.as_secs_f64() * 1e3,
        bellman.iterations,
        bellman.edges_examined
    );
    assert_eq!(nearfar.dist, bellman.dist, "both must agree");
    println!(
        "priority queue saved {:.0}% of edge relaxations",
        (1.0 - nearfar.edges_examined as f64 / bellman.edges_examined as f64) * 100.0
    );

    // Reconstruct the route to the farthest reachable intersection.
    let dest = nearfar
        .dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != INFINITY)
        .max_by_key(|&(_, &d)| d)
        .map(|(v, _)| v as u32)
        .unwrap();
    let mut route = vec![dest];
    let mut cur = dest;
    while nearfar.preds[cur as usize] != INVALID_VERTEX {
        cur = nearfar.preds[cur as usize];
        route.push(cur);
    }
    route.reverse();
    println!(
        "\nfastest route {src} -> {dest}: {} segments, travel time {}",
        route.len() - 1,
        nearfar.dist[dest as usize]
    );
    let preview: Vec<u32> = route.iter().copied().take(8).collect();
    println!("route preview: {preview:?} ...");
    // verify the route is a real path with the claimed cost
    let mut cost = 0u32;
    for w in route.windows(2) {
        let e = graph
            .edge_range(w[0])
            .find(|&e| graph.col_indices()[e] == w[1])
            .expect("route uses real road segments");
        cost += graph.weight(e as u32);
    }
    assert_eq!(cost, nearfar.dist[dest as usize]);
    println!("route verified: segment costs sum to the reported distance");
}
