#!/usr/bin/env python3
"""Regression gate between two gunrock-bench/v1 snapshots.

Compares the Gunrock MTEPS of every (primitive, dataset) pair in the new
snapshot against the baseline, prints a markdown delta table, and exits
non-zero if any pair regressed by more than the threshold (default 10%).

    python3 scripts/bench_compare.py                       # pr5 -> pr7
    python3 scripts/bench_compare.py --base A.json --new B.json \
        --threshold 0.10 --markdown-out delta.md

The default pairing (BENCH_pr5.json -> BENCH_pr7.json) gates the
bitmap-frontier work: the masked word-sweep pull/culling paths must not
cost throughput anywhere (and should win big on the pull-heavy bulk
pairs), and the CI job fails the build if any pair regresses.
"""

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def load(path: pathlib.Path) -> dict:
    if not path.exists():
        sys.exit(f"missing {path}: run "
                 "`cargo run --release -p gunrock-bench --bin bench_json` first")
    data = json.loads(path.read_text())
    if data.get("schema") != "gunrock-bench/v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def by_pair(data: dict) -> dict:
    return {(m["primitive"], m["dataset"]): m for m in data["measurements"]}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", default=str(ROOT / "BENCH_pr5.json"),
                    help="baseline snapshot (default: BENCH_pr5.json)")
    ap.add_argument("--new", dest="new", default=str(ROOT / "BENCH_pr7.json"),
                    help="candidate snapshot (default: BENCH_pr7.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated MTEPS regression fraction (default 0.10)")
    ap.add_argument("--markdown-out", default=None,
                    help="also write the delta table to this file")
    args = ap.parse_args()

    base = load(pathlib.Path(args.base))
    new = load(pathlib.Path(args.new))
    if base.get("scale") != new.get("scale"):
        sys.exit(f"scale mismatch: base {base.get('scale')} vs new {new.get('scale')} "
                 "- snapshots are not comparable")

    base_pairs, new_pairs = by_pair(base), by_pair(new)
    missing = sorted(set(base_pairs) - set(new_pairs))
    if missing:
        sys.exit(f"candidate snapshot lost pairs: {missing}")

    lines = [
        "| Primitive | Dataset | base MTEPS | new MTEPS | speedup | base ms | new ms |",
        "|---|---|---:|---:|---:|---:|---:|",
    ]
    failures = []
    for key in sorted(base_pairs):
        b, n = base_pairs[key], new_pairs[key]
        speedup = n["mteps"] / b["mteps"] if b["mteps"] > 0 else float("inf")
        lines.append(
            f"| {key[0]} | {key[1]} | {b['mteps']:.1f} | {n['mteps']:.1f} "
            f"| {speedup:.2f}x | {b['millis']:.3f} | {n['millis']:.3f} |"
        )
        if speedup < 1.0 - args.threshold:
            failures.append(
                f"{key[0]}/{key[1]}: {b['mteps']:.1f} -> {n['mteps']:.1f} MTEPS "
                f"({(1.0 - speedup) * 100:.1f}% regression, "
                f"threshold {args.threshold * 100:.0f}%)"
            )

    table = "\n".join(lines)
    print(table)
    if args.markdown_out:
        pathlib.Path(args.markdown_out).write_text(table + "\n")

    if failures:
        print(f"\nFAIL: {len(failures)} pair(s) regressed beyond "
              f"{args.threshold * 100:.0f}%:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nok: no (primitive, dataset) pair regressed beyond "
          f"{args.threshold * 100:.0f}% ({len(base_pairs)} pairs compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
