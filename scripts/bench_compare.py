#!/usr/bin/env python3
"""Regression gate between two gunrock-bench/v1 snapshots.

Compares the Gunrock MTEPS of every (primitive, dataset) pair in the new
snapshot against the baseline, prints a markdown delta table, and exits
non-zero if any pair regressed by more than the threshold (default 10%).

    python3 scripts/bench_compare.py                       # pr7 -> pr10
    python3 scripts/bench_compare.py --base A.json --new B.json \
        --threshold 0.10 --msbfs-min 8.0 --markdown-out delta.md

The default pairing (BENCH_pr7.json -> BENCH_pr10.json) gates the
MS-BFS work two ways:

* no single-source (primitive, dataset) pair may lose more than the
  threshold — the lane-packed machinery must be free when unused;
* the candidate's `msbfs` section (batched vs sequential aggregate
  source-throughput on the R-MAT graph) must clear `--msbfs-min`
  (default 8x) speedup at its lane count. A baseline without the
  section (pre-MS-BFS snapshots) only skips the cross-snapshot
  sources/sec comparison, not the gate.
"""

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def load(path: pathlib.Path) -> dict:
    if not path.exists():
        sys.exit(f"missing {path}: run "
                 "`cargo run --release -p gunrock-bench --bin bench_json` first")
    data = json.loads(path.read_text())
    if data.get("schema") != "gunrock-bench/v1":
        sys.exit(f"{path}: unexpected schema {data.get('schema')!r}")
    return data


def by_pair(data: dict) -> dict:
    return {(m["primitive"], m["dataset"]): m for m in data["measurements"]}


def msbfs_rows(data: dict) -> dict:
    """Index a snapshot's optional `msbfs` section by (scale, sources)."""
    return {(m["scale"], m["sources"]): m for m in data.get("msbfs", [])}


def compare_msbfs(base: dict, new: dict, msbfs_min: float,
                  lines: list, failures: list) -> int:
    """Gate and tabulate the batched source-throughput section."""
    new_rows, base_rows = msbfs_rows(new), msbfs_rows(base)
    if not new_rows:
        failures.append(
            "candidate snapshot has no `msbfs` section: regenerate with "
            "`bench_json --msbfs-scale 16 --sources 64`"
        )
        return 0
    lines += [
        "",
        "| MS-BFS | sources | batched sps | sequential sps | speedup "
        "| vs base sps |",
        "|---|---:|---:|---:|---:|---:|",
    ]
    for key in sorted(new_rows):
        m = new_rows[key]
        b = base_rows.get(key)
        vs_base = (
            f"{m['batched_sources_per_sec'] / b['batched_sources_per_sec']:.2f}x"
            if b and b["batched_sources_per_sec"] > 0 else "—"
        )
        lines.append(
            f"| kron s{key[0]} | {key[1]} | {m['batched_sources_per_sec']:.0f} "
            f"| {m['sequential_sources_per_sec']:.0f} | {m['speedup']:.2f}x "
            f"| {vs_base} |"
        )
        if m["speedup"] < msbfs_min:
            failures.append(
                f"msbfs kron s{key[0]} x{key[1]}: {m['speedup']:.2f}x batched "
                f"source-throughput, below the {msbfs_min:.1f}x floor"
            )
    return len(new_rows)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--base", default=str(ROOT / "BENCH_pr7.json"),
                    help="baseline snapshot (default: BENCH_pr7.json)")
    ap.add_argument("--new", dest="new", default=str(ROOT / "BENCH_pr10.json"),
                    help="candidate snapshot (default: BENCH_pr10.json)")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated MTEPS regression fraction (default 0.10)")
    ap.add_argument("--msbfs-min", type=float, default=8.0,
                    help="min batched/sequential source-throughput speedup the "
                         "candidate's msbfs section must show (default 8.0; "
                         "0 disables the gate)")
    ap.add_argument("--markdown-out", default=None,
                    help="also write the delta table to this file")
    args = ap.parse_args()

    base = load(pathlib.Path(args.base))
    new = load(pathlib.Path(args.new))
    if base.get("scale") != new.get("scale"):
        sys.exit(f"scale mismatch: base {base.get('scale')} vs new {new.get('scale')} "
                 "- snapshots are not comparable")

    base_pairs, new_pairs = by_pair(base), by_pair(new)
    missing = sorted(set(base_pairs) - set(new_pairs))
    if missing:
        sys.exit(f"candidate snapshot lost pairs: {missing}")

    lines = [
        "| Primitive | Dataset | base MTEPS | new MTEPS | speedup | base ms | new ms |",
        "|---|---|---:|---:|---:|---:|---:|",
    ]
    failures = []
    for key in sorted(base_pairs):
        b, n = base_pairs[key], new_pairs[key]
        speedup = n["mteps"] / b["mteps"] if b["mteps"] > 0 else float("inf")
        lines.append(
            f"| {key[0]} | {key[1]} | {b['mteps']:.1f} | {n['mteps']:.1f} "
            f"| {speedup:.2f}x | {b['millis']:.3f} | {n['millis']:.3f} |"
        )
        if speedup < 1.0 - args.threshold:
            failures.append(
                f"{key[0]}/{key[1]}: {b['mteps']:.1f} -> {n['mteps']:.1f} MTEPS "
                f"({(1.0 - speedup) * 100:.1f}% regression, "
                f"threshold {args.threshold * 100:.0f}%)"
            )

    msbfs_compared = 0
    if args.msbfs_min > 0:
        msbfs_compared = compare_msbfs(base, new, args.msbfs_min, lines, failures)

    table = "\n".join(lines)
    print(table)
    if args.markdown_out:
        pathlib.Path(args.markdown_out).write_text(table + "\n")

    if failures:
        print(f"\nFAIL: {len(failures)} gate(s) tripped "
              f"(threshold {args.threshold * 100:.0f}%, "
              f"msbfs floor {args.msbfs_min:.1f}x):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    ok = (f"\nok: no (primitive, dataset) pair regressed beyond "
          f"{args.threshold * 100:.0f}% ({len(base_pairs)} pairs compared")
    if msbfs_compared:
        ok += f"; {msbfs_compared} msbfs row(s) clear the {args.msbfs_min:.1f}x floor"
    print(ok + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())
