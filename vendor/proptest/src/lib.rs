//! Offline API-compatible shim for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no crates registry, so the workspace vendors
//! a mini property-testing engine covering the API surface the test
//! suites use: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`/`boxed`, `Just`, numeric-range and tuple
//! strategies, `any::<T>()`, `prop_oneof!`, `collection::{vec,
//! btree_set}`, `ProptestConfig::with_cases`, and the
//! `prop_assert*`/`prop_assume!` macros (see `vendor/README.md`).
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test splitmix64 stream (seeded from the test name), there is **no
//! shrinking** (a failure reports the case index so it can be replayed by
//! reading the generated inputs), and rejected cases (`prop_assume!`)
//! are retried up to a bounded factor rather than tracked by a global
//! rejection quota.

// vendored shim: exempt from the workspace lint bar
#![allow(clippy::all)]

use std::fmt;
use std::marker::PhantomData;

/// Deterministic per-case RNG (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
///
/// Unlike upstream there is no value tree / shrinking: `generate`
/// produces the final value directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<F, U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> S,
        S: Strategy,
    {
        FlatMap { base: self, f }
    }

    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, f, reason }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F, U> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

/// `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F, S2> Strategy for FlatMap<S, F>
where
    F: Fn(S::Value) -> S2,
    S2: Strategy,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// `prop_filter` adapter: regenerates until the predicate passes
/// (bounded; panics if the predicate rejects essentially everything).
pub struct Filter<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F> Strategy for Filter<S, F>
where
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive cases: {}", self.reason);
    }
}

/// Constant strategy.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.unit_f64() as f32
    }
}

/// Strategy for any value of `T`; see [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Weighted union of same-valued strategies; built by `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new_weighted(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
        let total_weight = variants.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union { variants, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;
    use std::collections::BTreeSet;

    /// Size specifications accepted by collection strategies.
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for ordered sets; collisions are retried a bounded number
    /// of times, so the result can be smaller than the requested minimum
    /// when the element domain is tiny.
    pub struct BTreeSetStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S> {
        let (min, max) = size.bounds();
        BTreeSetStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = if self.max > self.min {
                self.min + rng.below((self.max - self.min + 1) as u64) as usize
            } else {
                self.min
            };
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip this case, try another.
    Reject(String),
    /// A `prop_assert*` failed: the property is falsified.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; this sequential shim uses fewer to
        // keep the (unparallelized) suites fast. Raise per-test with
        // `#![proptest_config(ProptestConfig::with_cases(n))]`.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    pub use super::{ProptestConfig, TestCaseError, TestRng};

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Drives one property: runs cases until `config.cases` pass,
    /// retrying rejected cases up to a bounded budget.
    pub fn run_property<F>(name: &str, config: ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base_seed = fnv1a(name);
        let mut passed = 0u32;
        let mut attempt = 0u64;
        let max_attempts = config.cases as u64 * 20 + 100;
        while passed < config.cases {
            if attempt >= max_attempts {
                panic!(
                    "proptest '{name}': too many rejected cases \
                     ({passed}/{} passed after {attempt} attempts)",
                    config.cases
                );
            }
            let mut rng = TestRng::new(base_seed.wrapping_add(attempt.wrapping_mul(0x9e37)));
            let this_attempt = attempt;
            attempt += 1;
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest '{name}' falsified at attempt {this_attempt}: {msg}")
                }
            }
        }
    }
}

/// The proptest prelude.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
    pub mod proptest_crate {
        pub use crate::*;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "{} ({:?} == {:?})", format!($($fmt)*), l, r);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_property(
                    stringify!($name),
                    $config,
                    |__proptest_rng: &mut $crate::TestRng| {
                        $(let $pat = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn assume_skips(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn flat_map_respects_bound(
            (n, k) in (1usize..50).prop_flat_map(|n| (Just(n), 0usize..n))
        ) {
            prop_assert!(k < n);
        }
    }

    #[test]
    fn vec_strategy_length_in_bounds() {
        let s = crate::collection::vec(0u32..10, 2..=5);
        let mut rng = TestRng::new(99);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((2..=5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn oneof_covers_all_variants() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::new(7);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&s, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
