//! Offline API-compatible shim for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no crates registry, so the workspace vendors
//! a plain timing harness exposing the criterion surface the benches use:
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, throughput, bench_with_input,
//! bench_function, finish}`, `BenchmarkId`, `Throughput`, and
//! `black_box` (see `vendor/README.md`). Each benchmark runs a short
//! warmup plus `sample_size` timed iterations and prints mean wall-clock
//! time (and derived throughput) — no statistics, plots, or baselines.

// vendored shim: exempt from the workspace lint bar
#![allow(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Per-iteration timer handle passed to benchmark closures.
pub struct Bencher {
    /// Total time across timed iterations.
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // one warmup call outside the timer
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: u32,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        self.run(id.into(), |b| f(b, input));
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut f = f;
        self.run(id.into(), |b| f(b));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        // keep the shim quick: a handful of timed iterations regardless
        // of the requested statistical sample size
        let iters = self.sample_size.min(10);
        let mut b = Bencher { elapsed: Duration::ZERO, iters };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.2} Melem/s", n as f64 / mean / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.2} MiB/s", n as f64 / mean / (1024.0 * 1024.0))
            }
            _ => String::new(),
        };
        println!("bench {}/{}  {:.3} ms/iter{}", self.name, id, mean * 1e3, rate);
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        let mut f = f;
        group.bench_function(BenchmarkId::from(name), |b| f(b));
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
