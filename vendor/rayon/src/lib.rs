//! Offline API-compatible shim for [rayon](https://crates.io/crates/rayon).
//!
//! This build environment has no access to a crates registry, so the
//! workspace vendors a minimal, std-only implementation of the rayon API
//! surface it uses (see `vendor/README.md`). Combinator chains execute
//! **sequentially** with identical semantics; the `ParIter` wrapper keeps
//! the rayon method names (`par_iter`, `reduce(identity, op)`,
//! `flat_map_iter`, ...) so source code is unchanged and swapping the real
//! rayon back in is a one-line Cargo.toml edit per crate.
//!
//! Because execution is sequential, code that uses atomics for
//! cross-thread accumulation still works (the operations are simply
//! uncontended), and every algebraic law the engine's tests check holds
//! trivially.

// vendored shim: exempt from the workspace lint bar
#![allow(clippy::all)]

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

thread_local! {
    /// Thread count of the innermost `ThreadPool::install` scope, if any.
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Fast-path flag: is a job-start hook installed? Checked with one
/// relaxed load before touching the mutex, so the hook costs nothing
/// when absent.
static JOB_HOOK_INSTALLED: AtomicBool = AtomicBool::new(false);
/// The process-wide job-start hook (fault injection uses this to panic
/// "inside a worker" deterministically).
static JOB_HOOK: Mutex<Option<Arc<dyn Fn() + Send + Sync>>> = Mutex::new(None);

/// Installs (with `Some`) or removes (with `None`) a process-wide hook
/// invoked at the start of every terminal parallel operation
/// (`for_each`, `reduce`, `collect`, ...). Real rayon has no such API;
/// the shim grows it so a fault-injection harness can simulate worker
/// panics at job granularity. The hook may panic — the panic propagates
/// out of the parallel call exactly like a worker panic would.
pub fn set_job_start_hook(hook: Option<Arc<dyn Fn() + Send + Sync>>) {
    JOB_HOOK_INSTALLED.store(hook.is_some(), Ordering::Release);
    match JOB_HOOK.lock() {
        Ok(mut slot) => *slot = hook,
        Err(poisoned) => *poisoned.into_inner() = hook,
    }
}

/// Runs the installed job-start hook, if any. Called by every terminal
/// operation; one relaxed atomic load when no hook is installed.
#[inline]
fn job_start() {
    if JOB_HOOK_INSTALLED.load(Ordering::Acquire) {
        let hook = match JOB_HOOK.lock() {
            Ok(slot) => slot.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        };
        // the lock is released before the hook runs, so a panicking hook
        // cannot poison the slot for subsequent jobs
        if let Some(h) = hook {
            h();
        }
    }
}

/// Number of worker threads the pool would use. The shim reports the
/// machine's available parallelism so chunk-size heuristics in callers
/// exercise their "parallel" code paths, even though execution here is
/// sequential. Inside a [`ThreadPool::install`] scope it reports that
/// pool's configured size instead, so grain-size heuristics respond to
/// pool configuration exactly as they would under real rayon.
pub fn current_num_threads() -> usize {
    POOL_THREADS
        .with(|p| p.get())
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Shim of `rayon::ThreadPool`: carries a configured thread count that
/// [`current_num_threads`] reports inside `install`, so callers'
/// chunk-size heuristics see the pool size; execution stays sequential.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `f` "inside" the pool: sequentially, but with
    /// [`current_num_threads`] reporting this pool's size for the
    /// duration (restored on exit, even on panic).
    pub fn install<R, F>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|p| p.set(self.0));
            }
        }
        let _guard = Restore(POOL_THREADS.with(|p| p.replace(Some(self.num_threads))));
        f()
    }

    /// The configured worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Shim of `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with rayon's defaults (0 = automatic thread count).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; as in rayon, `0` means automatic.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool. The shim cannot fail.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// Error type mirroring rayon's; never produced by the shim.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Runs two closures (sequentially in the shim) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    job_start();
    (a(), b())
}

/// The wrapper type returned by `par_iter`/`into_par_iter`/`par_chunks`.
///
/// Deliberately does **not** implement [`Iterator`]: all combinators are
/// inherent methods mirroring rayon's names and signatures (notably
/// `reduce(identity, op)`), so there is no method-resolution ambiguity
/// with the std iterator trait.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Wraps an ordinary iterator.
    pub fn from_iter(inner: I) -> Self {
        ParIter(inner)
    }

    /// Unwraps into the underlying sequential iterator.
    pub fn into_inner(self) -> I {
        self.0
    }

    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter(self.0.map(f))
    }

    pub fn filter<P>(self, p: P) -> ParIter<std::iter::Filter<I, P>>
    where
        P: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(p))
    }

    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter(self.0.filter_map(f))
    }

    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn zip<B: IntoParallelIterator>(
        self,
        other: B,
    ) -> ParIter<std::iter::Zip<I, B::IntoIter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    pub fn chain<B: IntoParallelIterator<Item = I::Item>>(
        self,
        other: B,
    ) -> ParIter<std::iter::Chain<I, B::IntoIter>> {
        ParIter(self.0.chain(other.into_par_iter().0))
    }

    /// rayon's `flat_map_iter`: the closure returns a *serial* iterator.
    pub fn flat_map_iter<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        ParIter(self.0.flat_map(f))
    }

    /// rayon's `flat_map`: the closure returns something convertible into
    /// a parallel iterator. Sequentially these coincide with `flat_map_iter`.
    pub fn flat_map<F, U>(self, mut f: F) -> ParIter<impl Iterator<Item = U::Item>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoParallelIterator,
    {
        ParIter(self.0.flat_map(move |x| f(x).into_par_iter()))
    }

    pub fn copied<'a, T>(self) -> ParIter<std::iter::Copied<I>>
    where
        I: Iterator<Item = &'a T>,
        T: 'a + Copy,
    {
        ParIter(self.0.copied())
    }

    pub fn cloned<'a, T>(self) -> ParIter<std::iter::Cloned<I>>
    where
        I: Iterator<Item = &'a T>,
        T: 'a + Clone,
    {
        ParIter(self.0.cloned())
    }

    /// Hint method on rayon's indexed iterators; a no-op here.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Hint method on rayon's indexed iterators; a no-op here.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }

    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        job_start();
        self.0.for_each(f)
    }

    pub fn count(self) -> usize {
        job_start();
        self.0.count()
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        job_start();
        self.0.sum()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    pub fn any<P>(mut self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        self.0.any(p)
    }

    pub fn all<P>(mut self, p: P) -> bool
    where
        P: FnMut(I::Item) -> bool,
    {
        self.0.all(p)
    }

    /// rayon's reduce: identity-producing closure plus an associative
    /// combining operator.
    pub fn reduce<T, ID, OP>(self, identity: ID, op: OP) -> T
    where
        I: Iterator<Item = T>,
        ID: Fn() -> T,
        OP: Fn(T, T) -> T,
    {
        job_start();
        self.0.fold(identity(), op)
    }

    /// rayon's fold: produces one accumulator per "job"; sequentially a
    /// single accumulator, wrapped back into a parallel iterator so a
    /// following `reduce` works as in rayon.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::option::IntoIter<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter(Some(self.0.fold(identity(), fold_op)).into_iter())
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        job_start();
        self.0.collect()
    }

    /// Collects into `target`, reusing its existing allocation (rayon's
    /// buffer-reuse collect for indexed iterators; the shim accepts any
    /// iterator since execution is sequential anyway).
    pub fn collect_into_vec(self, target: &mut Vec<I::Item>) {
        job_start();
        target.clear();
        target.extend(self.0);
    }

    pub fn find_any<P>(mut self, mut p: P) -> Option<I::Item>
    where
        P: FnMut(&I::Item) -> bool,
    {
        self.0.find(|x| p(x))
    }

    pub fn position_any<P>(mut self, p: P) -> Option<usize>
    where
        P: FnMut(I::Item) -> bool,
    {
        self.0.position(p)
    }
}

/// Conversion into a (shim) parallel iterator; blanket-implemented for
/// everything that is `IntoIterator`, which covers `Vec<T>`, ranges, and
/// `ParIter` itself (for `zip`).
pub trait IntoParallelIterator {
    type Item;
    type IntoIter: Iterator<Item = Self::Item>;
    fn into_par_iter(self) -> ParIter<Self::IntoIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Item = T::Item;
    type IntoIter = T::IntoIter;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// `par_iter()` by shared reference.
pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefIterator<'data> for T
where
    &'data T: IntoIterator,
{
    type Item = <&'data T as IntoIterator>::Item;
    type Iter = <&'data T as IntoIterator>::IntoIter;
    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter_mut()` by exclusive reference.
pub trait IntoParallelRefMutIterator<'data> {
    type Item: 'data;
    type Iter: Iterator<Item = Self::Item>;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter>;
}

impl<'data, T: 'data + ?Sized> IntoParallelRefMutIterator<'data> for T
where
    &'data mut T: IntoIterator,
{
    type Item = <&'data mut T as IntoIterator>::Item;
    type Iter = <&'data mut T as IntoIterator>::IntoIter;
    fn par_iter_mut(&'data mut self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// Slice chunking, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
    fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
    fn par_windows(&self, window_size: usize) -> ParIter<std::slice::Windows<'_, T>> {
        ParIter(self.windows(window_size))
    }
}

/// Mutable slice chunking and parallel sorts.
pub trait ParallelSliceMut<T> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    fn par_sort(&mut self)
    where
        T: Ord;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
}

/// The rayon prelude: the traits that put `par_iter` & friends in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParIter,
        ParallelSlice, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_roundtrip() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn reduce_uses_identity() {
        let v = vec![1u32, 2, 3, 4];
        let total = v.par_iter().copied().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10);
    }

    #[test]
    fn zip_and_mutate() {
        let mut a = vec![0u32; 3];
        let b = vec![5u32, 6, 7];
        a.par_iter_mut().zip(b.par_iter()).for_each(|(x, &y)| *x = y);
        assert_eq!(a, b);
    }

    #[test]
    fn chunks_cover_slice() {
        let v: Vec<u32> = (0..10).collect();
        let n: usize = v.par_chunks(3).map(|c| c.len()).sum();
        assert_eq!(n, 10);
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<u64> = (0u64..5).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let outside = crate::current_num_threads();
        let pool = crate::ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inside = pool.install(|| crate::current_num_threads());
        assert_eq!(inside, 3);
        assert_eq!(crate::current_num_threads(), outside);
    }

    #[test]
    fn pool_zero_threads_means_automatic() {
        let pool = crate::ThreadPoolBuilder::new().build().unwrap();
        assert!(pool.current_num_threads() >= 1);
    }

    #[test]
    fn job_start_hook_fires_per_terminal_op_and_uninstalls() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let fired = Arc::new(AtomicUsize::new(0));
        let counter = fired.clone();
        crate::set_job_start_hook(Some(Arc::new(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        })));
        let v = vec![1u32, 2, 3];
        let _: Vec<u32> = v.par_iter().map(|&x| x).collect();
        v.par_iter().for_each(|_| {});
        let _: u32 = v.par_iter().copied().sum();
        let n = fired.load(Ordering::Relaxed);
        assert!(n >= 3, "hook fired {n} times for 3 terminal ops");
        crate::set_job_start_hook(None);
        v.par_iter().for_each(|_| {});
        assert_eq!(fired.load(Ordering::Relaxed), n, "hook fired after uninstall");
    }
}
