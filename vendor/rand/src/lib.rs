//! Offline API-compatible shim for [rand](https://crates.io/crates/rand) 0.9.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the small slice of the rand API the generators use: `StdRng`,
//! `SeedableRng::seed_from_u64`, and the `Rng` methods `random`,
//! `random_range`, and `random_bool` (see `vendor/README.md`). The
//! generator is splitmix64 — statistically solid for graph synthesis and
//! fully deterministic per seed, though its stream differs from upstream
//! `StdRng` (ChaCha12); all in-repo tests compare against self-consistent
//! oracles, not fixed upstream streams.

// vendored shim: exempt from the workspace lint bar
#![allow(clippy::all)]

/// Deterministic seeding, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// The standard RNG. Here: splitmix64.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng { state }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types producible by `Rng::random::<T>()`.
pub trait FromRng {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Core entropy source; object-safe.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl FromRng for u64 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges accepted by `Rng::random_range`, mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // multiply-shift bounded sampling (Lemire); bias is
                // negligible for graph-synthesis spans
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + hi as u128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let hi = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                (start as u128 + hi as u128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::from_rng(rng) * (self.end - self.start)
    }
}

/// User-facing RNG methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    #[inline]
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The rand prelude.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, StdRng};
}

pub mod rngs {
    pub use crate::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_rough() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn works_through_mut_ref_generic() {
        fn consume(rng: &mut impl Rng) -> u64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = consume(&mut rng);
    }
}
