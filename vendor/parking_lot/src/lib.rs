//! Offline API-compatible shim for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! The build environment has no crates registry, so the workspace vendors
//! `Mutex`/`RwLock` wrappers over `std::sync` with parking_lot's
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly
//! (a poisoned std lock — a panic while held — just yields the inner
//! value). See `vendor/README.md`.

// vendored shim: exempt from the workspace lint bar
#![allow(clippy::all)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex over `std::sync::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock over `std::sync::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
