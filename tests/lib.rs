//! Shared fixtures for the cross-crate integration tests.

use gunrock_graph::generators::{erdos_renyi, grid2d, hub_chain, rmat, watts_strogatz};
use gunrock_graph::{Coo, Csr, GraphBuilder};

/// A varied suite of small graphs covering every topology class the
/// paper evaluates plus degenerate shapes.
pub fn graph_suite() -> Vec<(String, Csr)> {
    let weighted =
        |coo: Coo, seed: u64| GraphBuilder::new().random_weights(1, 64, seed).build(coo);
    vec![
        ("erdos".into(), weighted(erdos_renyi(300, 900, 1), 1)),
        ("kron".into(), weighted(rmat(8, 8, Default::default(), 2), 2)),
        ("grid".into(), weighted(grid2d(16, 16, 0.1, 0.05, 3), 3)),
        ("hubchain".into(), weighted(hub_chain(400, 0.1, 60, 4), 4)),
        ("smallworld".into(), weighted(watts_strogatz(200, 3, 0.2, 5), 5)),
        ("disconnected".into(), weighted(erdos_renyi(300, 120, 6), 6)),
        ("single_edge".into(), weighted(Coo::from_edges(2, &[(0, 1)]), 7)),
        ("star".into(), {
            let edges: Vec<(u32, u32)> = (1..80).map(|v| (0, v)).collect();
            weighted(Coo::from_edges(80, &edges), 8)
        }),
    ]
}
