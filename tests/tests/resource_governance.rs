//! End-to-end resource-governance scenarios against an in-process
//! `gunrock-serve` instance, asserted from the client side:
//!
//! * **over-budget storm** — 32 concurrent queries whose estimated
//!   footprint exceeds the server's memory budget: every one is answered
//!   with a structured `over-budget` rejection (no hangs, no aborts),
//!   a zero-footprint job is still served afterward, and the metrics
//!   document carries the governance counters and memory gauges;
//! * **watchdog reap** — a query whose advance stalls (ignoring the
//!   cooperative cancel) is reaped within twice the watchdog interval
//!   and answered `watchdog-killed`; the worker survives and the next
//!   query on the same server succeeds;
//! * **taxonomy coverage** — all five core primitives under a hopeless
//!   budget fail with the same structured rejection, and the drain
//!   summary accounts for every one.

use gunrock_engine::json::JsonValue;
use gunrock_graph::{Coo, Csr, GraphBuilder};
use gunrock_server::{start, Client, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn small_graph() -> Arc<Csr> {
    let edges: Vec<(u32, u32)> = (0..255).map(|v| (v, v + 1)).collect();
    Arc::new(GraphBuilder::new().build(Coo::from_edges(256, &edges)))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gunrock-gov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint root");
    dir
}

fn field<'a>(v: &'a JsonValue, key: &str) -> &'a JsonValue {
    v.get(key).unwrap_or(&JsonValue::Null)
}

fn status_of(resp: &str) -> (String, String) {
    let v = JsonValue::parse(resp).expect("response must be valid JSON");
    let status = field(&v, "status").as_str().unwrap_or("").to_string();
    let code = v
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    (status, code)
}

#[test]
fn over_budget_storm_is_rejected_structurally_and_server_survives() {
    // 1 KiB cannot hold even the lean estimate for a 256-vertex BFS, so
    // every storm query is a deterministic permanent rejection.
    let cfg = ServerConfig {
        workers: 4,
        queue_capacity: 64,
        memory_budget: 1024,
        checkpoint_dir: temp_dir("storm"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let addr = handle.addr().to_string();

    let storm: Vec<_> = (0..32)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
                c.request(&format!(r#"{{"id":"s{i}","primitive":"bfs","src":0}}"#))
                    .expect("storm response")
            })
        })
        .collect();
    for t in storm {
        let resp = t.join().expect("storm thread");
        let (status, code) = status_of(&resp);
        assert_eq!(status, "rejected", "expected a structured rejection, got: {resp}");
        assert_eq!(code, "over-budget", "got: {resp}");
        // the graph simply does not fit: retrying cannot help, so the
        // rejection must NOT suggest it
        assert!(
            !resp.contains("retry_after_ms"),
            "permanent over-budget must not hint a retry: {resp}"
        );
    }

    // Post-storm health: a zero-footprint job is admitted and served.
    let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
    let probe = c
        .request(r#"{"id":"probe","primitive":"sleep","duration_ms":5}"#)
        .expect("probe response");
    assert_eq!(status_of(&probe).0, "ok", "server must keep serving after the storm: {probe}");

    // The metrics document carries the governance counters and gauges.
    let metrics = c.request(r#"{"primitive":"metrics"}"#).expect("metrics");
    let v = JsonValue::parse(&metrics).unwrap();
    assert_eq!(field(field(&v, "rejected"), "over_budget").as_u64(), Some(32));
    let mem = v.get("memory").expect("budgeted server renders a memory section");
    assert_eq!(field(mem, "budget_limit").as_u64(), Some(1024));
    assert_eq!(field(mem, "denials").as_u64(), Some(0), "rejections happen at admission");

    handle.shutdown();
    let summary = handle.join();
    let v = JsonValue::parse(&summary).expect("summary is JSON");
    assert_eq!(field(field(&v, "rejected"), "over_budget").as_u64(), Some(32));
    assert_eq!(field(field(&v, "requests"), "completed_ok").as_u64(), Some(1));
}

#[test]
fn stalled_query_is_reaped_within_two_intervals_and_answered_watchdog_killed() {
    const INTERVAL: Duration = Duration::from_millis(150);
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        breaker_threshold: 100, // keep the breaker out of this scenario
        watchdog_interval: Some(INTERVAL),
        checkpoint_dir: temp_dir("reap"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let mut c = Client::connect(&handle.addr().to_string(), CLIENT_TIMEOUT).expect("connect");

    // The stall site ignores the cooperative cancel and only yields to
    // the watchdog's kill flag, so the full escalation ladder runs.
    let start_at = Instant::now();
    let resp = c
        .request(
            r#"{"id":"wedge","primitive":"bfs","src":0,"inject":"stall=1.0","fault_seed":7}"#,
        )
        .expect("stalled response");
    let elapsed = start_at.elapsed();
    let (status, code) = status_of(&resp);
    assert_eq!(status, "failed", "got: {resp}");
    assert_eq!(code, "watchdog-killed", "got: {resp}");
    // the acceptance bound: reaped within 2x the watchdog interval
    // (plus dispatch and reaper-poll slack)
    assert!(
        elapsed < 2 * INTERVAL + Duration::from_millis(300),
        "reap took {elapsed:?}, bound is 2 * {INTERVAL:?}"
    );

    // The worker slot is reclaimed once the stalled operator observes
    // the kill flag; the same server keeps serving.
    let healthy = c.request(r#"{"id":"ok","primitive":"bfs","src":0}"#).expect("healthy");
    assert_eq!(status_of(&healthy).0, "ok", "worker must survive the reap: {healthy}");

    let metrics = c.request(r#"{"primitive":"metrics"}"#).expect("metrics");
    let v = JsonValue::parse(&metrics).unwrap();
    assert_eq!(field(&v, "watchdog_kills").as_u64(), Some(1));

    handle.shutdown();
    handle.join();
}

#[test]
fn every_primitive_under_a_hopeless_budget_fails_structured() {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 8,
        memory_budget: 1024,
        checkpoint_dir: temp_dir("taxonomy"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let mut c = Client::connect(&handle.addr().to_string(), CLIENT_TIMEOUT).expect("connect");

    for prim in ["bfs", "sssp", "bc", "cc", "pagerank"] {
        let resp = c
            .request(&format!(r#"{{"id":"{prim}","primitive":"{prim}","src":0}}"#))
            .expect("response");
        let (status, code) = status_of(&resp);
        assert_eq!(
            (status.as_str(), code.as_str()),
            ("rejected", "over-budget"),
            "{prim}: {resp}"
        );
    }

    handle.shutdown();
    let summary = handle.join();
    let v = JsonValue::parse(&summary).expect("summary is JSON");
    assert_eq!(field(field(&v, "rejected"), "over_budget").as_u64(), Some(5));
    assert_eq!(field(field(&v, "requests"), "admitted").as_u64(), Some(0));
}
