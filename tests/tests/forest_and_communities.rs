//! Integration tests for the topology-modifying primitives (MST) and
//! community detection (label propagation) over the shared suite.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::serial;
use gunrock_integration::graph_suite;

#[test]
fn mst_weight_matches_kruskal_on_suite() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let r = algos::mst(&ctx);
        assert_eq!(r.total_weight, algos::mst::mst_weight_kruskal(&g), "{name}");
        // tree count equals component count
        let cc = serial::connected_components(&g);
        assert_eq!(r.num_trees, serial::num_components(&cc), "{name}");
        // edge count is the forest size
        assert_eq!(r.edges.len(), g.num_vertices() - r.num_trees, "{name}");
    }
}

#[test]
fn mst_edges_connect_what_cc_connects() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let r = algos::mst(&ctx);
        // build a graph from only the chosen edges: same components
        let mut coo = gunrock_graph::Coo::new(g.num_vertices());
        for &e in &r.edges {
            coo.push(g.edge_source(e), g.edge_dest(e));
        }
        let forest = gunrock_graph::GraphBuilder::new().build(coo);
        assert_eq!(
            serial::connected_components(&forest),
            serial::connected_components(&g),
            "{name}: forest must span every component"
        );
    }
}

#[test]
fn label_propagation_respects_components_on_suite() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let r = algos::label_prop::label_propagation(&ctx, 30);
        assert_eq!(r.labels.len(), g.num_vertices(), "{name}");
        // communities at least as fine as components (labels cannot cross)
        let cc = serial::connected_components(&g);
        let comp_count = serial::num_components(&cc);
        assert!(r.num_communities >= comp_count, "{name}");
        // every label is a real vertex id within the same component
        for v in 0..g.num_vertices() {
            let l = r.labels[v] as usize;
            if g.out_degree(v as u32) > 0 {
                assert_eq!(cc[l], cc[v], "{name}: label from another component");
            }
        }
    }
}

#[test]
fn partitioned_bfs_agrees_with_flat_bfs_on_suite() {
    use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
    use gunrock_graph::INFINITY;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Discover<'a> {
        labels: &'a [AtomicU32],
        level: u32,
    }
    impl AdvanceFunctor for Discover<'_> {
        fn cond_edge(&self, _s: u32, d: u32, _e: u32) -> bool {
            self.labels[d as usize]
                .compare_exchange(INFINITY, self.level, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
    }

    for (name, g) in graph_suite() {
        let n = g.num_vertices();
        let want = serial::bfs(&g, 0);
        for shards in [2usize, 5] {
            let ctx = Context::new(&g);
            let partition = VertexPartition::even(n, shards);
            let labels = atomic_u32_vec(n, INFINITY);
            labels[0].store(0, Ordering::Relaxed);
            let mut frontiers = partition.split_frontier(&Frontier::single(0));
            let mut level = 0;
            while gunrock::partition::total_len(&frontiers) > 0 {
                level += 1;
                let f = Discover { labels: &labels, level };
                let (next, _) = partitioned_advance(&ctx, &partition, &frontiers, &f);
                frontiers = next;
            }
            assert_eq!(unwrap_atomic_u32(&labels), want, "{name} with {shards} shards");
        }
    }
}
