//! Integration tests for the extension primitives (§5.5 bipartite
//! node-ranking, §7 future-work operators, and the Gunrock-family
//! additions) over the shared graph suite.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::serial;
use gunrock_graph::generators::bipartite_random;
use gunrock_graph::GraphBuilder;
use gunrock_integration::graph_suite;

#[test]
fn triangles_match_oracle_on_suite() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let r = algos::triangle_count(&ctx);
        assert_eq!(r.total, serial::triangle_count(&g), "{name}");
        assert_eq!(r.per_vertex.iter().sum::<u64>(), 3 * r.total, "{name}");
    }
}

#[test]
fn kcore_matches_peeling_on_suite() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let r = algos::k_core(&ctx);
        assert_eq!(r.core_numbers, algos::kcore::k_core_serial(&g), "{name}");
        // degeneracy bounds: between min degree of densest part and max degree
        assert!(r.degeneracy <= g.max_degree(), "{name}");
        // every vertex's core number is at most its degree
        for v in 0..g.num_vertices() as u32 {
            assert!(r.core_numbers[v as usize] <= g.out_degree(v), "{name} v{v}");
        }
    }
}

#[test]
fn kcore_is_consistent_with_triangles() {
    // every vertex of a triangle has core number >= 2
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let tri = algos::triangle_count(&ctx);
        let ctx = Context::new(&g);
        let core = algos::k_core(&ctx);
        for v in 0..g.num_vertices() {
            if tri.per_vertex[v] > 0 {
                assert!(core.core_numbers[v] >= 2, "{name} v{v}");
            }
        }
    }
}

#[test]
fn neighbor_reduce_degree_sum_equals_edge_count() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let f = Frontier::full(g.num_vertices());
        let ones = neighbor_reduce(&ctx, &f, 0u64, |_, _, _| 1, |a, b| a + b);
        assert_eq!(ones.iter().sum::<u64>(), g.num_edges() as u64, "{name}");
    }
}

#[test]
fn sample_statistics_on_suite() {
    for (name, g) in graph_suite() {
        let full = Frontier::full(g.num_vertices());
        for frac in [0.0, 0.3, 1.0] {
            let s = sample(&full, frac, 7);
            assert!(s.len() <= full.len(), "{name}");
            if frac == 0.0 {
                assert!(s.is_empty(), "{name}");
            }
            if frac == 1.0 {
                assert_eq!(s.len(), full.len(), "{name}");
            }
        }
        let k = g.num_vertices() / 2;
        assert_eq!(sample_k(&full, k, 3).len(), k.min(full.len()), "{name}");
    }
}

#[test]
fn hits_and_salsa_are_finite_and_nonnegative() {
    let (coo, shape) = bipartite_random(500, 250, 8, 1);
    let g = GraphBuilder::new().directed().build(coo);
    let rev = g.transpose();
    let ctx = Context::new(&g).with_reverse(&rev);
    for scores in [
        algos::bipartite::hits(&ctx, shape.n_left, 20),
        algos::bipartite::salsa(&ctx, shape.n_left, 20),
    ] {
        assert!(scores.hubs.iter().all(|x| x.is_finite() && *x >= 0.0));
        assert!(scores.auths.iter().all(|x| x.is_finite() && *x >= 0.0));
        // hubs live on the left, authorities on the right
        assert!(scores.auths[..shape.n_left].iter().all(|&x| x == 0.0));
    }
}

#[test]
fn ppr_is_localized_while_global_pr_is_not() {
    // on a barbell-ish graph, PPR from one side should put more mass
    // there than global PR does
    let mut edges = Vec::new();
    for i in 0..20u32 {
        for j in (i + 1)..20 {
            edges.push((i, j));
        }
    }
    for i in 20..40u32 {
        for j in (i + 1)..40 {
            edges.push((i, j));
        }
    }
    edges.push((19, 20)); // bridge
    let g = GraphBuilder::new().build(gunrock_graph::Coo::from_edges(40, &edges));
    let ctx = Context::new(&g);
    let ppr = algos::bipartite::personalized_pagerank(&ctx, &[0], 0.85, 1e-12, 500);
    let ctx = Context::new(&g);
    let pr = algos::pagerank(&ctx, algos::PrOptions { epsilon: 1e-12, ..Default::default() });
    let left_ppr: f64 = ppr[..20].iter().sum();
    let left_pr: f64 = pr.scores[..20].iter().sum();
    assert!(left_ppr > 0.8, "PPR concentrates: {left_ppr}");
    assert!(left_pr < 0.6, "global PR splits: {left_pr}");
}

#[test]
fn mis_and_coloring_run_on_suite() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let mis = algos::extras::maximal_independent_set(&ctx, 5);
        assert!(algos::extras::verify_mis(&g, &mis.in_set), "{name}");
        let ctx = Context::new(&g);
        let coloring = algos::extras::greedy_coloring(&ctx, 5);
        assert!(algos::extras::verify_coloring(&g, &coloring.colors), "{name}");
    }
}
