//! Algebraic laws of the operator set, property-tested over arbitrary
//! graphs: these are the contracts primitives rely on when composing
//! advance/filter/compute steps.

use gunrock::prelude::*;
use gunrock_graph::{Coo, Csr, GraphBuilder};
use proptest::prelude::*;

fn arb_graph_and_frontier() -> impl Strategy<Value = (Csr, Vec<u32>)> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec(((0..n as u32), (0..n as u32)), 0..100);
        let frontier = proptest::collection::btree_set(0..n as u32, 0..n);
        (edges, frontier).prop_map(move |(edges, frontier)| {
            (
                GraphBuilder::new().build(Coo::from_edges(n, &edges)),
                frontier.into_iter().collect::<Vec<u32>>(),
            )
        })
    })
}

fn multiset(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// All push strategies produce the same output multiset.
    #[test]
    fn advance_strategies_are_equivalent((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(&g);
        let input = Frontier::from_vec(frontier);
        let outs: Vec<Vec<u32>> = [AdvanceMode::ThreadMapped, AdvanceMode::Twc, AdvanceMode::LoadBalanced]
            .into_iter()
            .map(|m| {
                multiset(
                    advance::advance(&ctx, &input, AdvanceSpec::v2v().with_mode(m), &AcceptAll)
                        .into_vec(),
                )
            })
            .collect();
        prop_assert_eq!(&outs[0], &outs[1]);
        prop_assert_eq!(&outs[0], &outs[2]);
    }

    /// Advance output size equals the frontier's total neighbor count
    /// when the functor accepts everything.
    #[test]
    fn advance_accept_all_emits_every_edge((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(&g);
        let input = Frontier::from_vec(frontier.clone());
        let out = advance::advance(&ctx, &input, AdvanceSpec::v2v(), &AcceptAll);
        let want: usize = frontier.iter().map(|&v| g.out_degree(v) as usize).sum();
        prop_assert_eq!(out.len(), want);
        prop_assert_eq!(ctx.counters.edges(), want as u64);
    }

    /// filter(p) then filter(q) == filter(p && q).
    #[test]
    fn filter_composes((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(&g);
        let input = Frontier::from_vec(frontier);
        let p = |v: u32| v.is_multiple_of(2);
        let q = |v: u32| v.is_multiple_of(3);
        let two_steps = filter::filter(&ctx, &filter::filter(&ctx, &input, &VertexCond(p)), &VertexCond(q));
        let one_step = filter::filter(&ctx, &input, &VertexCond(|v| p(v) && q(v)));
        prop_assert_eq!(two_steps.as_slice(), one_step.as_slice());
    }

    /// Pull advance discovers exactly the candidates adjacent to the
    /// frontier.
    #[test]
    fn pull_equals_push_reachability((g, frontier) in arb_graph_and_frontier()) {
        let ctx = Context::new(&g).with_reverse(&g);
        let input = Frontier::from_vec(frontier.clone());
        // push: set of destinations
        let push: std::collections::BTreeSet<u32> =
            advance::advance(&ctx, &input, AdvanceSpec::v2v(), &AcceptAll)
                .into_vec()
                .into_iter()
                .collect();
        // pull: candidates = all vertices; kept iff some in-neighbor in frontier
        let bm = frontier_bitmap(&ctx, &input);
        let candidates: Vec<u32> = (0..g.num_vertices() as u32).collect();
        let pull: std::collections::BTreeSet<u32> =
            advance_pull(&ctx, &candidates, &bm, &AcceptAll)
                .into_vec()
                .into_iter()
                .collect();
        prop_assert_eq!(push, pull);
    }

    /// The masked word sweep agrees with the list-based pull (and hence
    /// with push reachability), and clears exactly the discovered bits
    /// from the candidate set.
    #[test]
    fn sweep_pull_equals_list_pull((g, frontier) in arb_graph_and_frontier()) {
        let n = g.num_vertices();
        let ctx = Context::new(&g).with_reverse(&g);
        let input = Frontier::from_vec(frontier);
        // list pull over the all-vertices candidate set
        let bm = frontier_bitmap(&ctx, &input);
        let candidates: Vec<u32> = (0..n as u32).collect();
        let list: std::collections::BTreeSet<u32> =
            advance_pull(&ctx, &candidates, &bm, &AcceptAll).into_vec().into_iter().collect();
        // word sweep over the same candidate set
        let mut cand = PooledBitmap::take(ctx.pool(), n);
        cand.fill_complement(&AtomicBitmap::new(n)); // complement of empty: all ones
        let mut out = PooledBitmap::take(ctx.pool(), n);
        advance_pull_sweep(&ctx, &mut cand, &bm, &mut out, &AcceptAll);
        let sweep: std::collections::BTreeSet<u32> =
            out.iter_ones().map(|i| i as u32).collect();
        // discovered bits left the candidate set; the rest survived
        prop_assert_eq!(cand.count_ones(), n - sweep.len());
        for &v in &sweep {
            prop_assert!(!cand.get(v as usize), "discovered {v} still a candidate");
        }
        bm.release(ctx.pool());
        cand.release(ctx.pool());
        out.release(ctx.pool());
        prop_assert_eq!(list, sweep);
    }

    /// The culling filter with bitmask is a one-shot set semantics: over
    /// any sequence of inputs, each id survives globally at most once.
    #[test]
    fn culling_bitmask_is_global_dedup((g, frontier) in arb_graph_and_frontier()) {
        let n = g.num_vertices();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(n);
        let mut survivors = Vec::new();
        for chunk in frontier.chunks(3) {
            let mut doubled: Vec<u32> = chunk.to_vec();
            doubled.extend_from_slice(chunk); // force duplicates
            let out = filter::culling::filter_with_culling(
                &ctx,
                &Frontier::from_vec(doubled),
                &visited,
                &VertexCond(|_| true),
                CullingConfig::default(),
            );
            survivors.extend(out.into_vec());
        }
        let unique: std::collections::BTreeSet<u32> = survivors.iter().copied().collect();
        prop_assert_eq!(unique.len(), survivors.len(), "no id survives twice");
        prop_assert_eq!(unique, frontier.iter().copied().collect());
    }

    /// Near-far queue conservation: every element split in is either
    /// returned near, returned by a refill, or provably stale.
    #[test]
    fn near_far_conserves_elements(prios in proptest::collection::vec(0u32..100, 1..60)) {
        let n = prios.len() as u32;
        let mut q = NearFarQueue::new(10);
        let input = Frontier::from_vec((0..n).collect());
        let mut seen: Vec<u32> = q.split(input, |v| prios[v as usize]).into_vec();
        loop {
            let next = q.refill(|v| prios[v as usize]);
            if next.is_empty() {
                break;
            }
            seen.extend(next.as_slice());
        }
        // priorities are static here, so nothing is stale: all return
        prop_assert_eq!(multiset(seen), (0..n).collect::<Vec<u32>>());
        prop_assert!(q.is_exhausted());
    }
}
