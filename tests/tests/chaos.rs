//! Chaos suite: seeded fault schedules against all five paper
//! primitives.
//!
//! The robustness contract under test: with a [`FaultInjector`] armed,
//! every run either
//!
//! 1. fails with a *structured* error (`GunrockError::OperatorPanic`
//!    surfaced through the `try_*` wrappers — never a process abort), or
//! 2. completes with results **identical** to the fault-free run (alloc
//!    faults are absorbed by retry-with-fallback; a panic schedule that
//!    happens never to fire changes nothing).
//!
//! Every schedule derives from a `u64` seed, so a failing seed printed
//! by an assertion reproduces the exact same fault sequence.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_graph::generators::{self, rmat};
use gunrock_graph::{Csr, GraphBuilder};
use std::sync::Arc;

/// Silences the default panic printer for injected faults only, so the
/// suite's output is not hundreds of intentional backtraces. Installed
/// once per process; genuine panics still print through the previous
/// hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.contains("injected fault") {
                prev(info);
            }
        }));
    });
}

/// The chaos input: a scale-8 Kronecker graph, the paper's topology
/// class, big enough for multi-level traversals and skewed degrees.
fn kron8() -> Csr {
    GraphBuilder::new().random_weights(1, 64, 42).build(rmat(
        8,
        8,
        generators::RmatParams::graph500(),
        42,
    ))
}

fn faulted<'g>(g: &'g Csr, plan: FaultPlan, retries: u32) -> Context<'g> {
    Context::new(g)
        .with_reverse(g)
        .with_stats()
        .with_retry(RetryPolicy::retries(retries))
        .with_faults(Arc::new(FaultInjector::new(plan)))
}

/// Asserts that `err` is the structured operator-panic error carrying
/// the injection site, not some stringly or default failure.
fn assert_structured(seed: u64, prim: &str, err: &GunrockError) {
    match err {
        GunrockError::OperatorPanic { operator, payload, .. } => {
            assert!(
                ["advance", "filter", "compute"].contains(operator),
                "seed {seed} {prim}: unexpected operator {operator:?}"
            );
            assert!(
                payload.contains("injected fault"),
                "seed {seed} {prim}: unexpected payload {payload:?}"
            );
        }
        other => panic!("seed {seed} {prim}: expected OperatorPanic, got {other:?}"),
    }
}

/// 60 seeded runs (12 seeds x 5 primitives) under a mixed
/// panic-plus-alloc schedule: every run is either a structured error or
/// bit-identical to the fault-free baseline. Zero process aborts, by
/// virtue of this test completing at all.
#[test]
fn every_faulted_run_fails_structured_or_matches_fault_free() {
    quiet_injected_panics();
    let g = kron8();
    let base_ctx = Context::new(&g).with_reverse(&g);
    let bfs0 = algos::bfs(&base_ctx, 0, algos::BfsOptions::direction_optimized());
    let sssp0 = algos::sssp(&base_ctx, 0, algos::SsspOptions::default());
    let bc0 = algos::bc(&base_ctx, 0, algos::BcOptions::default());
    let cc0 = algos::cc(&base_ctx);
    let pr0 = algos::pagerank(&base_ctx, algos::PrOptions::default());

    let mut failed = 0u32;
    let mut clean = 0u32;
    for seed in 0..12u64 {
        let plan = FaultPlan::parse("panic=0.02,alloc=0.3", seed).expect("valid spec");
        for prim in ["bfs", "sssp", "bc", "cc", "pagerank"] {
            let ctx = faulted(&g, plan, 1);
            let outcome = match prim {
                "bfs" => algos::try_bfs(&ctx, 0, algos::BfsOptions::direction_optimized())
                    .map(|r| {
                        assert_eq!(r.labels, bfs0.labels, "seed {seed}: bfs labels diverged");
                        assert_eq!(r.preds, bfs0.preds, "seed {seed}: bfs preds diverged");
                    })
                    .map_err(|e| (e, "bfs")),
                "sssp" => algos::try_sssp(&ctx, 0, algos::SsspOptions::default())
                    .map(|r| {
                        assert_eq!(r.dist, sssp0.dist, "seed {seed}: sssp dist diverged");
                    })
                    .map_err(|e| (e, "sssp")),
                "bc" => algos::try_bc(&ctx, 0, algos::BcOptions::default())
                    .map(|r| {
                        let got: Vec<u64> = r.bc_values.iter().map(|v| v.to_bits()).collect();
                        let want: Vec<u64> =
                            bc0.bc_values.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(got, want, "seed {seed}: bc values diverged");
                    })
                    .map_err(|e| (e, "bc")),
                "cc" => algos::try_cc(&ctx)
                    .map(|r| {
                        assert_eq!(r.labels, cc0.labels, "seed {seed}: cc labels diverged");
                    })
                    .map_err(|e| (e, "cc")),
                _ => algos::try_pagerank(&ctx, algos::PrOptions::default())
                    .map(|r| {
                        let got: Vec<u64> = r.scores.iter().map(|v| v.to_bits()).collect();
                        let want: Vec<u64> = pr0.scores.iter().map(|v| v.to_bits()).collect();
                        assert_eq!(got, want, "seed {seed}: pagerank scores diverged");
                    })
                    .map_err(|e| (e, "pagerank")),
            };
            match outcome {
                Ok(()) => clean += 1,
                Err((e, p)) => {
                    assert_structured(seed, p, &e);
                    failed += 1;
                }
            }
        }
    }
    assert_eq!(failed + clean, 60);
    // the 2% panic rate must actually exercise both branches across
    // 60 runs; an all-clean or all-failed sweep means the injector is
    // not wired into the operator path
    assert!(failed > 0, "no run hit an injected panic");
    assert!(clean > 0, "every run hit an injected panic");
}

/// Pure alloc-fault schedules are always absorbed: load-balanced
/// advances retry and fall back to thread_mapped, the run converges
/// with identical results, and each absorbed fault is visible as a
/// RecoveryEvent in the stats sink.
#[test]
fn alloc_faults_are_absorbed_by_retry_with_fallback() {
    quiet_injected_panics();
    let g = kron8();
    let base_ctx = Context::new(&g).with_reverse(&g);
    let bfs0 = algos::bfs(&base_ctx, 0, algos::BfsOptions::direction_optimized());
    let mut recovered = 0u64;
    for seed in 100..110u64 {
        let plan = FaultPlan::parse("alloc=0.8", seed).expect("valid spec");
        // force the load-balanced strategy (the one with an allocation
        // site) even on this small graph
        let ctx = faulted(&g, plan, 2).with_config(EngineConfig::new().with_lb_threshold(0));
        let r = algos::try_bfs(&ctx, 0, algos::BfsOptions::direction_optimized())
            .unwrap_or_else(|e| panic!("seed {seed}: alloc faults must be recoverable: {e}"));
        assert_eq!(r.labels, bfs0.labels, "seed {seed}");
        recovered += ctx.run_stats().summary().recovery_events;
    }
    assert!(recovered > 0, "an 80% alloc rate must trigger retries or fallbacks");
}

/// The `pool-alloc` class denies buffer-pool checkouts themselves and —
/// unlike the absorbed `alloc` class — fails runs *structurally*: a
/// full-rate schedule must surface `GunrockError::BudgetExceeded` from
/// every primitive and every BFS variant (whose visited/pull bitmaps
/// are checked out *between* operators, the path that once let the
/// denial escape as a process abort), and a partial-rate schedule must
/// either fail the same way or converge bit-identically.
#[test]
fn pool_alloc_faults_fail_structured_never_escape() {
    quiet_injected_panics();
    let g = kron8();
    let deny_all = || FaultPlan::parse("pool-alloc=1.0", 7).expect("valid spec");
    let structured = |prim: &str, err: GunrockError| {
        assert!(
            matches!(err, GunrockError::BudgetExceeded { .. }),
            "{prim}: expected BudgetExceeded, got {err:?}"
        );
    };
    for variant in [
        algos::BfsVariant::Atomic,
        algos::BfsVariant::Idempotent,
        algos::BfsVariant::DirectionOptimized,
        algos::BfsVariant::Fused,
    ] {
        let ctx = faulted(&g, deny_all(), 0);
        let opts = algos::BfsOptions { variant, ..Default::default() };
        let err = algos::try_bfs(&ctx, 0, opts).expect_err("denied checkouts cannot converge");
        structured(&format!("bfs {variant:?}"), err);
    }
    let ctx = faulted(&g, deny_all(), 0);
    structured("sssp", algos::try_sssp(&ctx, 0, Default::default()).expect_err("sssp"));
    let ctx = faulted(&g, deny_all(), 0);
    structured("bc", algos::try_bc(&ctx, 0, Default::default()).expect_err("bc"));
    let ctx = faulted(&g, deny_all(), 0);
    structured("cc", algos::try_cc(&ctx).expect_err("cc"));
    // pagerank runs dense over heap-allocated score vectors and never
    // checks a frontier out of the pool: it must sail through unharmed
    let ctx = faulted(&g, deny_all(), 0);
    let pr = algos::try_pagerank(&ctx, Default::default())
        .expect("pagerank touches no pooled buffers");
    assert_eq!(pr.outcome, RunOutcome::Converged);

    let base_ctx = Context::new(&g).with_reverse(&g);
    let bfs0 = algos::bfs(&base_ctx, 0, algos::BfsOptions::direction_optimized());
    for seed in 300..310u64 {
        let plan = FaultPlan::parse("pool-alloc=0.05", seed).expect("valid spec");
        let ctx = faulted(&g, plan, 0);
        match algos::try_bfs(&ctx, 0, algos::BfsOptions::direction_optimized()) {
            Ok(r) => assert_eq!(r.labels, bfs0.labels, "seed {seed}"),
            Err(err) => structured(&format!("seed {seed}"), err),
        }
    }
}

/// A fault-free context reports zero recovery events — the absence
/// check backing the bench export's `recovery_events` column.
#[test]
fn fault_free_runs_report_zero_recovery_events() {
    let g = kron8();
    let ctx = Context::new(&g).with_reverse(&g).with_stats();
    algos::bfs(&ctx, 0, algos::BfsOptions::direction_optimized());
    algos::sssp(&ctx, 0, algos::SsspOptions::default());
    algos::pagerank(&ctx, algos::PrOptions::default());
    let summary = ctx.run_stats().summary();
    assert_eq!(summary.recovery_events, 0);
}

/// Injected loader faults (truncation and corruption) surface as typed
/// [`gunrock_graph::error::GraphError`]s through the file loaders,
/// never as panics or silently wrong graphs.
#[test]
fn loader_faults_surface_as_graph_errors() {
    use gunrock_graph::io;
    let g = kron8();
    let dir = std::env::temp_dir();
    let path = dir.join(format!("gunrock_chaos_io_{}.bin", std::process::id()));
    let mut bytes = Vec::new();
    io::write_csr_binary(&g, &mut bytes).expect("in-memory write");
    std::fs::write(&path, &bytes).expect("write fixture");

    // sanity: the fixture round-trips when no hook is installed
    let clean = io::load_graph(&path).expect("clean load");
    assert_eq!(clean.num_vertices(), g.num_vertices());

    let inj = Arc::new(FaultInjector::new(FaultPlan::parse("io=1.0", 7).expect("valid spec")));
    for mode in 0..2u64 {
        let h = Arc::clone(&inj);
        io::set_read_fault_hook(Some(Arc::new(move |site: &str, len: u64| {
            if !h.should_fail(FaultKind::Io, site) {
                return None;
            }
            Some(if mode == 0 {
                // keep a prefix so the loader sees a plausible header
                io::IoFault::Truncate { at: len / 2 }
            } else {
                io::IoFault::Corrupt { at: h.uniform(site, len), mask: 0xff }
            })
        })));
        let result = io::load_graph(&path);
        io::set_read_fault_hook(None);
        assert!(result.is_err(), "mode {mode}: a damaged read must not produce a graph");
    }
    std::fs::remove_file(&path).ok();
}

/// The whole suite once more on varied topologies: one seed per graph
/// shape, BFS + CC (the frontier-heavy and filter-only extremes).
#[test]
fn fault_schedules_hold_across_topologies() {
    quiet_injected_panics();
    for (i, (name, g)) in gunrock_integration::graph_suite().into_iter().enumerate() {
        let base = Context::new(&g).with_reverse(&g);
        let bfs0 = algos::bfs(&base, 0, algos::BfsOptions::default());
        let cc0 = algos::cc(&base);
        let plan = FaultPlan::parse("panic=0.05,alloc=0.5", 1000 + i as u64).expect("spec");
        let ctx = faulted(&g, plan, 1);
        match algos::try_bfs(&ctx, 0, algos::BfsOptions::default()) {
            Ok(r) => assert_eq!(r.labels, bfs0.labels, "{name}"),
            Err(e) => assert_structured(1000 + i as u64, "bfs", &e),
        }
        let ctx = faulted(&g, FaultPlan::parse("panic=0.05", 2000 + i as u64).unwrap(), 0);
        match algos::try_cc(&ctx) {
            Ok(r) => assert_eq!(r.labels, cc0.labels, "{name}"),
            Err(e) => assert_structured(2000 + i as u64, "cc", &e),
        }
    }
}
