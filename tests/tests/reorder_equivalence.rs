//! Degree-descending relabeling is a pure locality optimization: for
//! every primitive, running on the reordered graph and mapping the
//! results back through the inverse permutation must reproduce the
//! original-graph results — across thread-pool sizes, so neither the
//! permutation nor the bitmap word sweep may introduce schedule
//! dependence. Depths/distances/components are unique fixed points and
//! compare bit-identical; PageRank accumulates floats in a different
//! order under relabeling, so it compares within the same epsilon the
//! determinism suite uses.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::serial;
use gunrock_graph::generators::rmat::{rmat, RmatParams};
use gunrock_graph::reorder::{degree_descending, Relabeling};
use gunrock_graph::{Csr, GraphBuilder};

fn test_graph() -> Csr {
    // social-skew rmat: pronounced hubs, so relabeling really clusters
    GraphBuilder::new().random_weights(1, 64, 9).build(rmat(10, 16, RmatParams::social(), 21))
}

/// Runs `f` inside a dedicated rayon pool of `threads` workers.
fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

/// Canonical component labeling: each label mapped to the minimum
/// vertex id of its component, so representative choice cancels out.
fn canonical(labels: &[u32]) -> Vec<u32> {
    let mut rep = std::collections::HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        rep.entry(l).or_insert(v as u32);
    }
    labels.iter().map(|l| rep[l]).collect()
}

#[test]
fn bfs_depths_are_invariant_under_reorder_and_thread_count() {
    let g = test_graph();
    let relab = degree_descending(&g);
    let gr = relab.apply(&g);
    let want = serial::bfs(&g, 0);
    for threads in [1usize, 2, 8] {
        let (plain, restored, pulls) = in_pool(threads, || {
            let ctx = Context::new(&g).with_reverse(&g);
            let a = algos::bfs(&ctx, 0, algos::BfsOptions::direction_optimized());
            let ctx = Context::new(&gr).with_reverse(&gr);
            let b =
                algos::bfs(&ctx, relab.new_of_old(0), algos::BfsOptions::direction_optimized());
            (a.labels, relab.restore_values(&b.labels), b.pull_iterations)
        });
        assert_eq!(plain, want, "plain bfs at {threads} threads");
        assert_eq!(restored, want, "reordered bfs at {threads} threads");
        assert!(pulls > 0, "reordered scale-free bfs must take the sweep path");
    }
}

#[test]
fn sssp_distances_are_invariant_under_reorder_and_thread_count() {
    let g = test_graph();
    let relab = degree_descending(&g);
    let gr = relab.apply(&g);
    let want = serial::dijkstra(&g, 0);
    for threads in [1usize, 2, 8] {
        let (plain, restored) = in_pool(threads, || {
            let ctx = Context::new(&g);
            let a = algos::sssp(&ctx, 0, algos::SsspOptions::default());
            let ctx = Context::new(&gr);
            let b = algos::sssp(&ctx, relab.new_of_old(0), algos::SsspOptions::default());
            (a.dist, relab.restore_values(&b.dist))
        });
        assert_eq!(plain, want, "plain sssp at {threads} threads");
        assert_eq!(restored, want, "reordered sssp at {threads} threads");
    }
}

#[test]
fn cc_partition_is_invariant_under_reorder_and_thread_count() {
    let g = test_graph();
    let relab = degree_descending(&g);
    let gr = relab.apply(&g);
    let want = canonical(&serial::connected_components(&g));
    for threads in [1usize, 2, 8] {
        let (plain, restored) = in_pool(threads, || {
            let a = algos::cc(&Context::new(&g));
            let b = algos::cc(&Context::new(&gr));
            (canonical(&a.labels), canonical(&relab.restore_ids(&b.labels)))
        });
        assert_eq!(plain, want, "plain cc at {threads} threads");
        assert_eq!(restored, want, "reordered cc at {threads} threads");
    }
}

#[test]
fn pagerank_ranks_agree_under_reorder_and_thread_count() {
    let g = test_graph();
    let relab = degree_descending(&g);
    let gr = relab.apply(&g);
    let opts = || algos::PrOptions { epsilon: 1e-10, ..Default::default() };
    let want = {
        let ctx = Context::new(&g);
        algos::pagerank(&ctx, opts()).scores
    };
    for threads in [1usize, 2, 8] {
        let (plain, restored) = in_pool(threads, || {
            let a = algos::pagerank(&Context::new(&g), opts());
            let b = algos::pagerank(&Context::new(&gr), opts());
            (a.scores, relab.restore_values(&b.scores))
        });
        for (v, (x, y)) in plain.iter().zip(&want).enumerate() {
            assert!((x - y).abs() < 1e-9, "plain pr[{v}] at {threads} threads: {x} vs {y}");
        }
        for (v, (x, y)) in restored.iter().zip(&want).enumerate() {
            assert!((x - y).abs() < 1e-9, "reordered pr[{v}] at {threads} threads: {x} vs {y}");
        }
    }
}

#[test]
fn relabeling_round_trips_through_checkpoint_id_translation() {
    // the id maps used by CLI --resume under --reorder: old -> new -> old
    let g = test_graph();
    let relab: Relabeling = degree_descending(&g);
    for v in 0..g.num_vertices() as u32 {
        assert_eq!(relab.old_of_new(relab.new_of_old(v)), v);
    }
}
