//! Kill-and-resume round trips for all five paper primitives.
//!
//! Each test interrupts a run at an iteration boundary (via the
//! iteration-cap guard, standing in for a timeout or kill), which
//! leaves a `gunrock-ckpt/v1` snapshot behind, then resumes from that
//! file in a fresh context and demands results **bit-identical** to an
//! uninterrupted run — including `f64` payloads, which the sequential
//! engine makes exactly reproducible.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_graph::generators::{self, rmat};
use gunrock_graph::{Csr, GraphBuilder};

/// Scale-10 Kronecker graph: enough levels that a 2-iteration cap
/// interrupts every primitive mid-flight.
fn kron10() -> Csr {
    GraphBuilder::new().random_weights(1, 64, 42).build(rmat(
        10,
        8,
        generators::RmatParams::graph500(),
        42,
    ))
}

fn ckpt_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gunrock_resume_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");
    dir
}

/// Interrupts `primitive` after `cap` iterations with `every`-periodic
/// checkpointing on, and returns the loaded exit snapshot.
fn interrupt<'g, R>(
    g: &'g Csr,
    dir: &std::path::Path,
    primitive: &str,
    cap: u32,
    run: impl FnOnce(&Context<'g>) -> (R, RunOutcome),
) -> Checkpoint {
    let ctx = Context::new(g)
        .with_reverse(g)
        .with_policy(RunPolicy::unbounded().max_iterations(cap))
        .with_checkpoints(CheckpointPolicy::new(1, dir));
    let (_, outcome) = run(&ctx);
    assert_eq!(outcome, RunOutcome::IterationCapped, "{primitive}");
    let path = CheckpointPolicy::new(1, dir).path(primitive);
    let ckpt = Checkpoint::load(&path).expect("interrupted run leaves a checkpoint");
    assert_eq!(ckpt.primitive(), primitive);
    assert!(ckpt.iteration() > 0);
    ckpt
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

#[test]
fn bfs_resume_is_bit_identical() {
    let g = kron10();
    let dir = ckpt_dir("bfs");
    let opts = algos::BfsOptions::direction_optimized();
    let full = algos::bfs(&Context::new(&g).with_reverse(&g), 0, opts);
    let ckpt = interrupt(&g, &dir, "bfs", 2, |ctx| {
        let r = algos::bfs(ctx, 0, opts);
        (r.labels, r.outcome)
    });
    let ctx = Context::new(&g).with_reverse(&g);
    let r = algos::bfs_resume(&ctx, opts, &ckpt).expect("resume");
    assert_eq!(r.outcome, RunOutcome::Converged);
    assert_eq!(r.labels, full.labels);
    assert_eq!(r.preds, full.preds);
    // total level count is preserved across the interruption
    assert_eq!(r.iterations, full.iterations);
    assert_eq!(r.pull_iterations, full.pull_iterations);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sssp_resume_is_bit_identical() {
    let g = kron10();
    let dir = ckpt_dir("sssp");
    let opts = algos::SsspOptions::default();
    let full = algos::sssp(&Context::new(&g), 0, opts);
    let ckpt = interrupt(&g, &dir, "sssp", 2, |ctx| {
        let r = algos::sssp(ctx, 0, opts);
        (r.dist, r.outcome)
    });
    let r = algos::sssp_resume(&Context::new(&g), opts, &ckpt).expect("resume");
    assert_eq!(r.outcome, RunOutcome::Converged);
    assert_eq!(r.dist, full.dist);
    assert_eq!(r.iterations, full.iterations);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sssp_priority_queue_resume_is_bit_identical() {
    let g = kron10();
    let dir = ckpt_dir("sssp_pq");
    let opts = algos::SsspOptions { use_priority_queue: true, ..Default::default() };
    let full = algos::sssp(&Context::new(&g), 0, opts);
    let ckpt = interrupt(&g, &dir, "sssp", 3, |ctx| {
        let r = algos::sssp(ctx, 0, opts);
        (r.dist, r.outcome)
    });
    // the checkpoint restores the near-far queue (delta, pivot, far
    // pile); options are taken from the snapshot, not the caller
    let r = algos::sssp_resume(&Context::new(&g), algos::SsspOptions::default(), &ckpt)
        .expect("resume");
    assert_eq!(r.outcome, RunOutcome::Converged);
    assert_eq!(r.dist, full.dist);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bc_resume_is_bit_identical() {
    let g = kron10();
    let dir = ckpt_dir("bc");
    let opts = algos::BcOptions::default();
    let full = algos::bc(&Context::new(&g), 0, opts);
    // cap 2 lands inside the forward sweep; a cap two short of the full
    // iteration count lands in the backward sweep — both phases restore
    assert!(full.iterations > 4, "graph too shallow to interrupt both phases");
    for cap in [2u32, full.iterations - 2] {
        let ckpt = interrupt(&g, &dir, "bc", cap, |ctx| {
            let r = algos::bc(ctx, 0, opts);
            (r.iterations, r.outcome)
        });
        let r = algos::bc_resume(&Context::new(&g), opts, &ckpt).expect("resume");
        assert_eq!(r.outcome, RunOutcome::Converged, "cap {cap}");
        assert_eq!(bits(&r.bc_values), bits(&full.bc_values), "cap {cap}");
        assert_eq!(bits(&r.sigmas), bits(&full.sigmas), "cap {cap}");
        assert_eq!(r.labels, full.labels, "cap {cap}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cc_resume_is_bit_identical() {
    let g = kron10();
    let dir = ckpt_dir("cc");
    let full = algos::cc(&Context::new(&g));
    let ckpt = interrupt(&g, &dir, "cc", 1, |ctx| {
        let r = algos::cc(ctx);
        (r.labels, r.outcome)
    });
    let r = algos::cc_resume(&Context::new(&g), &ckpt).expect("resume");
    assert_eq!(r.outcome, RunOutcome::Converged);
    assert_eq!(r.labels, full.labels);
    assert_eq!(r.num_components, full.num_components);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pagerank_resume_is_bit_identical() {
    let g = kron10();
    let dir = ckpt_dir("pagerank");
    let opts = algos::PrOptions::default();
    let full = algos::pagerank(&Context::new(&g), opts);
    let ckpt = interrupt(&g, &dir, "pagerank", 3, |ctx| {
        let r = algos::pagerank(ctx, opts);
        (r.iterations, r.outcome)
    });
    // damping/epsilon come from the snapshot; a caller passing
    // different knobs cannot skew the resumed run
    let wrong = algos::PrOptions { damping: 0.5, epsilon: 1e-2, ..Default::default() };
    let r = algos::pagerank_resume(&Context::new(&g), wrong, &ckpt).expect("resume");
    assert_eq!(r.outcome, RunOutcome::Converged);
    assert_eq!(bits(&r.scores), bits(&full.scores));
    std::fs::remove_dir_all(&dir).ok();
}

/// The typed dispatcher routes a snapshot to the right primitive, and
/// rejects snapshots that name an unknown one.
#[test]
fn resume_dispatcher_routes_by_primitive() {
    let g = kron10();
    let dir = ckpt_dir("dispatch");
    let full = algos::cc(&Context::new(&g));
    let ckpt = interrupt(&g, &dir, "cc", 1, |ctx| {
        let r = algos::cc(ctx);
        (r.labels, r.outcome)
    });
    match algos::resume(&Context::new(&g), &ckpt).expect("dispatch") {
        algos::ResumedRun::Cc(r) => assert_eq!(r.labels, full.labels),
        other => panic!("dispatched to the wrong primitive: {:?}", other.outcome()),
    }
    let bogus = Checkpoint::new("frobnicate", 3);
    assert!(algos::resume(&Context::new(&g), &bogus).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// Periodic snapshots are also resumable on their own — not just the
/// exit snapshot: resuming the *mid-run* file converges to the same
/// fixpoint even though later iterations overwrote it in the
/// interrupted run.
#[test]
fn periodic_snapshot_resumes_too() {
    let g = kron10();
    let dir = ckpt_dir("periodic");
    let opts = algos::BfsOptions::default();
    let full = algos::bfs(&Context::new(&g).with_reverse(&g), 0, opts);
    // checkpoint every iteration, stop at 3: the surviving file is the
    // exit snapshot at iteration 3; delete nothing and resume it
    let ckpt = interrupt(&g, &dir, "bfs", 3, |ctx| {
        let r = algos::bfs(ctx, 0, opts);
        (r.labels, r.outcome)
    });
    let bytes = ckpt.encode();
    let reread = Checkpoint::decode(&bytes).expect("encode/decode round trip");
    let r =
        algos::bfs_resume(&Context::new(&g).with_reverse(&g), opts, &reread).expect("resume");
    assert_eq!(r.labels, full.labels);
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot from one graph must not silently resume on another: the
/// defensive decoder rejects out-of-range state instead of panicking.
#[test]
fn resume_on_the_wrong_graph_is_a_structured_error() {
    let g = kron10();
    let small = GraphBuilder::new().build(gunrock_graph::Coo::from_edges(2, &[(0, 1)]));
    let dir = ckpt_dir("wronggraph");
    let ckpt = interrupt(&g, &dir, "bfs", 2, |ctx| {
        let r = algos::bfs(ctx, 0, algos::BfsOptions::default());
        (r.labels, r.outcome)
    });
    let err = algos::bfs_resume(&Context::new(&small), algos::BfsOptions::default(), &ckpt);
    assert!(err.is_err(), "a 1024-vertex snapshot cannot drive a 2-vertex graph");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a crash between the snapshot's tmp-file fsync and its
/// atomic rename (injected at the `checkpoint:rename` fault site) must
/// never corrupt the resumable file — the crash artifact is the orphan
/// tmp, the previous snapshot survives byte-for-byte, and it still
/// resumes bit-identically.
#[test]
fn crashed_snapshot_rename_never_corrupts_the_resumable_file() {
    use std::sync::Arc;
    let g = kron10();
    let dir = ckpt_dir("crash_rename");
    let opts = algos::BfsOptions::direction_optimized();
    let full = algos::bfs(&Context::new(&g).with_reverse(&g), 0, opts);
    // first interruption leaves a healthy snapshot behind
    interrupt(&g, &dir, "bfs", 2, |ctx| {
        let r = algos::bfs(ctx, 0, opts);
        (r.labels, r.outcome)
    });
    let path = CheckpointPolicy::new(1, &dir).path("bfs");
    let golden = std::fs::read(&path).expect("healthy snapshot bytes");

    // seeded io-fault plan: every subsequent save crashes mid-rename
    let plan = FaultPlan::parse("io=1.0", 7).expect("plan");
    let ctx = Context::new(&g)
        .with_reverse(&g)
        .with_policy(RunPolicy::unbounded().max_iterations(3))
        .with_checkpoints(CheckpointPolicy::new(1, &dir))
        .with_faults(Arc::new(FaultInjector::new(plan)))
        .with_stats();
    let r = algos::bfs(&ctx, 0, opts);
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert!(!ctx.is_poisoned(), "a crashed snapshot never kills the run");
    // every attempted save (periodic + exit) crashed before its rename:
    // the fully-written tmp artifact is on disk...
    assert!(path.with_extension("ckpt.tmp").exists(), "crash leaves the tmp artifact");
    // ...the failures were recorded as recovery events...
    let recoveries = ctx.run_stats().recoveries;
    assert!(
        recoveries.iter().any(|e| e.kind == RecoveryKind::CheckpointFailed),
        "crashed saves surface as checkpoint-failed recovery events: {recoveries:?}"
    );
    // ...and the resumable file still holds the previous snapshot
    assert_eq!(std::fs::read(&path).expect("read"), golden, "previous snapshot survives");
    let ckpt = Checkpoint::load(&path).expect("surviving snapshot still loads");
    let resumed = algos::bfs_resume(&Context::new(&g).with_reverse(&g), opts, &ckpt)
        .expect("surviving snapshot still resumes");
    assert_eq!(resumed.outcome, RunOutcome::Converged);
    assert_eq!(resumed.labels, full.labels, "resume from the survivor is bit-identical");
    std::fs::remove_dir_all(&dir).ok();
}
