//! Property-based cross-validation: arbitrary random graphs, every
//! primitive checked against its serial oracle or algebraic invariant.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::serial;
use gunrock_graph::{Coo, Csr, GraphBuilder, INFINITY, INVALID_VERTEX};
use proptest::prelude::*;

/// Strategy: an arbitrary undirected weighted graph with 2..=60 vertices
/// and 0..=150 edges.
fn arb_graph() -> impl Strategy<Value = (Csr, u32)> {
    (2usize..=60).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec(((0..n as u32), (0..n as u32), (1u32..=64)), 0..=150);
        (edges, 0..n as u32).prop_map(move |(edges, src)| {
            let coo = Coo::from_weighted_edges(n, &edges);
            (GraphBuilder::new().build(coo), src)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_matches_oracle_and_tree_is_valid((g, src) in arb_graph()) {
        let ctx = Context::new(&g).with_reverse(&g);
        let r = algos::bfs(&ctx, src, algos::BfsOptions::direction_optimized());
        prop_assert_eq!(&r.labels, &serial::bfs(&g, src));
        for v in 0..g.num_vertices() {
            if r.labels[v] != INFINITY && v as u32 != src {
                let p = r.preds[v];
                prop_assert_ne!(p, INVALID_VERTEX);
                prop_assert_eq!(r.labels[p as usize] + 1, r.labels[v]);
                prop_assert!(g.neighbors(p).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn sssp_matches_dijkstra((g, src) in arb_graph()) {
        let ctx = Context::new(&g);
        let r = algos::sssp(&ctx, src, algos::SsspOptions::default());
        prop_assert_eq!(&r.dist, &serial::dijkstra(&g, src));
    }

    #[test]
    fn sssp_small_delta_matches((g, src) in arb_graph()) {
        let ctx = Context::new(&g);
        let r = algos::sssp(&ctx, src, algos::SsspOptions { delta: Some(1), ..Default::default() });
        prop_assert_eq!(&r.dist, &serial::dijkstra(&g, src));
    }

    #[test]
    fn cc_partition_matches_union_find((g, _src) in arb_graph()) {
        let ctx = Context::new(&g);
        let r = algos::cc(&ctx);
        prop_assert_eq!(&r.labels, &serial::connected_components(&g));
    }

    #[test]
    fn bc_matches_brandes((g, src) in arb_graph()) {
        let ctx = Context::new(&g);
        let r = algos::bc(&ctx, src, algos::BcOptions::default());
        let want = serial::brandes_single_source(&g, src);
        for (a, b) in r.bc_values.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn pagerank_sums_to_one_and_matches((g, _src) in arb_graph()) {
        let ctx = Context::new(&g);
        let r = algos::pagerank(&ctx, algos::PrOptions { epsilon: 1e-13, ..Default::default() });
        let sum: f64 = r.scores.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {}", sum);
        let want = serial::pagerank(&g, 0.85, 1e-14, 3000);
        for (a, b) in r.scores.iter().zip(&want) {
            prop_assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn mis_and_coloring_invariants((g, _src) in arb_graph()) {
        let ctx = Context::new(&g);
        let mis = algos::extras::maximal_independent_set(&ctx, 99);
        prop_assert!(algos::extras::verify_mis(&g, &mis.in_set));
        let ctx = Context::new(&g);
        let coloring = algos::extras::greedy_coloring(&ctx, 99);
        prop_assert!(algos::extras::verify_coloring(&g, &coloring.colors));
    }
}
