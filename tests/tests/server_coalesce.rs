//! End-to-end coverage for server-side query coalescing (DESIGN.md
//! §13), asserted from the client side over the wire:
//!
//! * **chaos storm** — 256 concurrent point BFS queries against a
//!   batching server where every 8th query injects a certain operator
//!   panic: every query is answered structured, clean queries never
//!   fail (per-lane isolation: a poisoned batch falls back to solo
//!   re-runs), and the metrics summary shows the traffic was amortized
//!   into lane-packed batches;
//! * **deterministic isolation** — a poisoned lane and a clean lane in
//!   one two-lane window: the faulty member fails with a structured
//!   `operator-panic`, its batch-mate still answers;
//! * **drain flush** — shutdown with a half-filled window outstanding:
//!   every waiting member gets a real batched answer (never a dropped
//!   connection), and the summary counts the drain flush.

use gunrock_engine::json::JsonValue;
use gunrock_graph::{Coo, Csr, GraphBuilder};
use gunrock_server::{start, Client, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(60);

fn small_graph() -> Arc<Csr> {
    let edges: Vec<(u32, u32)> = (0..255).map(|v| (v, v + 1)).collect();
    Arc::new(GraphBuilder::new().build(Coo::from_edges(256, &edges)))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gunrock-coalesce-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint root");
    dir
}

fn field<'a>(v: &'a JsonValue, key: &str) -> &'a JsonValue {
    v.get(key).unwrap_or(&JsonValue::Null)
}

fn status_of(resp: &str) -> (String, String) {
    let v = JsonValue::parse(resp).expect("response must be valid JSON");
    let status = field(&v, "status").as_str().unwrap_or("").to_string();
    let code = v
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    (status, code)
}

#[test]
fn chaos_storm_of_256_queries_is_answered_and_amortized() {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 256,
        breaker_threshold: 10_000, // keep the breaker out of this scenario
        batch_window: Duration::from_millis(25),
        batch_lanes: 64,
        checkpoint_dir: temp_dir("storm"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let addr = handle.addr().to_string();

    let queries: Vec<_> = (0..256u32)
        .map(|i| {
            let addr = addr.clone();
            // every 10th query carries a certain panic schedule (10 does
            // not divide the 64-lane window, so sequential arrival can't
            // align every window's first member with a poisoned plan);
            // whether it poisons the shared sweep (fault plans are
            // adopted from the window's first live member) or only its
            // own fallback re-run, isolation must hold either way
            let poisoned = i % 10 == 7;
            thread::spawn(move || {
                let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
                let req = if poisoned {
                    format!(
                        r#"{{"id":"q{i}","primitive":"bfs","src":{},"inject":"panic=1.0","fault_seed":{i}}}"#,
                        i % 256
                    )
                } else {
                    format!(r#"{{"id":"q{i}","primitive":"bfs","src":{}}}"#, i % 256)
                };
                (poisoned, c.request(&req).expect("storm response"))
            })
        })
        .collect();

    let (mut ok, mut failed, mut batched) = (0u64, 0u64, 0u64);
    for t in queries {
        let (poisoned, resp) = t.join().expect("storm thread");
        let (status, code) = status_of(&resp);
        if poisoned {
            // a poisoned lane either fails structured or — when another
            // member's clean plan won the window — runs clean; it must
            // never hang, drop, or take its batch-mates down
            assert!(
                status == "ok" || (status == "failed" && code == "operator-panic"),
                "poisoned query must fail structured or succeed: {resp}"
            );
        } else {
            assert_eq!(
                status, "ok",
                "a clean query must never be failed by a batch-mate: {resp}"
            );
        }
        match status.as_str() {
            "ok" => ok += 1,
            _ => failed += 1,
        }
        let v = JsonValue::parse(&resp).unwrap();
        if field(&v, "batched") == &JsonValue::Bool(true) {
            batched += 1;
        }
    }
    assert_eq!(ok + failed, 256, "every query answered");
    assert!(ok >= 231, "all 231 clean queries succeed (got {ok} ok)");
    // a fully fallen-back batch answers without the batched flag, so the
    // response-side count is advisory; the dispatch-side counters below
    // are the authoritative amortization check
    let _ = batched;

    handle.shutdown();
    let summary = handle.join();
    let v = JsonValue::parse(&summary).expect("summary is JSON");
    let b = field(&v, "batching");
    let batches = field(b, "batches").as_u64().expect("batches counter");
    let lanes = field(b, "lanes").as_u64().expect("lanes counter");
    assert!(batches >= 1, "summary counts batches: {summary}");
    assert!(lanes >= batches, "each batch carries at least one lane: {summary}");
    assert!(
        lanes > batches,
        "a 256-query storm must amortize admissions (lanes {lanes} vs batches {batches})"
    );
}

#[test]
fn poisoned_lane_fails_alone_over_the_wire() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 8,
        breaker_threshold: 100,
        batch_window: Duration::from_millis(400),
        batch_lanes: 2, // the clean arrival seals the window deterministically
        checkpoint_dir: temp_dir("isolate"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let addr = handle.addr().to_string();

    let bad = {
        let addr = addr.clone();
        thread::spawn(move || {
            let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
            c.request(
                r#"{"id":"bad","primitive":"bfs","src":0,"inject":"panic=1.0","fault_seed":7}"#,
            )
            .expect("bad response")
        })
    };
    // the poisoned member opens the window first, so the batch adopts
    // its fault plan and the shared sweep is provably poisoned
    thread::sleep(Duration::from_millis(120));
    let good = thread::spawn(move || {
        let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
        c.request(r#"{"id":"good","primitive":"bfs","src":5}"#).expect("good response")
    });

    let bad_resp = bad.join().expect("bad thread");
    let (status, code) = status_of(&bad_resp);
    assert_eq!(
        (status.as_str(), code.as_str()),
        ("failed", "operator-panic"),
        "got: {bad_resp}"
    );
    let good_resp = good.join().expect("good thread");
    assert_eq!(status_of(&good_resp).0, "ok", "batch-mate must still answer: {good_resp}");

    handle.shutdown();
    let summary = handle.join();
    let v = JsonValue::parse(&summary).unwrap();
    assert_eq!(
        field(field(&v, "batching"), "fallbacks").as_u64(),
        Some(1),
        "the poisoned batch fell back to solo re-runs: {summary}"
    );
    assert_eq!(field(field(&v, "requests"), "completed_ok").as_u64(), Some(1));
    assert_eq!(field(field(&v, "requests"), "failed").as_u64(), Some(1));
}

#[test]
fn drain_flushes_a_half_filled_window_with_real_answers() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 8,
        batch_window: Duration::from_secs(10), // nothing expires on its own
        batch_lanes: 64,
        checkpoint_dir: temp_dir("drainflush"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let addr = handle.addr().to_string();

    // three members sit in a 64-lane window that will never fill
    let waiting: Vec<_> = (0..3)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
                c.request(&format!(r#"{{"id":"w{i}","primitive":"bfs","src":{i}}}"#))
                    .expect("waiting response")
            })
        })
        .collect();
    thread::sleep(Duration::from_millis(400));
    handle.shutdown();

    for t in waiting {
        let resp = t.join().expect("waiting thread");
        let v = JsonValue::parse(&resp).unwrap();
        let status = field(&v, "status").as_str().unwrap_or("");
        assert!(
            status == "ok" || status == "partial",
            "a drained window member gets a real answer: {resp}"
        );
        assert_eq!(
            field(&v, "batched"),
            &JsonValue::Bool(true),
            "drain flushes the window as one batch: {resp}"
        );
        assert_eq!(field(&v, "batch_lanes").as_u64(), Some(3), "got: {resp}");
    }

    let summary = handle.join();
    let v = JsonValue::parse(&summary).unwrap();
    assert!(summary.contains("\"drained\":true"), "got: {summary}");
    let flushed = field(field(&v, "batching"), "flushed");
    assert_eq!(
        field(flushed, "drain").as_u64(),
        Some(1),
        "summary counts the drain flush: {summary}"
    );
}
