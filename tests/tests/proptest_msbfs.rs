//! Property-based equivalence for the bit-parallel MS-BFS batch
//! (DESIGN.md §13): a lane-packed run must produce depths bit-identical
//! to independent single-source runs — for lane counts that don't fill
//! the word (1, 7, 63), across rayon pool sizes (1/2/8), and under
//! degree-descending reordering with per-lane restore.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::serial;
use gunrock_graph::prelude::degree_descending;
use gunrock_graph::{Coo, Csr, GraphBuilder};
use proptest::prelude::*;

/// Strategy: an arbitrary undirected graph with 2..=60 vertices and
/// 0..=150 edges, plus a source batch whose lane count deliberately
/// includes partial words (1, 7, 63) alongside the full 64. Duplicate
/// sources are allowed — lanes are independent.
fn arb_batch() -> impl Strategy<Value = (Csr, Vec<u32>)> {
    (2usize..=60, prop_oneof![Just(1usize), Just(7), Just(63), Just(64)]).prop_flat_map(
        |(n, lanes)| {
            let edges =
                proptest::collection::vec(((0..n as u32), (0..n as u32), (1u32..=64)), 0..=150);
            let sources = proptest::collection::vec(0..n as u32, lanes);
            (edges, sources).prop_map(move |(edges, sources)| {
                let coo = Coo::from_weighted_edges(n, &edges);
                (GraphBuilder::new().build(coo), sources)
            })
        },
    )
}

/// One independent direction-optimized BFS per source — the runs the
/// batch replaces, and the equivalence target.
fn solo_depths(g: &Csr, sources: &[u32]) -> Vec<Vec<u32>> {
    sources
        .iter()
        .map(|&s| {
            let ctx = Context::new(g).with_reverse(g);
            algos::bfs(&ctx, s, algos::BfsOptions::direction_optimized()).labels
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_depths_match_independent_runs((g, sources) in arb_batch()) {
        let ctx = Context::new(&g);
        let r = algos::msbfs(&ctx, &sources);
        prop_assert_eq!(r.outcome, RunOutcome::Converged);
        prop_assert_eq!(r.lanes(), sources.len());
        let solo = solo_depths(&g, &sources);
        for (l, want) in solo.iter().enumerate() {
            prop_assert_eq!(r.lane_depths(l), want.as_slice(), "lane {}", l);
            // and both agree with the serial oracle
            let oracle = serial::bfs(&g, sources[l]);
            prop_assert_eq!(want.as_slice(), oracle.as_slice());
        }
    }

    #[test]
    fn batched_depths_are_pool_size_invariant((g, sources) in arb_batch()) {
        // the depth matrix is a deterministic function of (graph,
        // sources): 1, 2, and 8 rayon threads must agree bit-for-bit,
        // and the serial fast path (forced via a huge threshold) too
        let reference = {
            let ctx = Context::new(&g);
            algos::msbfs(&ctx, &sources).depths
        };
        for threads in [1usize, 2, 8] {
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let depths = pool.install(|| {
                let ctx = Context::new(&g);
                algos::msbfs(&ctx, &sources).depths
            });
            prop_assert_eq!(&depths, &reference, "pool of {}", threads);
        }
        let serial_path = {
            let cfg = gunrock_engine::EngineConfig::new().with_serial_threshold(1 << 20);
            let ctx = Context::new(&g).with_config(cfg);
            algos::msbfs(&ctx, &sources).depths
        };
        prop_assert_eq!(&serial_path, &reference);
    }

    #[test]
    fn reordered_batch_restores_to_original_ids((g, sources) in arb_batch()) {
        // run the batch on the degree-descending relabeled graph with
        // translated sources; every restored lane must match the
        // original-id solo run exactly (the CLI --reorder --sources path)
        let relab = degree_descending(&g);
        let rg = relab.apply(&g);
        let isrcs: Vec<u32> = sources.iter().map(|&s| relab.new_of_old(s)).collect();
        let ctx = Context::new(&rg);
        let r = algos::msbfs(&ctx, &isrcs);
        let solo = solo_depths(&g, &sources);
        for (l, want) in solo.iter().enumerate() {
            let restored = relab.restore_values(r.lane_depths(l));
            prop_assert_eq!(&restored, want, "lane {}", l);
        }
    }
}
