//! End-to-end resilience scenarios against an in-process `gunrock-serve`
//! instance, asserted entirely from the client side:
//!
//! * **overload** — ≥32 concurrent queries against queue capacity 4:
//!   overflow gets structured `queue-full` rejections with a retry hint,
//!   nothing hangs, admitted work completes;
//! * **panic isolation** — an injected operator panic fails only its own
//!   request; the very next request on the same server succeeds;
//! * **circuit breaker** — K consecutive panics open one primitive's
//!   breaker (clean requests shed with `circuit-open`), other primitives
//!   keep serving, and the breaker recovers through a half-open probe
//!   after the cool-down;
//! * **graceful drain** — shutdown mid-run cancels an in-flight long job
//!   at an operator boundary, leaves a resumable snapshot, and the
//!   resumed run is bit-identical (by `result_hash`) to an undisturbed
//!   full run.

use gunrock_engine::json::JsonValue;
use gunrock_graph::{Coo, Csr, GraphBuilder};
use gunrock_server::{start, Client, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn small_graph() -> Arc<Csr> {
    let edges: Vec<(u32, u32)> = (0..255).map(|v| (v, v + 1)).collect();
    Arc::new(GraphBuilder::new().build(Coo::from_edges(256, &edges)))
}

/// A chain long enough that BFS takes thousands of tiny iterations —
/// a drain request lands mid-run with huge margin.
fn long_chain() -> Arc<Csr> {
    let n: u32 = 400_000;
    let edges: Vec<(u32, u32)> = (0..n - 1).map(|v| (v, v + 1)).collect();
    Arc::new(GraphBuilder::new().build(Coo::from_edges(n as usize, &edges)))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gunrock-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create checkpoint root");
    dir
}

fn field<'a>(v: &'a JsonValue, key: &str) -> &'a JsonValue {
    v.get(key).unwrap_or(&JsonValue::Null)
}

fn status_of(resp: &str) -> (String, String) {
    let v = JsonValue::parse(resp).expect("response must be valid JSON");
    let status = field(&v, "status").as_str().unwrap_or("").to_string();
    let code = v
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(JsonValue::as_str)
        .unwrap_or("")
        .to_string();
    (status, code)
}

#[test]
fn overflow_gets_structured_rejections_not_hangs() {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 4,
        checkpoint_dir: temp_dir("overflow"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let addr = handle.addr().to_string();

    // Saturate the pool first (2 running), then fill the queue (4
    // waiting), pausing so the first two are actually dequeued before
    // the queue-fillers arrive.
    let mut occupiers = Vec::new();
    for phase in [2usize, 4] {
        for _ in 0..phase {
            let addr = addr.clone();
            occupiers.push(thread::spawn(move || {
                let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
                c.request(r#"{"primitive":"sleep","duration_ms":1500}"#)
                    .expect("sleep response")
            }));
        }
        thread::sleep(Duration::from_millis(300));
    }

    // Burst 26 more concurrent queries: pool busy for >1s, queue full,
    // so every one must be rejected immediately — and in a structured
    // way, not by hanging or dropping the connection.
    let burst: Vec<_> = (0..26)
        .map(|i| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
                c.request(&format!(r#"{{"id":"b{i}","primitive":"bfs","src":0}}"#))
                    .expect("burst response")
            })
        })
        .collect();

    let mut rejected = 0;
    for t in burst {
        let resp = t.join().expect("burst thread");
        let (status, code) = status_of(&resp);
        assert_eq!(status, "rejected", "expected a structured rejection, got: {resp}");
        assert_eq!(code, "queue-full", "got: {resp}");
        let v = JsonValue::parse(&resp).unwrap();
        assert!(
            field(&v, "retry_after_ms").as_u64().is_some(),
            "queue-full must carry a retry hint: {resp}"
        );
        rejected += 1;
    }
    assert_eq!(rejected, 26, "all burst queries answered");

    // The occupying jobs complete normally (ok; 32 total queries served).
    for t in occupiers {
        let resp = t.join().expect("occupier thread");
        let (status, _) = status_of(&resp);
        assert_eq!(status, "ok", "sleep jobs finish cleanly: {resp}");
    }

    handle.shutdown();
    let summary = handle.join();
    let v = JsonValue::parse(&summary).expect("summary is JSON");
    assert_eq!(field(&v, "schema").as_str(), Some("gunrock-serve/v1"));
    assert_eq!(field(field(&v, "rejected"), "queue_full").as_u64(), Some(26));
    assert_eq!(field(field(&v, "requests"), "completed_ok").as_u64(), Some(6));
}

#[test]
fn injected_panic_fails_only_its_own_request() {
    let cfg = ServerConfig {
        workers: 2,
        queue_capacity: 8,
        breaker_threshold: 100, // keep the breaker out of this scenario
        checkpoint_dir: temp_dir("panic"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let mut c = Client::connect(&handle.addr().to_string(), CLIENT_TIMEOUT).expect("connect");

    let poisoned = c
        .request(
            r#"{"id":"bad","primitive":"bfs","src":0,"inject":"panic=1.0","fault_seed":7}"#,
        )
        .expect("poisoned response");
    let (status, code) = status_of(&poisoned);
    assert_eq!(status, "failed", "got: {poisoned}");
    assert_eq!(code, "operator-panic", "got: {poisoned}");

    // Same server, next request: the worker survived, the graph is fine.
    let healthy = c.request(r#"{"id":"good","primitive":"bfs","src":0}"#).expect("healthy");
    let (status, _) = status_of(&healthy);
    assert_eq!(status, "ok", "a panic must only fail its own request: {healthy}");

    handle.shutdown();
    let summary = handle.join();
    let v = JsonValue::parse(&summary).unwrap();
    assert_eq!(field(field(&v, "requests"), "failed").as_u64(), Some(1));
    assert_eq!(field(field(&v, "requests"), "completed_ok").as_u64(), Some(1));
}

#[test]
fn breaker_trips_sheds_and_recovers_after_cooldown() {
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 8,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(400),
        checkpoint_dir: temp_dir("breaker"),
        ..ServerConfig::default()
    };
    let handle = start(small_graph(), cfg, 0).expect("server starts");
    let mut c = Client::connect(&handle.addr().to_string(), CLIENT_TIMEOUT).expect("connect");

    for i in 0..3 {
        let resp = c
            .request(&format!(
                r#"{{"id":"p{i}","primitive":"bfs","src":0,"inject":"panic=1.0","fault_seed":{i}}}"#
            ))
            .expect("panic response");
        let (status, code) = status_of(&resp);
        assert_eq!(
            (status.as_str(), code.as_str()),
            ("failed", "operator-panic"),
            "got: {resp}"
        );
    }

    // The bfs breaker is open: a clean request is shed without running.
    let shed = c.request(r#"{"id":"shed","primitive":"bfs","src":0}"#).expect("shed response");
    let (status, code) = status_of(&shed);
    assert_eq!((status.as_str(), code.as_str()), ("rejected", "circuit-open"), "got: {shed}");
    let v = JsonValue::parse(&shed).unwrap();
    assert!(
        field(&v, "retry_after_ms").as_u64().is_some(),
        "shed carries a retry hint: {shed}"
    );

    // Other primitives are keyed independently and keep serving.
    let cc = c.request(r#"{"id":"cc","primitive":"cc"}"#).expect("cc response");
    assert_eq!(status_of(&cc).0, "ok", "breakers are per-primitive: {cc}");

    // The metrics meta request reports the open breaker.
    let metrics = c.request(r#"{"primitive":"metrics"}"#).expect("metrics");
    assert!(metrics.contains("\"state\":\"open\""), "got: {metrics}");

    // After the cool-down a half-open probe is admitted; success closes
    // the breaker again.
    thread::sleep(Duration::from_millis(500));
    let probe = c.request(r#"{"id":"probe","primitive":"bfs","src":0}"#).expect("probe");
    assert_eq!(status_of(&probe).0, "ok", "probe runs after cool-down: {probe}");
    let again = c.request(r#"{"id":"again","primitive":"bfs","src":0}"#).expect("again");
    assert_eq!(status_of(&again).0, "ok", "breaker closed after the probe: {again}");

    handle.shutdown();
    let summary = handle.join();
    let v = JsonValue::parse(&summary).unwrap();
    assert_eq!(field(field(&v, "rejected"), "circuit_open").as_u64(), Some(1));
}

#[test]
fn drain_checkpoints_in_flight_work_and_resume_is_bit_identical() {
    let graph = long_chain();
    let ckpt_root = temp_dir("drain");
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 4,
        checkpoint_dir: ckpt_root.clone(),
        ..ServerConfig::default()
    };

    // Reference: an undisturbed full run on its own server.
    let reference = start(Arc::clone(&graph), cfg.clone(), 0).expect("reference server");
    let mut c =
        Client::connect(&reference.addr().to_string(), CLIENT_TIMEOUT).expect("connect");
    let full = c.request(r#"{"id":"full","primitive":"bfs","src":0}"#).expect("full run");
    let v = JsonValue::parse(&full).unwrap();
    assert_eq!(field(&v, "status").as_str(), Some("ok"), "got: {full}");
    let full_hash = field(&v, "result_hash").as_str().expect("full hash").to_string();
    reference.shutdown();
    reference.join();

    // Interrupted: same query with checkpointing, drained mid-run.
    let victim = start(Arc::clone(&graph), cfg.clone(), 0).expect("victim server");
    let addr = victim.addr().to_string();
    let in_flight = thread::spawn(move || {
        let mut c = Client::connect(&addr, CLIENT_TIMEOUT).expect("connect");
        c.request(r#"{"id":"long","primitive":"bfs","src":0,"checkpoint":true}"#)
            .expect("in-flight response")
    });
    // Let the job start (the 400k-iteration chain runs for a long time),
    // then pull the plug.
    thread::sleep(Duration::from_millis(60));
    victim.shutdown();
    let summary = victim.join();
    let interrupted = in_flight.join().expect("in-flight thread");
    let v = JsonValue::parse(&interrupted).unwrap();
    assert_eq!(
        field(&v, "status").as_str(),
        Some("partial"),
        "drain must cancel the in-flight job, not drop it: {interrupted}"
    );
    assert_eq!(field(&v, "outcome").as_str(), Some("cancelled"), "got: {interrupted}");
    let ckpt_path =
        field(&v, "checkpoint").as_str().expect("cancelled job leaves a snapshot").to_string();
    assert!(std::path::Path::new(&ckpt_path).exists(), "snapshot file exists: {ckpt_path}");
    let sv = JsonValue::parse(&summary).unwrap();
    assert_eq!(field(&sv, "drained").as_str(), None, "drained is a bool");
    assert!(summary.contains("\"drained\":true"), "got: {summary}");
    assert!(
        field(&sv, "checkpoints_written").as_u64() >= Some(1),
        "summary counts the exit snapshot: {summary}"
    );

    // Resume on a fresh server: the continued run must converge and be
    // bit-identical to the undisturbed full run.
    let resumer = start(Arc::clone(&graph), cfg, 0).expect("resume server");
    let mut c = Client::connect(&resumer.addr().to_string(), CLIENT_TIMEOUT).expect("connect");
    let resumed = c
        .request(&format!(
            r#"{{"id":"resumed","primitive":"bfs","src":0,"resume":{ckpt_path:?}}}"#
        ))
        .expect("resumed response");
    let v = JsonValue::parse(&resumed).unwrap();
    assert_eq!(field(&v, "status").as_str(), Some("ok"), "resume converges: {resumed}");
    assert_eq!(field(&v, "resumed"), &JsonValue::Bool(true));
    let resumed_hash = field(&v, "result_hash").as_str().expect("resumed hash");
    assert_eq!(resumed_hash, full_hash, "resume must be bit-identical to the full run");
    resumer.shutdown();
    resumer.join();
    let _ = std::fs::remove_dir_all(&ckpt_root);
}
