//! End-to-end pipeline: generate -> serialize -> reload -> analyze,
//! across both I/O formats, verifying the reloaded graph produces
//! identical analytics.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_graph::generators::rmat;
use gunrock_graph::{io, GraphBuilder};

#[test]
fn binary_round_trip_preserves_analytics() {
    let g =
        GraphBuilder::new().random_weights(1, 64, 5).build(rmat(9, 8, Default::default(), 5));
    let mut buf = Vec::new();
    io::write_csr_binary(&g, &mut buf).unwrap();
    let g2 = io::read_csr_binary(&buf[..]).unwrap();
    let r1 = {
        let ctx = Context::new(&g);
        algos::sssp(&ctx, 0, Default::default()).dist
    };
    let r2 = {
        let ctx = Context::new(&g2);
        algos::sssp(&ctx, 0, Default::default()).dist
    };
    assert_eq!(r1, r2);
}

#[test]
fn edge_list_round_trip_preserves_analytics() {
    let coo = rmat(8, 8, Default::default(), 9);
    let g = GraphBuilder::new().build(coo.clone());
    let mut buf = Vec::new();
    io::write_edge_list(&coo, &mut buf).unwrap();
    let coo2 = io::read_edge_list(&buf[..]).unwrap();
    let g2 = GraphBuilder::new().build(coo2);
    let labels1 = {
        let ctx = Context::new(&g);
        algos::bfs(&ctx, 0, Default::default()).labels
    };
    let labels2 = {
        let ctx = Context::new(&g2);
        algos::bfs(&ctx, 0, Default::default()).labels
    };
    assert_eq!(labels1, labels2);
}

#[test]
fn file_based_load_dispatches_on_extension() {
    let dir = std::env::temp_dir().join("gunrock_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let g = GraphBuilder::new().build(rmat(7, 8, Default::default(), 11));
    // binary
    let bin_path = dir.join("g.bin");
    io::write_csr_binary(&g, std::fs::File::create(&bin_path).unwrap()).unwrap();
    let gb = io::load_graph(&bin_path).unwrap();
    assert_eq!(gb.col_indices(), g.col_indices());
    // edge list
    let txt_path = dir.join("g.txt");
    io::write_edge_list(&g.to_coo(), std::fs::File::create(&txt_path).unwrap()).unwrap();
    let gt = io::load_graph(&txt_path).unwrap();
    assert_eq!(gt.num_vertices(), g.num_vertices());
    // the text round trip re-runs the undirected builder; analytics agree
    let ctx1 = Context::new(&g);
    let ctx2 = Context::new(&gt);
    assert_eq!(algos::cc(&ctx1).num_components, algos::cc(&ctx2).num_components);
    std::fs::remove_dir_all(&dir).ok();
}
