//! Execution-guard integration tests: every primitive must honor the
//! context's [`RunPolicy`] on a non-trivial graph — a 1-iteration cap
//! or a pre-tripped cancel flag comes back promptly with the matching
//! [`RunOutcome`] and a usable partial result, never a hang or a panic.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::serial;
use gunrock_graph::generators::rmat;
use gunrock_graph::{Csr, GraphBuilder, INFINITY, INVALID_VERTEX};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Scale-12 Kronecker graph (the CLI's default input): big enough that
/// one iteration is nowhere near convergence for any traversal.
fn kron12() -> Csr {
    GraphBuilder::new().random_weights(1, 64, 42).build(rmat(
        12,
        16,
        gunrock_graph::generators::RmatParams::graph500(),
        42,
    ))
}

fn capped(g: &Csr) -> Context<'_> {
    Context::new(g).with_policy(RunPolicy::unbounded().max_iterations(1))
}

fn cancelled(g: &Csr) -> Context<'_> {
    let flag = Arc::new(AtomicBool::new(true));
    Context::new(g).with_policy(RunPolicy::unbounded().cancel_flag(flag))
}

#[test]
fn bfs_cap_yields_one_consistent_level() {
    let g = kron12();
    let r = algos::bfs(&capped(&g), 0, algos::BfsOptions::default());
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert_eq!(r.iterations, 1);
    // exactly the source's neighborhood is labeled, at the right depths
    let full = serial::bfs(&g, 0);
    for (v, &depth) in full.iter().enumerate() {
        if depth <= 1 {
            assert_eq!(r.labels[v], depth, "vertex {v}");
        } else {
            assert_eq!(r.labels[v], INFINITY, "vertex {v}");
        }
    }
}

#[test]
fn bfs_cancel_returns_source_only() {
    let g = kron12();
    let r = algos::bfs(&cancelled(&g), 0, algos::BfsOptions::default());
    assert_eq!(r.outcome, RunOutcome::Cancelled);
    assert_eq!(r.iterations, 0);
    assert_eq!(r.labels[0], 0);
    assert!(r.labels[1..].iter().all(|&l| l == INFINITY));
    assert!(r.preds.iter().all(|&p| p == INVALID_VERTEX));
}

#[test]
fn bfs_cancel_mid_run_stops_between_levels() {
    // a flag flipped from another thread while the enactment runs: the
    // loop stops at the next iteration boundary with consistent labels
    let g = kron12();
    let flag = Arc::new(AtomicBool::new(false));
    let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
    flag.store(true, std::sync::atomic::Ordering::Release);
    let r = algos::bfs(&ctx, 0, algos::BfsOptions::default());
    assert_eq!(r.outcome, RunOutcome::Cancelled);
    // whatever was labeled is a prefix of the true BFS levels
    let full = serial::bfs(&g, 0);
    for (v, &label) in r.labels.iter().enumerate() {
        if label != INFINITY {
            assert_eq!(label, full[v], "vertex {v}");
        }
    }
}

#[test]
fn sssp_cap_keeps_distances_as_upper_bounds() {
    let g = kron12();
    let r = algos::sssp(&capped(&g), 0, algos::SsspOptions::default());
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert_eq!(r.iterations, 1);
    let want = serial::dijkstra(&g, 0);
    for (v, &lower) in want.iter().enumerate() {
        assert!(r.dist[v] >= lower, "vertex {v}: partial undershoots");
    }
    assert_eq!(r.dist[0], 0);
}

#[test]
fn sssp_cancel_settles_only_the_source() {
    let g = kron12();
    let r = algos::sssp(&cancelled(&g), 0, algos::SsspOptions::default());
    assert_eq!(r.outcome, RunOutcome::Cancelled);
    assert_eq!(r.iterations, 0);
    assert_eq!(r.dist[0], 0);
    assert!(r.dist[1..].iter().all(|&d| d == INFINITY));
}

#[test]
fn bc_cap_trips_during_the_forward_phase() {
    let g = kron12();
    let r = algos::bc(&capped(&g), 0, algos::BcOptions::default());
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert_eq!(r.iterations, 1);
    // dependency scores never accumulate when the forward phase dies
    assert!(r.bc_values.iter().all(|&d| d == 0.0));
}

#[test]
fn cc_cap_yields_a_refinement() {
    let g = kron12();
    let r = algos::cc(&capped(&g));
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    let want = serial::connected_components(&g);
    // partial labels never merge vertices across true components
    for v in 0..g.num_vertices() {
        assert_eq!(want[r.labels[v] as usize], want[v], "vertex {v}");
    }
    assert!(r.num_components >= serial::num_components(&want));
}

#[test]
fn pagerank_cap_conserves_mass() {
    let g = kron12();
    let r =
        algos::pagerank(&capped(&g), algos::PrOptions { epsilon: 1e-12, ..Default::default() });
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert_eq!(r.iterations, 1);
    let sum: f64 = r.scores.iter().sum();
    let want = 1.0 - 0.85f64.powi(2); // (1-d)(1+d) after one round
    assert!((sum - want).abs() < 1e-9, "sum {sum}, want {want}");
}

#[test]
fn mst_cap_commits_only_safe_edges() {
    let g = kron12();
    let r = algos::mst(&capped(&g));
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert_eq!(r.rounds, 1);
    // committed edges are acyclic and part of some minimum forest
    assert!(r.total_weight <= algos::mst::mst_weight_kruskal(&g));
    let n = g.num_vertices();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(p: &mut [u32], mut x: u32) -> u32 {
        while p[x as usize] != x {
            p[x as usize] = p[p[x as usize] as usize];
            x = p[x as usize];
        }
        x
    }
    for &e in &r.edges {
        let (u, v) = (g.edge_source(e), g.edge_dest(e));
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        assert_ne!(ru, rv, "edge {e} closes a cycle");
        parent[ru.max(rv) as usize] = ru.min(rv);
    }
}

#[test]
fn kcore_cap_bounds_core_numbers_from_below() {
    let g = kron12();
    let full = {
        let ctx = Context::new(&g);
        algos::k_core(&ctx)
    };
    let r = algos::k_core(&capped(&g));
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    for v in 0..g.num_vertices() {
        assert!(r.core_numbers[v] <= full.core_numbers[v], "vertex {v}");
    }
}

#[test]
fn labelprop_cap_stops_after_one_round() {
    let g = kron12();
    let r = algos::label_prop::label_propagation(&capped(&g), 50);
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert_eq!(r.rounds, 1);
    assert!(r.labels.iter().all(|&l| (l as usize) < g.num_vertices()));
}

#[test]
fn every_primitive_cancels_without_touching_the_graph() {
    // a pre-tripped cancel must return in O(init) time on the scale-12
    // graph with iteration counts of zero across the board
    let g = kron12();
    let t = std::time::Instant::now();
    assert_eq!(algos::bfs(&cancelled(&g), 0, Default::default()).iterations, 0);
    assert_eq!(algos::sssp(&cancelled(&g), 0, Default::default()).iterations, 0);
    assert_eq!(algos::bc(&cancelled(&g), 0, Default::default()).iterations, 0);
    assert_eq!(algos::cc(&cancelled(&g)).iterations, 0);
    assert_eq!(algos::pagerank(&cancelled(&g), Default::default()).iterations, 0);
    assert_eq!(algos::mst(&cancelled(&g)).rounds, 0);
    assert_eq!(algos::k_core(&cancelled(&g)).iterations, 0);
    assert_eq!(algos::label_prop::label_propagation(&cancelled(&g), 50).rounds, 0);
    assert_eq!(algos::triangle_count(&cancelled(&g)).total, 0);
    // generous bound: init allocations only, no traversal work
    assert!(t.elapsed() < std::time::Duration::from_secs(10));
}

#[test]
fn timeout_policy_trips_on_a_zero_budget() {
    let g = kron12();
    let ctx = Context::new(&g)
        .with_policy(RunPolicy::unbounded().wall_clock_budget(std::time::Duration::ZERO));
    let r = algos::bfs(&ctx, 0, algos::BfsOptions::default());
    assert_eq!(r.outcome, RunOutcome::TimedOut);
    assert_eq!(r.iterations, 0);
}

#[test]
fn generic_enact_loop_honors_the_same_policy() {
    // the Primitive-trait path (problem::enact) shares the guard
    use gunrock::prelude::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Trivial {
        steps: Arc<AtomicU32>,
    }
    impl Primitive for Trivial {
        type Output = u32;
        fn init(&mut self, ctx: &Context<'_>) -> Frontier {
            Frontier::full(ctx.num_vertices())
        }
        fn iteration(&mut self, _ctx: &Context<'_>, f: Frontier, _iter: u32) -> Frontier {
            self.steps.fetch_add(1, Ordering::Relaxed);
            f // never converges on its own
        }
        fn extract(self) -> u32 {
            self.steps.load(Ordering::Relaxed)
        }
    }

    let g = kron12();
    let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(3));
    let steps = Arc::new(AtomicU32::new(0));
    let (ran, stats) = enact(&ctx, Trivial { steps: steps.clone() });
    assert_eq!(stats.outcome, RunOutcome::IterationCapped);
    assert_eq!(ran, 3, "a non-converging primitive is still bounded");
}

/// Satellite: RunPolicy enforcement must survive the small-frontier
/// serial fast path. With `serial_threshold` forced high enough that
/// every advance bypasses the scan/load-balance machinery, the budget
/// checks still fire: a zero wall-clock budget times out immediately, an
/// iteration cap still caps, and a pre-raised cancel flag still cancels.
#[test]
fn guards_still_fire_under_the_serial_fast_path() {
    let g = kron12();
    // every frontier takes the single-threaded fast path
    let all_serial = EngineConfig::new().with_serial_threshold(usize::MAX);

    let ctx = Context::new(&g)
        .with_config(all_serial)
        .with_policy(RunPolicy::unbounded().wall_clock_budget(std::time::Duration::ZERO));
    let r = algos::bfs(&ctx, 0, algos::BfsOptions::default());
    assert_eq!(r.outcome, RunOutcome::TimedOut, "zero budget under the serial path");
    assert_eq!(r.labels[0], 0, "best-so-far result is still usable");

    let ctx = Context::new(&g)
        .with_config(all_serial)
        .with_policy(RunPolicy::unbounded().max_iterations(1));
    let r = algos::bfs(&ctx, 0, algos::BfsOptions::default());
    assert_eq!(r.outcome, RunOutcome::IterationCapped);
    assert_eq!(r.iterations, 1);

    let flag = Arc::new(AtomicBool::new(true));
    let ctx = Context::new(&g)
        .with_config(all_serial)
        .with_policy(RunPolicy::unbounded().cancel_flag(flag));
    let r = algos::sssp(&ctx, 0, algos::SsspOptions::default());
    assert_eq!(r.outcome, RunOutcome::Cancelled, "cancel under the serial path");

    let ctx = Context::new(&g)
        .with_config(all_serial)
        .with_policy(RunPolicy::unbounded().wall_clock_budget(std::time::Duration::ZERO));
    let r = algos::sssp(&ctx, 0, algos::SsspOptions::default());
    assert_eq!(r.outcome, RunOutcome::TimedOut);
    // only the source can have settled before the first boundary check
    assert!(r.dist[1..].iter().filter(|&&d| d != INFINITY).count() <= g.max_degree() as usize);
}
