//! Determinism guarantees: generators are seed-deterministic, and every
//! primitive's *result* is run-to-run deterministic even though the
//! engines race internally (labels/distances/components are unique fixed
//! points; only tie-broken artifacts like BFS parents may vary, and even
//! those must stay valid).

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_graph::generators::rmat;
use gunrock_graph::GraphBuilder;
use gunrock_integration::graph_suite;

#[test]
fn generators_are_seed_deterministic() {
    let a = GraphBuilder::new().build(rmat(9, 8, Default::default(), 31));
    let b = GraphBuilder::new().build(rmat(9, 8, Default::default(), 31));
    assert_eq!(a.row_offsets(), b.row_offsets());
    assert_eq!(a.col_indices(), b.col_indices());
}

#[test]
fn repeated_runs_reach_identical_fixed_points() {
    for (name, g) in graph_suite() {
        let run_bfs = || {
            let ctx = Context::new(&g).with_reverse(&g);
            algos::bfs(&ctx, 0, algos::BfsOptions::direction_optimized()).labels
        };
        assert_eq!(run_bfs(), run_bfs(), "bfs on {name}");

        let run_sssp = || {
            let ctx = Context::new(&g);
            algos::sssp(&ctx, 0, algos::SsspOptions::default()).dist
        };
        assert_eq!(run_sssp(), run_sssp(), "sssp on {name}");

        let run_cc = || {
            let ctx = Context::new(&g);
            algos::cc(&ctx).labels
        };
        assert_eq!(run_cc(), run_cc(), "cc on {name}");

        let run_pr = || {
            let ctx = Context::new(&g);
            algos::pagerank(&ctx, algos::PrOptions::default()).scores
        };
        // floating accumulation order can vary: compare within epsilon
        let (a, b) = (run_pr(), run_pr());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "pagerank on {name}: {x} vs {y}");
        }
    }
}

#[test]
fn load_balanced_advance_output_is_bit_deterministic() {
    // the LB strategy assigns output slots by edge rank, so even the
    // *order* of the output frontier is reproducible
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let input = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        let out1 = advance::advance(
            &ctx,
            &input,
            AdvanceSpec::v2v().with_mode(AdvanceMode::LoadBalanced),
            &AcceptAll,
        );
        let out2 = advance::advance(
            &ctx,
            &input,
            AdvanceSpec::v2v().with_mode(AdvanceMode::LoadBalanced),
            &AcceptAll,
        );
        assert_eq!(out1.as_slice(), out2.as_slice(), "lb order on {name}");
    }
}
