//! Integration tests for the §4.3 program structure: full primitives
//! written against the `Primitive` trait + generic `enact` driver, and
//! cross-checked against the dedicated implementations. Demonstrates the
//! paper's claim that "users only need to write from 133 (simple
//! primitive) to 261 (complex primitive) lines": the SSSP below is ~50
//! lines of algorithm code.

use gunrock::prelude::*;
use gunrock_baselines::serial;
use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
use gunrock_graph::{Csr, INFINITY};
use gunrock_integration::graph_suite;
use std::sync::atomic::{AtomicU32, Ordering};

/// SSSP as a [`Primitive`]: advance (relax) + filter (dedup) + near-far
/// queue — Algorithm 1 of the paper, expressed in the generic driver.
struct SsspPrimitive<'g> {
    graph: &'g Csr,
    src: u32,
    dist: Vec<AtomicU32>,
    tags: Vec<AtomicU32>,
    queue: NearFarQueue,
    round: u32,
}

struct Relax<'a> {
    graph: &'a Csr,
    dist: &'a [AtomicU32],
}

impl AdvanceFunctor for Relax<'_> {
    fn cond_edge(&self, s: u32, d: u32, e: u32) -> bool {
        let nd =
            self.dist[s as usize].load(Ordering::Relaxed).saturating_add(self.graph.weight(e));
        self.dist[d as usize].fetch_min(nd, Ordering::Relaxed) > nd
    }
}

struct Claim<'a> {
    tags: &'a [AtomicU32],
    round: u32,
}

impl FilterFunctor for Claim<'_> {
    fn cond(&self, v: u32) -> bool {
        self.tags[v as usize].swap(self.round, Ordering::Relaxed) != self.round
    }
}

impl Primitive for SsspPrimitive<'_> {
    type Output = Vec<u32>;

    fn init(&mut self, ctx: &Context<'_>) -> Frontier {
        self.dist = atomic_u32_vec(ctx.num_vertices(), INFINITY);
        self.tags = atomic_u32_vec(ctx.num_vertices(), u32::MAX);
        self.dist[self.src as usize].store(0, Ordering::Relaxed);
        Frontier::single(self.src)
    }

    fn iteration(&mut self, ctx: &Context<'_>, frontier: Frontier, _iter: u32) -> Frontier {
        self.round = self.round.wrapping_add(1);
        let raw = advance::advance(
            ctx,
            &frontier,
            AdvanceSpec::v2v(),
            &Relax { graph: self.graph, dist: &self.dist },
        );
        let dedup = filter::filter(ctx, &raw, &Claim { tags: &self.tags, round: self.round });
        let near = self.queue.split(dedup, |v| self.dist[v as usize].load(Ordering::Relaxed));
        if near.is_empty() {
            self.queue.refill(|v| self.dist[v as usize].load(Ordering::Relaxed))
        } else {
            near
        }
    }

    fn extract(self) -> Vec<u32> {
        unwrap_atomic_u32(&self.dist)
    }
}

#[test]
fn sssp_as_a_primitive_matches_dijkstra_on_suite() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let primitive = SsspPrimitive {
            graph: &g,
            src: 0,
            dist: Vec::new(),
            tags: Vec::new(),
            queue: NearFarQueue::new(8),
            round: 0,
        };
        let (dist, stats) = enact(&ctx, primitive);
        assert_eq!(dist, serial::dijkstra(&g, 0), "{name}");
        assert!(stats.iterations > 0, "{name}");
        assert_eq!(stats.timing.edges_examined, ctx.counters.edges(), "{name}");
    }
}

/// Convergence-override path: a primitive that stops on an iteration cap
/// rather than an empty frontier (the paper's "maximum number of
/// iterations" criterion).
struct CappedWalk {
    cap: u32,
}

impl Primitive for CappedWalk {
    type Output = u32;
    fn init(&mut self, ctx: &Context<'_>) -> Frontier {
        Frontier::full(ctx.num_vertices())
    }
    fn iteration(&mut self, _ctx: &Context<'_>, frontier: Frontier, _iter: u32) -> Frontier {
        frontier // never empties on its own
    }
    fn converged(&self, _f: &Frontier, iter: u32) -> bool {
        iter >= self.cap
    }
    fn extract(self) -> u32 {
        self.cap
    }
}

#[test]
fn iteration_cap_convergence_criterion() {
    let (_, g) = &graph_suite()[0];
    let ctx = Context::new(g);
    let (_, stats) = enact(&ctx, CappedWalk { cap: 7 });
    assert_eq!(stats.iterations, 7);
}
