//! Buffer-pool integration: the zero-allocation advance property end to
//! end (§4.2's "frontier data structures are reused across iterations").
//!
//! The unit tests in `gunrock-engine` cover the pool in isolation; these
//! tests drive whole primitives through a shared `Context` and assert
//! the properties the bench numbers rest on: steady-state runs stop
//! allocating, the high-water marks are monotone, and pooling (plus the
//! small-frontier serial fast path it enables) never changes a result —
//! at any thread count.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_graph::generators::rmat::{rmat, RmatParams};
use gunrock_graph::{Csr, GraphBuilder};

fn test_graph() -> Csr {
    GraphBuilder::new().build(rmat(10, 8, RmatParams::social(), 7))
}

/// Runs `f` inside a dedicated rayon pool of `threads` workers.
fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

#[test]
fn repeated_runs_on_one_context_reach_a_zero_allocation_steady_state() {
    let g = test_graph();
    let ctx = Context::new(&g).with_reverse(&g);
    // warm-up: first runs populate every size class the traversal needs
    for _ in 0..3 {
        algos::bfs(&ctx, 0, algos::BfsOptions::default());
    }
    let warm = ctx.pool().stats();
    for _ in 0..10 {
        let r = algos::bfs(&ctx, 0, algos::BfsOptions::default());
        assert_eq!(r.outcome, RunOutcome::Converged);
    }
    let after = ctx.pool().stats();
    assert_eq!(
        after.allocations, warm.allocations,
        "steady-state BFS iterations must be served entirely from the pool"
    );
    assert!(after.checkouts > warm.checkouts, "the runs did go through the pool");
}

#[test]
fn high_water_marks_are_monotone_across_primitives() {
    let g = test_graph();
    let ctx = Context::new(&g);
    let mut prev = ctx.pool().stats();
    for _ in 0..4 {
        algos::sssp(&ctx, 0, algos::SsspOptions::default());
        let s = ctx.pool().stats();
        assert!(s.live_high_water >= prev.live_high_water);
        assert!(s.bytes_high_water >= prev.bytes_high_water);
        assert!(s.checkouts >= prev.checkouts);
        assert!(s.releases >= prev.releases);
        prev = s;
    }
    assert!(prev.bytes_high_water > 0);
}

#[test]
fn pooled_results_match_fresh_context_results() {
    let g = test_graph();
    // one context reused across runs (pooled, warm) vs a fresh context
    // per run (every buffer newly allocated): identical labels
    let warm_ctx = Context::new(&g);
    let mut warm_labels = Vec::new();
    for _ in 0..3 {
        warm_labels = algos::bfs(&warm_ctx, 0, algos::BfsOptions::default()).labels;
    }
    let fresh = algos::bfs(&Context::new(&g), 0, algos::BfsOptions::default()).labels;
    assert_eq!(warm_labels, fresh, "pooling must not change BFS labels");

    let warm_dist = algos::sssp(&warm_ctx, 0, algos::SsspOptions::default()).dist;
    let fresh_dist = algos::sssp(&Context::new(&g), 0, algos::SsspOptions::default()).dist;
    assert_eq!(warm_dist, fresh_dist, "pooling must not change SSSP distances");
}

#[test]
fn pooled_runs_are_deterministic_across_thread_pools() {
    let g = test_graph();
    let reference = in_pool(1, || {
        let ctx = Context::new(&g);
        algos::bfs(&ctx, 0, algos::BfsOptions::default());
        algos::bfs(&ctx, 0, algos::BfsOptions::default()).labels
    });
    for threads in [2, 8] {
        let labels = in_pool(threads, || {
            let ctx = Context::new(&g);
            algos::bfs(&ctx, 0, algos::BfsOptions::default());
            algos::bfs(&ctx, 0, algos::BfsOptions::default()).labels
        });
        assert_eq!(labels, reference, "pooled BFS differs at {threads} threads");
    }
}

#[test]
fn serial_fast_path_and_parallel_path_agree_end_to_end() {
    let g = test_graph();
    // serial fast path disabled entirely vs forced on for everything
    // below a generous cutoff: bit-identical labels either way
    let off = {
        let ctx = Context::new(&g).with_config(EngineConfig::new().with_serial_threshold(0));
        algos::bfs(&ctx, 0, algos::BfsOptions::default()).labels
    };
    let aggressive = {
        let ctx =
            Context::new(&g).with_config(EngineConfig::new().with_serial_threshold(1 << 20));
        algos::bfs(&ctx, 0, algos::BfsOptions::default()).labels
    };
    assert_eq!(off, aggressive);
}
