//! Figure 4 made executable: the same primitive expressed in every
//! abstraction — Gunrock's frontier operators, Ligra's edgeMap, the GAS
//! engine, the Medusa-style message engine, the hardwired kernels, and
//! the serial reference — must agree on every graph in the suite.

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::{gas, hardwired, ligra, medusa, serial};
use gunrock_graph::INFINITY;
use gunrock_integration::graph_suite;

#[test]
fn bfs_all_engines_agree() {
    for (name, g) in graph_suite() {
        let want = serial::bfs(&g, 0);
        let ctx = Context::new(&g).with_reverse(&g);
        let gr = algos::bfs(&ctx, 0, algos::BfsOptions::direction_optimized());
        assert_eq!(gr.labels, want, "gunrock on {name}");
        assert_eq!(ligra::bfs(&g, &g, 0).0, want, "ligra on {name}");
        assert_eq!(gas::bfs(&g, &g, 0, gas::GasMode::PerVertex), want, "gas-pv on {name}");
        assert_eq!(gas::bfs(&g, &g, 0, gas::GasMode::Balanced), want, "gas-bal on {name}");
        assert_eq!(medusa::bfs(&g, 0), want, "medusa on {name}");
        assert_eq!(hardwired::bfs(&g, &g, 0), want, "hardwired on {name}");
    }
}

#[test]
fn sssp_all_engines_agree() {
    for (name, g) in graph_suite() {
        let want = serial::dijkstra(&g, 0);
        let ctx = Context::new(&g);
        let gr = algos::sssp(&ctx, 0, algos::SsspOptions::default());
        assert_eq!(gr.dist, want, "gunrock on {name}");
        assert_eq!(ligra::sssp_bellman_ford(&g, &g, 0), want, "ligra on {name}");
        assert_eq!(gas::sssp(&g, &g, 0, gas::GasMode::Balanced), want, "gas on {name}");
        assert_eq!(medusa::sssp(&g, 0), want, "medusa on {name}");
        assert_eq!(
            hardwired::sssp_delta_stepping(&g, 0, algos::sssp::default_delta(&g)),
            want,
            "hardwired on {name}"
        );
        // Bellman-Ford oracle agrees with Dijkstra (sanity of the oracle)
        assert_eq!(serial::bellman_ford(&g, 0), want, "bellman-ford oracle on {name}");
    }
}

#[test]
fn cc_all_engines_agree() {
    for (name, g) in graph_suite() {
        let want = serial::connected_components(&g);
        let ctx = Context::new(&g);
        let gr = algos::cc(&ctx);
        assert_eq!(gr.labels, want, "gunrock on {name}");
        assert_eq!(gr.num_components, serial::num_components(&want), "count on {name}");
        assert_eq!(ligra::connected_components(&g, &g), want, "ligra on {name}");
        assert_eq!(
            gas::connected_components(&g, &g, gas::GasMode::Balanced),
            want,
            "gas on {name}"
        );
        assert_eq!(hardwired::cc_soman(&g), want, "hardwired on {name}");
    }
}

#[test]
fn bc_all_engines_agree() {
    for (name, g) in graph_suite() {
        let want = serial::brandes_single_source(&g, 0);
        let ctx = Context::new(&g);
        let gr = algos::bc(&ctx, 0, algos::BcOptions::default());
        for (v, (a, b)) in gr.bc_values.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "gunrock on {name} vertex {v}: {a} vs {b}");
        }
        let lg = ligra::bc(&g, &g, 0);
        for (v, (a, b)) in lg.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "ligra on {name} vertex {v}: {a} vs {b}");
        }
        let hw = hardwired::bc(&g, 0);
        for (v, (a, b)) in hw.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "hardwired on {name} vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn pagerank_all_engines_agree() {
    for (name, g) in graph_suite() {
        let want = serial::pagerank(&g, 0.85, 1e-14, 2000);
        let ctx = Context::new(&g);
        let gr =
            algos::pagerank(&ctx, algos::PrOptions { epsilon: 1e-13, ..Default::default() });
        for (v, (a, b)) in gr.scores.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "gunrock on {name} vertex {v}: {a} vs {b}");
        }
        let lg = ligra::pagerank(&g, &g, 0.85, 1e-14, 2000);
        for (v, (a, b)) in lg.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "ligra on {name} vertex {v}: {a} vs {b}");
        }
        let hw = hardwired::pagerank(&g, &g, 0.85, 1e-14, 2000);
        for (v, (a, b)) in hw.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "hardwired on {name} vertex {v}: {a} vs {b}");
        }
        let md = medusa::pagerank(&g, 0.85, 1e-14, 2000);
        for (v, (a, b)) in md.iter().zip(&want).enumerate() {
            assert!((a - b).abs() < 1e-6, "medusa on {name} vertex {v}: {a} vs {b}");
        }
    }
}

#[test]
fn bfs_variants_and_modes_cross_product() {
    use algos::bfs::{bfs, BfsOptions, BfsVariant};
    for (name, g) in graph_suite() {
        let want = serial::bfs(&g, 0);
        for variant in
            [BfsVariant::Atomic, BfsVariant::Idempotent, BfsVariant::DirectionOptimized]
        {
            for mode in [AdvanceMode::ThreadMapped, AdvanceMode::Twc, AdvanceMode::LoadBalanced]
            {
                let ctx = Context::new(&g).with_reverse(&g);
                let r = bfs(&ctx, 0, BfsOptions { variant, mode, ..Default::default() });
                assert_eq!(r.labels, want, "{name} {variant:?} {mode:?}");
            }
        }
    }
}

#[test]
fn sssp_dist_satisfies_triangle_inequality() {
    for (name, g) in graph_suite() {
        let ctx = Context::new(&g);
        let r = algos::sssp(&ctx, 0, algos::SsspOptions::default());
        for u in 0..g.num_vertices() as u32 {
            if r.dist[u as usize] == INFINITY {
                continue;
            }
            for e in g.edge_range(u) {
                let v = g.col_indices()[e];
                assert!(
                    r.dist[v as usize] <= r.dist[u as usize].saturating_add(g.weight(e as u32)),
                    "{name}: edge ({u},{v}) violates relaxation"
                );
            }
        }
    }
}
