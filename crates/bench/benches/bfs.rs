//! Criterion: BFS variants across the four benchmark topologies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gunrock::prelude::*;
use gunrock_algos::bfs::{bfs, BfsOptions};
use gunrock_baselines::{hardwired, serial};
use gunrock_bench::load_dataset;

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.sample_size(10);
    for name in ["kron", "roadnet"] {
        let d = load_dataset(name, 11);
        let g = &d.graph;
        group.bench_with_input(BenchmarkId::new("gunrock_do", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g).with_reverse(g);
                bfs(&ctx, 0, BfsOptions::direction_optimized())
            })
        });
        group.bench_with_input(BenchmarkId::new("gunrock_idempotent", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g);
                bfs(&ctx, 0, BfsOptions::fastest())
            })
        });
        group.bench_with_input(BenchmarkId::new("hardwired", name), g, |b, g| {
            b.iter(|| hardwired::bfs(g, g, 0))
        });
        group.bench_with_input(BenchmarkId::new("serial", name), g, |b, g| {
            b.iter(|| serial::bfs(g, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bfs);
criterion_main!(benches);
