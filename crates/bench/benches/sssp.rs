//! Criterion: SSSP — near-far delta stepping vs Bellman-Ford vs baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gunrock::prelude::*;
use gunrock_algos::sssp::{sssp, SsspOptions};
use gunrock_baselines::{hardwired, ligra, serial};
use gunrock_bench::load_dataset;

fn bench_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp");
    group.sample_size(10);
    for name in ["kron", "roadnet"] {
        let d = load_dataset(name, 11);
        let g = &d.graph;
        group.bench_with_input(BenchmarkId::new("gunrock_nearfar", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g);
                sssp(&ctx, 0, SsspOptions::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("gunrock_bellmanford", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g);
                sssp(&ctx, 0, SsspOptions { use_priority_queue: false, ..Default::default() })
            })
        });
        group.bench_with_input(BenchmarkId::new("hardwired_delta", name), g, |b, g| {
            b.iter(|| hardwired::sssp_delta_stepping(g, 0, 16))
        });
        group.bench_with_input(BenchmarkId::new("ligra_bf", name), g, |b, g| {
            b.iter(|| ligra::sssp_bellman_ford(g, g, 0))
        });
        group.bench_with_input(BenchmarkId::new("serial_dijkstra", name), g, |b, g| {
            b.iter(|| serial::dijkstra(g, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
