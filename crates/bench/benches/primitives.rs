//! Criterion: the engine's data-parallel primitives (scan, compact,
//! merge-path partition) — the building blocks whose cost every operator
//! inherits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gunrock_engine::compact::compact;
use gunrock_engine::scan::scan_exclusive_u32;
use gunrock_engine::search::merge_path_partitions;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitives");
    group.sample_size(20);
    for size in [1usize << 16, 1 << 20] {
        let input: Vec<u32> = (0..size as u32).map(|i| i % 17).collect();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("scan_exclusive", size), &input, |b, v| {
            b.iter(|| scan_exclusive_u32(v))
        });
        group.bench_with_input(BenchmarkId::new("compact", size), &input, |b, v| {
            b.iter(|| compact(v, |&x| x % 3 == 0))
        });
        let (offsets, total) = scan_exclusive_u32(&input);
        group.bench_with_input(
            BenchmarkId::new("merge_path_partition", size),
            &(offsets, total),
            |b, (o, t)| b.iter(|| merge_path_partitions(o, *t, 256)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
