//! Criterion: single-source betweenness centrality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gunrock::prelude::*;
use gunrock_algos::bc::{bc, BcOptions};
use gunrock_baselines::{hardwired, serial};
use gunrock_bench::load_dataset;

fn bench_bc(c: &mut Criterion) {
    let mut group = c.benchmark_group("bc");
    group.sample_size(10);
    for name in ["kron", "roadnet"] {
        let d = load_dataset(name, 11);
        let g = &d.graph;
        group.bench_with_input(BenchmarkId::new("gunrock", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g);
                bc(&ctx, 0, BcOptions::default())
            })
        });
        group.bench_with_input(BenchmarkId::new("hardwired", name), g, |b, g| {
            b.iter(|| hardwired::bc(g, 0))
        });
        group.bench_with_input(BenchmarkId::new("serial_brandes", name), g, |b, g| {
            b.iter(|| serial::brandes_single_source(g, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bc);
criterion_main!(benches);
