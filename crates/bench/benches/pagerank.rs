//! Criterion: PageRank to convergence and single-iteration (the paper's
//! bold Ligra comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gunrock::prelude::*;
use gunrock_algos::pagerank::{pagerank, PrOptions};
use gunrock_baselines::{hardwired, serial};
use gunrock_bench::load_dataset;

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank");
    group.sample_size(10);
    for name in ["kron", "roadnet"] {
        let d = load_dataset(name, 11);
        let g = &d.graph;
        group.bench_with_input(BenchmarkId::new("gunrock", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g);
                pagerank(
                    &ctx,
                    PrOptions { epsilon: 1e-7, max_iters: 100, ..Default::default() },
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gunrock_1iter", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g);
                pagerank(&ctx, PrOptions { max_iters: 1, ..Default::default() })
            })
        });
        group.bench_with_input(BenchmarkId::new("hardwired", name), g, |b, g| {
            b.iter(|| hardwired::pagerank(g, g, 0.85, 1e-7, 100))
        });
        group.bench_with_input(BenchmarkId::new("serial", name), g, |b, g| {
            b.iter(|| serial::pagerank(g, 0.85, 1e-7, 100))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
