//! Criterion: connected components.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gunrock::prelude::*;
use gunrock_algos::cc::cc;
use gunrock_baselines::{hardwired, serial};
use gunrock_bench::load_dataset;

fn bench_cc(c: &mut Criterion) {
    let mut group = c.benchmark_group("cc");
    group.sample_size(10);
    for name in ["kron", "roadnet"] {
        let d = load_dataset(name, 11);
        let g = &d.graph;
        group.bench_with_input(BenchmarkId::new("gunrock_soman", name), g, |b, g| {
            b.iter(|| {
                let ctx = Context::new(g);
                cc(&ctx)
            })
        });
        group.bench_with_input(BenchmarkId::new("hardwired_soman", name), g, |b, g| {
            b.iter(|| hardwired::cc_soman(g))
        });
        group.bench_with_input(BenchmarkId::new("serial_unionfind", name), g, |b, g| {
            b.iter(|| serial::connected_components(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cc);
criterion_main!(benches);
