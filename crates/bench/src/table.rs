//! Minimal markdown table rendering and the geometric-mean helper used
//! by the speedup summaries.

/// A markdown table accumulated row by row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (must match the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as aligned GitHub-flavored markdown.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:w$}", c, w = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let sep: Vec<String> = (0..ncols).map(|i| "-".repeat(widths[i])).collect();
        out.push_str(&fmt_row(&sep));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a runtime in ms with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.3}")
    }
}

/// Formats a throughput in MTEPS.
pub fn fmt_mteps(m: f64) -> String {
    if m >= 100.0 {
        format!("{m:.0}")
    } else {
        format!("{m:.2}")
    }
}

/// Geometric mean of positive values (the paper's speedup summary
/// statistic). Returns 0 for an empty input.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new(vec!["alg", "ms"]);
        t.row(vec!["bfs", "1.5"]);
        t.row(vec!["pagerank", "120"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alg"));
        assert!(lines[2].starts_with("| bfs"));
        // all lines same width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(12.345), "12.35");
        assert_eq!(fmt_ms(0.1234), "0.123");
        assert_eq!(fmt_mteps(1234.0), "1234");
        assert_eq!(fmt_mteps(12.3), "12.30");
    }
}
