//! Machine-readable benchmark export: the Gunrock column of Table 2 for
//! all five primitives across the four standard datasets, one JSON
//! object per (primitive, dataset) pair, each row carrying the
//! per-operator trace aggregate (iterations, pull iterations, edges
//! examined, advance/filter/compute time split).
//!
//! This is the file EXPERIMENTS.md regeneration and the CI stats check
//! consume; `BENCH_pr7.json` in the repo root is the current committed
//! snapshot (`BENCH_pr5.json` is the pre-bitmap-sweep baseline the
//! regression gate diffs against — see `scripts/bench_compare`). Each row also
//! reports `recovery_events` so a fault-free benchmark run provably took
//! zero retry/fallback paths, plus the buffer-pool counters
//! (`pool_allocations` flat-lining across iterations is the
//! zero-allocation property).
//!
//! Usage: `cargo run --release -p gunrock-bench --bin bench_json
//!         [--scale N] [--runs N] [--reorder] [--out PATH]`
//!
//! `--reorder` benchmarks the degree-descending relabeled datasets (the
//! graphs are isomorphic, so rows stay comparable with unreordered runs).

use gunrock_bench::datasets::DATASET_NAMES;
use gunrock_bench::{
    arg_flag, arg_value, load_dataset, run_system, Algorithm, BenchArgs, System,
};
use gunrock_engine::json::JsonBuilder;

fn main() {
    let args = BenchArgs::parse();
    let reorder = arg_flag("--reorder");
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_pr7.json".to_string());

    let mut j = JsonBuilder::new();
    j.begin_object();
    j.field_str("schema", "gunrock-bench/v1");
    j.field_u64("scale", args.scale as u64);
    j.field_u64("runs", args.runs as u64);
    j.field_bool("reorder", reorder);
    j.key("measurements");
    j.begin_array();
    for name in DATASET_NAMES {
        let d = load_dataset(name, args.scale);
        let d = if reorder { d.reordered() } else { d };
        for alg in Algorithm::ALL {
            let m = run_system(System::Gunrock, alg, &d, args.runs)
                .expect("every Gunrock primitive is implemented");
            let s = m.stats.expect("Gunrock measurements carry a trace aggregate");
            j.begin_object();
            j.field_str("primitive", alg.name());
            j.field_str("dataset", name);
            j.field_u64("num_vertices", d.graph.num_vertices() as u64);
            j.field_u64("num_edges", d.graph.num_edges() as u64);
            j.field_f64("millis", m.millis);
            j.field_f64("mteps", m.mteps);
            j.field_u64("iterations", s.iterations as u64);
            j.field_u64("pull_iterations", s.pull_iterations as u64);
            j.field_u64("edges_examined", s.edges_examined);
            j.field_f64("advance_millis", s.advance_millis);
            j.field_f64("filter_millis", s.filter_millis);
            j.field_f64("compute_millis", s.compute_millis);
            j.field_u64("recovery_events", s.recovery_events);
            j.field_f64("stats_wall_millis", s.wall_millis);
            j.field_u64("pool_allocations", s.pool.allocations);
            j.field_u64("pool_checkouts", s.pool.checkouts);
            j.field_u64("pool_bytes_high_water", s.pool.bytes_high_water);
            j.end_object();
            eprintln!(
                "{:>8} on {:>8}: {:>10.3} ms  {:>8.1} MTEPS  ({} iters, {} steps)",
                alg.name(),
                name,
                m.millis,
                m.mteps,
                s.iterations,
                s.steps
            );
        }
    }
    j.end_array();
    j.end_object();

    let json = j.finish();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out} ({} measurements)", DATASET_NAMES.len() * Algorithm::ALL.len());
}
