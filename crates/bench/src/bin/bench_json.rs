//! Machine-readable benchmark export: the Gunrock column of Table 2 for
//! all five primitives across the four standard datasets, one JSON
//! object per (primitive, dataset) pair, each row carrying the
//! per-operator trace aggregate (iterations, pull iterations, edges
//! examined, advance/filter/compute time split).
//!
//! This is the file EXPERIMENTS.md regeneration and the CI stats check
//! consume; `BENCH_pr10.json` in the repo root is the current committed
//! snapshot (`BENCH_pr7.json` is the pre-MS-BFS baseline the regression
//! gate diffs against — see `scripts/bench_compare`). Each row also
//! reports `recovery_events` so a fault-free benchmark run provably took
//! zero retry/fallback paths, plus the buffer-pool counters
//! (`pool_allocations` flat-lining across iterations is the
//! zero-allocation property).
//!
//! With `--msbfs-scale N` (N > 0) the snapshot additionally carries the
//! batching headline in a top-level `msbfs` array: one lane-packed
//! MS-BFS batch of `--sources` traversals on an R-MAT (`kron`) graph at
//! that scale, timed against the same sources served as sequential
//! single-source direction-optimized BFS runs — exactly what the server
//! did per query before coalescing. The figure of merit is aggregate
//! source-throughput (sources/sec) and its batched/sequential speedup.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin bench_json
//!         [--scale N] [--runs N] [--reorder] [--out PATH]
//!         [--msbfs-scale N] [--sources N]`
//!
//! `--reorder` benchmarks the degree-descending relabeled datasets (the
//! graphs are isomorphic, so rows stay comparable with unreordered runs).

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_bench::datasets::DATASET_NAMES;
use gunrock_bench::{
    arg_flag, arg_value, load_dataset, run_system, time_avg_ms, Algorithm, BenchArgs, System,
};
use gunrock_engine::json::JsonBuilder;

fn main() {
    let args = BenchArgs::parse();
    let reorder = arg_flag("--reorder");
    let out = arg_value("--out").unwrap_or_else(|| "BENCH_pr10.json".to_string());
    // 0 (the default) skips the multi-source section, keeping plain
    // invocations as cheap as before this section existed
    let msbfs_scale: u32 = arg_value("--msbfs-scale").and_then(|s| s.parse().ok()).unwrap_or(0);
    let lanes: usize =
        arg_value("--sources").and_then(|s| s.parse().ok()).unwrap_or(LANES).clamp(1, LANES);

    let mut j = JsonBuilder::new();
    j.begin_object();
    j.field_str("schema", "gunrock-bench/v1");
    j.field_u64("scale", args.scale as u64);
    j.field_u64("runs", args.runs as u64);
    j.field_bool("reorder", reorder);
    j.key("measurements");
    j.begin_array();
    for name in DATASET_NAMES {
        let d = load_dataset(name, args.scale);
        let d = if reorder { d.reordered() } else { d };
        for alg in Algorithm::ALL {
            let m = run_system(System::Gunrock, alg, &d, args.runs)
                .expect("every Gunrock primitive is implemented");
            let s = m.stats.expect("Gunrock measurements carry a trace aggregate");
            j.begin_object();
            j.field_str("primitive", alg.name());
            j.field_str("dataset", name);
            j.field_u64("num_vertices", d.graph.num_vertices() as u64);
            j.field_u64("num_edges", d.graph.num_edges() as u64);
            j.field_f64("millis", m.millis);
            j.field_f64("mteps", m.mteps);
            j.field_u64("iterations", s.iterations as u64);
            j.field_u64("pull_iterations", s.pull_iterations as u64);
            j.field_u64("edges_examined", s.edges_examined);
            j.field_f64("advance_millis", s.advance_millis);
            j.field_f64("filter_millis", s.filter_millis);
            j.field_f64("compute_millis", s.compute_millis);
            j.field_u64("recovery_events", s.recovery_events);
            j.field_f64("stats_wall_millis", s.wall_millis);
            j.field_u64("pool_allocations", s.pool.allocations);
            j.field_u64("pool_checkouts", s.pool.checkouts);
            j.field_u64("pool_bytes_high_water", s.pool.bytes_high_water);
            j.end_object();
            eprintln!(
                "{:>8} on {:>8}: {:>10.3} ms  {:>8.1} MTEPS  ({} iters, {} steps)",
                alg.name(),
                name,
                m.millis,
                m.mteps,
                s.iterations,
                s.steps
            );
        }
    }
    j.end_array();
    if msbfs_scale > 0 {
        j.key("msbfs");
        j.begin_array();
        msbfs_row(&mut j, msbfs_scale, lanes, args.runs, reorder);
        j.end_array();
    }
    j.end_object();

    let json = j.finish();
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out} ({} measurements)", DATASET_NAMES.len() * Algorithm::ALL.len());
}

/// One batched-vs-sequential comparison row on the R-MAT graph: `lanes`
/// sources spread evenly across the id space, served once as a single
/// MS-BFS batch and once as that many independent direction-optimized
/// BFS runs (fresh context per run, as the pre-coalescing server paid).
fn msbfs_row(j: &mut JsonBuilder, scale: u32, lanes: usize, runs: usize, reorder: bool) {
    let d = load_dataset("kron", scale);
    let d = if reorder { d.reordered() } else { d };
    let g = &d.graph;
    let n = g.num_vertices();
    let sources: Vec<u32> = (0..lanes).map(|l| (l * n / lanes) as u32).collect();
    let batched_ms = time_avg_ms(runs, || {
        let ctx = Context::new(g);
        std::hint::black_box(algos::msbfs(&ctx, &sources));
    });
    let sequential_ms = time_avg_ms(runs, || {
        for &s in &sources {
            let ctx = Context::new(g).with_reverse(d.reverse());
            std::hint::black_box(algos::bfs(&ctx, s, algos::BfsOptions::direction_optimized()));
        }
    });
    let sps = |ms: f64| lanes as f64 / (ms / 1e3);
    let speedup = sequential_ms / batched_ms;
    j.begin_object();
    j.field_str("dataset", "kron");
    j.field_u64("scale", scale as u64);
    j.field_u64("num_vertices", n as u64);
    j.field_u64("num_edges", g.num_edges() as u64);
    j.field_u64("sources", lanes as u64);
    j.field_f64("batched_millis", batched_ms);
    j.field_f64("sequential_millis", sequential_ms);
    j.field_f64("batched_sources_per_sec", sps(batched_ms));
    j.field_f64("sequential_sources_per_sec", sps(sequential_ms));
    j.field_f64("speedup", speedup);
    j.end_object();
    eprintln!(
        "   MSBFS on kron s{scale}: {batched_ms:>10.3} ms batched vs {sequential_ms:>10.3} ms \
         sequential ({lanes} sources, {speedup:.2}x, {:.0} sources/sec)",
        sps(batched_ms)
    );
}
