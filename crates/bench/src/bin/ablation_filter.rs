//! Ablation **A2** (§4.1.1): idempotent vs atomic advance, and the
//! contribution of each culling heuristic. Reports runtime plus the
//! frontier inflation (elements entering the filter / vertices reached)
//! showing how many redundant discoveries each heuristic removes.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin ablation_filter
//!         [--scale N] [--runs N]`

use gunrock::prelude::*;
use gunrock_algos::bfs::{bfs, BfsOptions, BfsVariant};
use gunrock_bench::table::{fmt_ms, Table};
use gunrock_bench::{standard_datasets, time_avg_ms, BenchArgs};
use gunrock_graph::INFINITY;

fn run_config(g: &gunrock_graph::Csr, opts: BfsOptions, runs: usize) -> (f64, f64) {
    let ms = time_avg_ms(runs, || {
        let ctx = Context::new(g);
        std::hint::black_box(bfs(&ctx, 0, opts))
    });
    // inflation: filtered elements / reached vertices
    let ctx = Context::new(g);
    let r = bfs(&ctx, 0, opts);
    let reached = r.labels.iter().filter(|&&l| l != INFINITY).count().max(1);
    let filtered = ctx.counters.elements_filtered.load(std::sync::atomic::Ordering::Relaxed);
    (ms, filtered as f64 / reached as f64)
}

fn main() {
    let args = BenchArgs::parse();
    println!("## Idempotence & culling heuristics, BFS (scale {})\n", args.scale);
    let mut t = Table::new(vec![
        "Dataset",
        "Atomic ms",
        "Idem both ms",
        "Idem bitmask ms",
        "Idem history ms",
        "Filter load",
    ]);
    for d in standard_datasets(args.scale) {
        let g = &d.graph;
        let atomic_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(g);
            std::hint::black_box(bfs(&ctx, 0, BfsOptions::atomic()))
        });
        let both = BfsOptions { variant: BfsVariant::Idempotent, ..Default::default() };
        let bitmask_only = BfsOptions {
            culling: CullingConfig { history: false, history_bits: 0, bitmask: true },
            ..both
        };
        let history_heavy = BfsOptions {
            culling: CullingConfig { history: true, history_bits: 12, bitmask: true },
            ..both
        };
        let (ms_both, load_both) = run_config(g, both, args.runs);
        let (ms_bm, _) = run_config(g, bitmask_only, args.runs);
        let (ms_hist, _) = run_config(g, history_heavy, args.runs);
        t.row(vec![
            d.name.to_string(),
            fmt_ms(atomic_ms),
            fmt_ms(ms_both),
            fmt_ms(ms_bm),
            fmt_ms(ms_hist),
            format!("{load_both:.2}x"),
        ]);
    }
    print!("{}", t.render());
    println!("\nFilter load = frontier elements entering the filter per reached vertex");
    println!("(a property of the idempotent expand, independent of culling config);");
    println!("values above 1 are the redundant concurrent discoveries the culling");
    println!("heuristics exist to remove. Expected: high inflation on scale-free");
    println!("graphs (shared neighbors), near 1.0 on road-like graphs.");
}
