//! Ablation **A4** (§4.1.1, §5.2): the two-level near–far priority queue
//! vs plain frontier label-correcting (Bellman-Ford) for SSSP. The
//! paper's argument: prioritizing near-pile work saves total relaxations,
//! most dramatically on long-diameter weighted graphs.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin ablation_pq
//!         [--scale N] [--runs N]`

use gunrock::prelude::*;
use gunrock_algos::sssp::{sssp, SsspOptions};
use gunrock_bench::table::{fmt_ms, Table};
use gunrock_bench::{standard_datasets, time_avg_ms, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!("## Two-level priority queue vs Bellman-Ford, SSSP (scale {})\n", args.scale);
    let mut t = Table::new(vec![
        "Dataset",
        "NearFar ms",
        "BellmanFord ms",
        "Speedup",
        "NearFar relax",
        "BF relax",
        "Work saved",
    ]);
    for d in standard_datasets(args.scale) {
        let g = &d.graph;
        let nf_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(g);
            std::hint::black_box(sssp(&ctx, 0, SsspOptions::default()))
        });
        let bf_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(g);
            std::hint::black_box(sssp(
                &ctx,
                0,
                SsspOptions { use_priority_queue: false, ..Default::default() },
            ))
        });
        let nf = {
            let ctx = Context::new(g);
            sssp(&ctx, 0, SsspOptions::default())
        };
        let bf = {
            let ctx = Context::new(g);
            sssp(&ctx, 0, SsspOptions { use_priority_queue: false, ..Default::default() })
        };
        assert_eq!(nf.dist, bf.dist, "{}: both must agree", d.name);
        t.row(vec![
            d.name.to_string(),
            fmt_ms(nf_ms),
            fmt_ms(bf_ms),
            format!("{:.2}x", bf_ms / nf_ms),
            nf.edges_examined.to_string(),
            bf.edges_examined.to_string(),
            format!(
                "{:.0}%",
                (1.0 - nf.edges_examined as f64 / bf.edges_examined as f64) * 100.0
            ),
        ]);
    }
    print!("{}", t.render());
    println!("\nExpected shape: biggest savings on roadnet/bitcoin (long weighted");
    println!("diameters re-relax heavily under Bellman-Ford), modest on scale-free.");
}
