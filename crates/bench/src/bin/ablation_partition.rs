//! Extension ablation (§7 scalability): partitioned BFS across shard
//! counts, reporting the inter-shard frontier traffic a multi-device
//! deployment would pay. The communication volume is hardware
//! independent: it is the number of discovered vertices whose owner is a
//! different shard than their discoverer.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin ablation_partition
//!         [--scale N]`

use gunrock::partition::{partitioned_advance, total_len, ExchangeStats, VertexPartition};
use gunrock::prelude::*;
use gunrock_bench::table::Table;
use gunrock_bench::{standard_datasets, BenchArgs};
use gunrock_engine::atomics::atomic_u32_vec;
use gunrock_graph::INFINITY;
use std::sync::atomic::{AtomicU32, Ordering};

struct Discover<'a> {
    labels: &'a [AtomicU32],
    level: u32,
}

impl AdvanceFunctor for Discover<'_> {
    fn cond_edge(&self, _s: u32, d: u32, _e: u32) -> bool {
        self.labels[d as usize]
            .compare_exchange(INFINITY, self.level, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }
}

fn partitioned_bfs(g: &gunrock_graph::Csr, shards: usize) -> ExchangeStats {
    let n = g.num_vertices();
    let ctx = Context::new(g);
    let partition = VertexPartition::even(n, shards);
    let labels = atomic_u32_vec(n, INFINITY);
    labels[0].store(0, Ordering::Relaxed);
    let mut frontiers = partition.split_frontier(&Frontier::single(0));
    let mut level = 0;
    let mut total = ExchangeStats::default();
    while total_len(&frontiers) > 0 {
        level += 1;
        let f = Discover { labels: &labels, level };
        let (next, stats) = partitioned_advance(&ctx, &partition, &frontiers, &f);
        total.merge(stats);
        frontiers = next;
    }
    total
}

fn main() {
    let args = BenchArgs::parse();
    println!(
        "## Partitioned BFS: inter-shard frontier traffic vs shard count (scale {})\n",
        args.scale
    );
    let shard_counts = [1usize, 2, 4, 8, 16];
    let mut header: Vec<String> = vec!["Dataset".into()];
    header.extend(shard_counts.iter().map(|s| format!("{s} shards")));
    let mut t = Table::new(header);
    for d in standard_datasets(args.scale) {
        let mut cells = vec![d.name.to_string()];
        for &shards in &shard_counts {
            let stats = partitioned_bfs(&d.graph, shards);
            cells.push(format!("{:.0}%", stats.remote_fraction() * 100.0));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!("\nCells show the fraction of BFS discoveries crossing shard boundaries");
    println!("(the frontier traffic a multi-GPU deployment ships between devices).");
    println!("Range partitioning keeps roadnet traffic low (spatial locality in");
    println!("vertex ids) while scale-free graphs approach the 1 - 1/P random-cut");
    println!("bound — the distribution challenge §7 anticipates for frontiers.");
}
