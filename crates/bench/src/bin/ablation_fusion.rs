//! Ablation **A3** (§4.3): kernel fusion. The fused path runs the user
//! computation inside the advance loop (Gunrock's functor API); the
//! unfused path mimics multi-kernel GAS-style execution — advance
//! materializes the raw neighbor frontier, a separate compute pass does
//! the labeling, a separate filter pass culls — paying the intermediate
//! frontier traffic the paper identifies as the GAS frameworks' key
//! overhead.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin ablation_fusion
//!         [--scale N] [--runs N]`

use gunrock::prelude::*;
use gunrock_algos::bfs::{bfs, BfsOptions};
use gunrock_bench::table::{fmt_ms, Table};
use gunrock_bench::{standard_datasets, time_avg_ms, BenchArgs};
use gunrock_engine::atomics::atomic_u32_vec;
use gunrock_graph::{Csr, INFINITY};
use std::sync::atomic::Ordering;

/// BFS with *unfused* steps: advance (no computation) -> compute
/// (labeling) -> filter (dedup), each a separate bulk pass over a
/// materialized frontier.
fn bfs_unfused(g: &Csr, src: u32) -> u32 {
    let n = g.num_vertices();
    let ctx = Context::new(g);
    let labels = atomic_u32_vec(n, INFINITY);
    labels[src as usize].store(0, Ordering::Relaxed);
    let visited = AtomicBitmap::new(n);
    visited.set(src as usize);
    let mut frontier = Frontier::single(src);
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        // kernel 1: pure expansion (computation NOT fused)
        let raw = advance::advance(&ctx, &frontier, AdvanceSpec::v2v(), &AcceptAll);
        // kernel 2: standalone compute pass over the materialized frontier
        let lv = level;
        compute::for_each(&raw, |v| {
            if labels[v as usize].load(Ordering::Relaxed) == INFINITY {
                labels[v as usize].store(lv, Ordering::Relaxed);
            }
        });
        // kernel 3: standalone filter pass
        frontier = filter::culling::filter_with_culling(
            &ctx,
            &raw,
            &visited,
            &VertexCond(|v: u32| labels[v as usize].load(Ordering::Relaxed) == lv),
            CullingConfig::default(),
        );
    }
    level
}

fn main() {
    let args = BenchArgs::parse();
    println!("## Fused vs unfused operator execution, BFS (scale {})\n", args.scale);
    let mut t = Table::new(vec![
        "Dataset",
        "Unfused (3 kernels) ms",
        "Standard (2) ms",
        "Fully fused (1) ms",
        "2-k speedup",
        "1-k speedup",
    ]);
    for d in standard_datasets(args.scale) {
        let g = &d.graph;
        let standard_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(g);
            std::hint::black_box(bfs(&ctx, 0, BfsOptions::fastest()))
        });
        let fully_fused_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(g);
            std::hint::black_box(bfs(&ctx, 0, BfsOptions::fused()))
        });
        let unfused_ms = time_avg_ms(args.runs, || std::hint::black_box(bfs_unfused(g, 0)));
        t.row(vec![
            d.name.to_string(),
            fmt_ms(unfused_ms),
            fmt_ms(standard_ms),
            fmt_ms(fully_fused_ms),
            format!("{:.2}x", unfused_ms / standard_ms),
            format!("{:.2}x", unfused_ms / fully_fused_ms),
        ]);
    }
    print!("{}", t.render());
    println!("\nThree points on the fusion spectrum of §4.3/§7: unfused (advance,");
    println!("compute, filter as separate kernels — the GAS execution shape),");
    println!("standard Gunrock (computation fused into advance + a separate culling");
    println!("filter), and fully fused (filter inside the advance loop — the");
    println!("hardwired-kernel shape §7 says closes the last gap).");
}
