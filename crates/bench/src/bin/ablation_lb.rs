//! Ablation **A1** (§4.4): the three workload-mapping strategies plus
//! the shipped hybrid, per topology class. Expected shape: the
//! load-balanced strategy wins on skewed-degree graphs (kron, bitcoin),
//! the fine-grained per-thread strategy is competitive on even-degree
//! graphs (roadnet), and the hybrid tracks the best of both — the
//! reasoning behind the paper's runtime threshold of 4096.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin ablation_lb
//!         [--scale N] [--runs N]`

use gunrock::prelude::*;
use gunrock_algos::bfs::{bfs, BfsOptions};
use gunrock_bench::table::{fmt_ms, Table};
use gunrock_bench::{standard_datasets, time_avg_ms, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!("## Advance load-balancing strategies, BFS runtime ms (scale {})\n", args.scale);
    let mut t = Table::new(vec![
        "Dataset",
        "ThreadMapped",
        "TWC",
        "LoadBalanced",
        "Hybrid(4096)",
        "TM max task edges",
        "LB max task edges",
    ]);
    for d in standard_datasets(args.scale) {
        let g = &d.graph;
        let mut cells = vec![d.name.to_string()];
        for mode in [
            AdvanceMode::ThreadMapped,
            AdvanceMode::Twc,
            AdvanceMode::LoadBalanced,
            AdvanceMode::Auto,
        ] {
            let ms = time_avg_ms(args.runs, || {
                let ctx = Context::new(g);
                std::hint::black_box(bfs(&ctx, 0, BfsOptions::atomic().with_mode(mode)))
            });
            cells.push(fmt_ms(ms));
        }
        // the hardware-independent imbalance signal: the largest number
        // of edges any single task must process serially. ThreadMapped
        // cannot split a neighbor list (bound = max degree); the
        // load-balanced strategy caps every task at one CTA-sized chunk.
        cells.push(g.max_degree().to_string());
        cells.push(gunrock_engine::config::CTA_SIZE.to_string());
        t.row(cells);
    }
    print!("{}", t.render());
    println!("\nThe task-size columns are the load-balance story independent of core");
    println!("count: ThreadMapped serializes whole neighbor lists (up to max degree");
    println!("edges in one task) while LoadBalanced bounds every task at one chunk.");
    println!("Wall-clock differences track this only when cores are available to");
    println!("waste; on few cores the strategies tie and TWC's classification");
    println!("overhead (its three extra passes) is the visible term, matching the");
    println!("paper's note that TWC costs \"higher overhead due to the sequential");
    println!("processing of the three different sizes\".");
}
