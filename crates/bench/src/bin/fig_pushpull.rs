//! Reproduces the **§4.1.1 footnote figure**: direction-optimized
//! (push/pull) BFS vs forced-push BFS. The paper reports a geomean
//! speedup of 1.52 on scale-free graphs and 1.28 on small-degree
//! large-diameter graphs — i.e. both win, scale-free wins bigger. The
//! edge-visit savings column shows *why* pull wins.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin fig_pushpull
//!         [--scale N] [--runs N]`

use gunrock::prelude::*;
use gunrock_algos::bfs::{bfs, BfsOptions};
use gunrock_bench::table::{fmt_ms, geomean, Table};
use gunrock_bench::{load_dataset, time_avg_ms, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    println!("## Push-only vs direction-optimized BFS (scale {})\n", args.scale);
    let mut t = Table::new(vec![
        "Dataset",
        "Class",
        "Push ms",
        "DO ms",
        "Speedup",
        "Push edges",
        "DO edges",
        "Edge savings",
        "Pull iters",
    ]);
    let mut scale_free = Vec::new();
    let mut road_like = Vec::new();
    for (name, class) in [
        ("kron", "scale-free"),
        ("soc", "scale-free"),
        ("roadnet", "road-like"),
        ("bitcoin", "road-like"),
    ] {
        let d = load_dataset(name, args.scale);
        let g = &d.graph;
        let push_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(g).with_reverse(g);
            std::hint::black_box(bfs(&ctx, 0, BfsOptions::fastest()))
        });
        let do_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(g).with_reverse(g);
            std::hint::black_box(bfs(&ctx, 0, BfsOptions::direction_optimized()))
        });
        let push_stats = {
            let ctx = Context::new(g).with_reverse(g);
            bfs(&ctx, 0, BfsOptions::fastest())
        };
        let do_stats = {
            let ctx = Context::new(g).with_reverse(g);
            bfs(&ctx, 0, BfsOptions::direction_optimized())
        };
        let speedup = push_ms / do_ms;
        if class == "scale-free" {
            scale_free.push(speedup);
        } else {
            road_like.push(speedup);
        }
        let savings = 1.0 - do_stats.edges_examined as f64 / push_stats.edges_examined as f64;
        t.row(vec![
            name.to_string(),
            class.to_string(),
            fmt_ms(push_ms),
            fmt_ms(do_ms),
            format!("{speedup:.2}x"),
            push_stats.edges_examined.to_string(),
            do_stats.edges_examined.to_string(),
            format!("{:.0}%", savings * 100.0),
            do_stats.pull_iterations.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nGeomean speedup: scale-free {:.2}x (paper: 1.52), road-like {:.2}x (paper: 1.28)",
        geomean(&scale_free),
        geomean(&road_like)
    );
}
