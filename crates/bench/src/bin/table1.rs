//! Reproduces **Table 1** (dataset description): vertices, edges, max
//! degree, diameter for the four benchmark datasets.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin table1 [--scale N]`

use gunrock_bench::table::Table;
use gunrock_bench::{standard_datasets, BenchArgs};
use gunrock_graph::stats::graph_stats;

fn main() {
    let args = BenchArgs::parse();
    println!("## Table 1: Dataset Description (scale {})\n", args.scale);
    let mut t = Table::new(vec![
        "Dataset",
        "Vertices",
        "Edges",
        "Max Degree",
        "Diameter",
        "% deg < 128",
    ]);
    for d in standard_datasets(args.scale) {
        let s = graph_stats(&d.graph);
        t.row(vec![
            d.name.to_string(),
            s.vertices.to_string(),
            s.edges.to_string(),
            s.max_degree.to_string(),
            s.pseudo_diameter.to_string(),
            format!("{:.0}%", s.frac_degree_lt_128 * 100.0),
        ]);
    }
    print!("{}", t.render());
    println!("\nEdges are directed edge slots (undirected edges stored both ways),");
    println!("matching the paper's preprocessing. Diameter is a double-sweep estimate.");
}
