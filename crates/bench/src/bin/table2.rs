//! Reproduces **Table 2** (the headline comparison): runtime (ms) and
//! edge throughput (MTEPS) for five primitives across the seven systems,
//! on the four datasets. With `--geomeans`, also prints the §6 geomean
//! speedup summaries (Gunrock vs MapGraph-role: paper reports BFS 3.0,
//! PR 1.6, SSSP 2.5, CC 12.1; and vs BGL/PowerGraph: "at least an order
//! of magnitude").
//!
//! Usage: `cargo run --release -p gunrock-bench --bin table2
//!         [--scale N] [--runs N] [--geomeans]`

use gunrock_bench::table::{fmt_ms, fmt_mteps, geomean, Table};
use gunrock_bench::{arg_flag, run_system, standard_datasets, Algorithm, BenchArgs, System};

fn main() {
    let args = BenchArgs::parse();
    let datasets = standard_datasets(args.scale);
    println!(
        "## Table 2: runtime (ms, lower is better) and MTEPS (higher is better), scale {}\n",
        args.scale
    );
    let mut speedups: Vec<(System, Algorithm, f64)> = Vec::new();

    for alg in Algorithm::ALL {
        let mut t = Table::new(vec![
            "Alg",
            "Dataset",
            "BGL",
            "PG",
            "Medusa",
            "MapGraph",
            "Hardwired",
            "Ligra",
            "Gunrock",
            "Gunrock MTEPS",
        ]);
        for d in &datasets {
            let mut cells: Vec<String> = vec![alg.name().to_string(), d.name.to_string()];
            let mut gunrock_ms = None;
            let mut per_sys: Vec<(System, Option<f64>)> = Vec::new();
            let mut gunrock_mteps = 0.0;
            for sys in System::ALL {
                let m = run_system(sys, alg, d, args.runs);
                per_sys.push((sys, m.map(|x| x.millis)));
                match m {
                    Some(x) => {
                        if sys == System::Gunrock {
                            gunrock_ms = Some(x.millis);
                            gunrock_mteps = x.mteps;
                        }
                        cells.push(fmt_ms(x.millis));
                    }
                    None => cells.push("—".into()),
                }
            }
            cells.push(fmt_mteps(gunrock_mteps));
            t.row(cells);
            if let Some(gms) = gunrock_ms {
                for (sys, ms) in per_sys {
                    if sys != System::Gunrock {
                        if let Some(ms) = ms {
                            speedups.push((sys, alg, ms / gms));
                        }
                    }
                }
            }
        }
        println!("{}", t.render());
    }

    if arg_flag("--geomeans") {
        println!("## Geomean speedups of Gunrock over each system (paper §6)\n");
        let mut t = Table::new(vec!["System", "BFS", "SSSP", "BC", "PageRank", "CC"]);
        for sys in System::ALL {
            if sys == System::Gunrock {
                continue;
            }
            let mut cells = vec![sys.name().to_string()];
            for alg in Algorithm::ALL {
                let vals: Vec<f64> = speedups
                    .iter()
                    .filter(|(s, a, _)| *s == sys && *a == alg)
                    .map(|&(_, _, v)| v)
                    .collect();
                cells.push(if vals.is_empty() {
                    "—".into()
                } else {
                    format!("{:.2}x", geomean(&vals))
                });
            }
            t.row(cells);
        }
        print!("{}", t.render());
        println!("\nPaper reference points: vs MapGraph-role geomeans BFS 3.0, SSSP 2.5,");
        println!("PR 1.6, CC 12.1; vs BGL and PowerGraph-role at least an order of magnitude.");
    }
}
