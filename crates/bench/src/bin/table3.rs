//! Reproduces **Table 3** (scalability): runtime and MTEPS for the five
//! Gunrock primitives over five consecutively-sized Kronecker graphs
//! (the paper's kron_g500-logn17..21). Runtimes should scale roughly
//! linearly in graph size, with atomic-heavy primitives (BC, SSSP)
//! scaling sub-ideally — the shape the paper reports.
//!
//! Usage: `cargo run --release -p gunrock-bench --bin table3
//!         [--scale N] [--runs N]` (N = smallest scale; default 10)

use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_bench::table::{fmt_ms, fmt_mteps, Table};
use gunrock_bench::{arg_value, time_avg_ms, BenchArgs};
use gunrock_graph::generators::{rmat, RmatParams};
use gunrock_graph::GraphBuilder;

fn main() {
    let args = BenchArgs::parse();
    let base: u32 = arg_value("--scale").and_then(|s| s.parse().ok()).unwrap_or(10);
    println!("## Table 3: scalability on Kronecker graphs, scales {}..{}\n", base, base + 4);
    let mut t = Table::new(vec![
        "Dataset",
        "BFS ms",
        "BC ms",
        "SSSP ms",
        "CC ms",
        "PageRank ms",
        "BFS MTEPS",
        "BC MTEPS",
        "SSSP MTEPS",
    ]);
    for scale in base..base + 5 {
        let g = GraphBuilder::new().random_weights(1, 64, 0xC0FFEE).build(rmat(
            scale,
            16,
            RmatParams::graph500(),
            103,
        ));
        let m = g.num_edges() as f64;
        let mteps = |ms: f64| m / (ms / 1e3) / 1e6;
        let bfs_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(&g).with_reverse(&g);
            std::hint::black_box(algos::bfs(&ctx, 0, algos::BfsOptions::direction_optimized()))
        });
        let bc_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(&g);
            std::hint::black_box(algos::bc(&ctx, 0, Default::default()))
        });
        let sssp_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(&g);
            std::hint::black_box(algos::sssp(&ctx, 0, Default::default()))
        });
        let cc_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(&g);
            std::hint::black_box(algos::cc(&ctx))
        });
        let pr_ms = time_avg_ms(args.runs, || {
            let ctx = Context::new(&g);
            std::hint::black_box(algos::pagerank(
                &ctx,
                algos::PrOptions {
                    epsilon: 1e-7 / g.num_vertices() as f64,
                    max_iters: 100,
                    ..Default::default()
                },
            ))
        });
        t.row(vec![
            format!("kron_logn{} (v=2^{}, e={:.1}M)", scale, scale, m / 1e6),
            fmt_ms(bfs_ms),
            fmt_ms(bc_ms),
            fmt_ms(sssp_ms),
            fmt_ms(cc_ms),
            fmt_ms(pr_ms),
            fmt_mteps(mteps(bfs_ms)),
            fmt_mteps(mteps(bc_ms)),
            fmt_mteps(mteps(sssp_ms)),
        ]);
    }
    print!("{}", t.render());
    println!("\nExpect near-linear runtime growth; BC/SSSP MTEPS decline with scale");
    println!("(frontier atomic contention), as in the paper's Table 3.");
}
