//! Uniform runner over every (system, algorithm) pair of Table 2.

use crate::datasets::Dataset;
use gunrock::prelude::*;
use gunrock_algos as algos;
use gunrock_baselines::{gas, hardwired, ligra, medusa, serial};

/// The five benchmarked primitives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Breadth-first search.
    Bfs,
    /// Single-source shortest path.
    Sssp,
    /// Betweenness centrality (single source).
    Bc,
    /// PageRank to convergence.
    PageRank,
    /// Connected components.
    Cc,
}

impl Algorithm {
    /// All five, in the paper's row order.
    pub const ALL: [Algorithm; 5] =
        [Algorithm::Bfs, Algorithm::Sssp, Algorithm::Bc, Algorithm::PageRank, Algorithm::Cc];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Bfs => "BFS",
            Algorithm::Sssp => "SSSP",
            Algorithm::Bc => "BC",
            Algorithm::PageRank => "PageRank",
            Algorithm::Cc => "CC",
        }
    }
}

/// The seven compared systems (Table 2's columns), each mapped to its
/// role in this reproduction (DESIGN.md §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum System {
    /// Boost Graph Library role: serial reference.
    Bgl,
    /// PowerGraph role: GAS engine, per-vertex parallelism.
    PowerGraph,
    /// Medusa role: message-passing BSP engine.
    Medusa,
    /// MapGraph role: GAS engine, balanced chunks.
    MapGraph,
    /// Hardwired-kernel role: framework-free tuned implementations.
    Hardwired,
    /// Ligra role: edgeMap/vertexMap with sparse/dense switching.
    Ligra,
    /// This paper's system.
    Gunrock,
}

impl System {
    /// All seven, in the paper's column order.
    pub const ALL: [System; 7] = [
        System::Bgl,
        System::PowerGraph,
        System::Medusa,
        System::MapGraph,
        System::Hardwired,
        System::Ligra,
        System::Gunrock,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            System::Bgl => "BGL",
            System::PowerGraph => "PG",
            System::Medusa => "Medusa",
            System::MapGraph => "MapGraph",
            System::Hardwired => "Hardwired",
            System::Ligra => "Ligra",
            System::Gunrock => "Gunrock",
        }
    }
}

/// One timed run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Measurement {
    /// Average wall time per run.
    pub millis: f64,
    /// Millions of traversed edges per second, normalized as `|E| /
    /// time` so systems are comparable (the paper's convention).
    pub mteps: f64,
    /// Per-operator trace aggregate from one instrumented run. Only
    /// Gunrock runs carry one; the timed runs themselves stay
    /// uninstrumented so the numbers are not polluted by trace capture.
    pub stats: Option<RunStatsSummary>,
}

/// PageRank parameters shared by every system so the work is identical.
const PR_DAMPING: f64 = 0.85;
const PR_TOL: f64 = 1e-7;
const PR_MAX_ITERS: usize = 100;

/// Runs `alg` on `sys` over the dataset, timing `runs` executions.
/// Returns `None` for combinations with no implementation (mirroring the
/// dashes in Table 2: Medusa has no BC/CC, the GAS engines have no BC).
pub fn run_system(
    sys: System,
    alg: Algorithm,
    d: &Dataset,
    runs: usize,
) -> Option<Measurement> {
    let g = &d.graph;
    let rev = d.reverse();
    let src = 0u32;
    let m = g.num_edges() as f64;
    let run: Box<dyn FnMut()> = match (sys, alg) {
        (System::Bgl, Algorithm::Bfs) => Box::new(move || {
            std::hint::black_box(serial::bfs(g, src));
        }),
        (System::Bgl, Algorithm::Sssp) => Box::new(move || {
            std::hint::black_box(serial::dijkstra(g, src));
        }),
        (System::Bgl, Algorithm::Bc) => Box::new(move || {
            std::hint::black_box(serial::brandes_single_source(g, src));
        }),
        (System::Bgl, Algorithm::PageRank) => Box::new(move || {
            std::hint::black_box(serial::pagerank(g, PR_DAMPING, PR_TOL, PR_MAX_ITERS));
        }),
        (System::Bgl, Algorithm::Cc) => Box::new(move || {
            std::hint::black_box(serial::connected_components(g));
        }),

        (System::PowerGraph, Algorithm::Bfs) => Box::new(move || {
            std::hint::black_box(gas::bfs(g, rev, src, gas::GasMode::PerVertex));
        }),
        (System::PowerGraph, Algorithm::Sssp) => Box::new(move || {
            std::hint::black_box(gas::sssp(g, rev, src, gas::GasMode::PerVertex));
        }),
        (System::PowerGraph, Algorithm::Bc) => return None,
        (System::PowerGraph, Algorithm::PageRank) => Box::new(move || {
            std::hint::black_box(gas::pagerank(
                g,
                rev,
                PR_DAMPING,
                PR_TOL,
                PR_MAX_ITERS,
                gas::GasMode::PerVertex,
            ));
        }),
        (System::PowerGraph, Algorithm::Cc) => Box::new(move || {
            std::hint::black_box(gas::connected_components(g, rev, gas::GasMode::PerVertex));
        }),

        (System::Medusa, Algorithm::Bfs) => Box::new(move || {
            std::hint::black_box(medusa::bfs(g, src));
        }),
        (System::Medusa, Algorithm::Sssp) => Box::new(move || {
            std::hint::black_box(medusa::sssp(g, src));
        }),
        (System::Medusa, Algorithm::Bc) => return None,
        (System::Medusa, Algorithm::PageRank) => Box::new(move || {
            std::hint::black_box(medusa::pagerank(g, PR_DAMPING, PR_TOL, PR_MAX_ITERS));
        }),
        (System::Medusa, Algorithm::Cc) => return None,

        (System::MapGraph, Algorithm::Bfs) => Box::new(move || {
            std::hint::black_box(gas::bfs(g, rev, src, gas::GasMode::Balanced));
        }),
        (System::MapGraph, Algorithm::Sssp) => Box::new(move || {
            std::hint::black_box(gas::sssp(g, rev, src, gas::GasMode::Balanced));
        }),
        (System::MapGraph, Algorithm::Bc) => return None,
        (System::MapGraph, Algorithm::PageRank) => Box::new(move || {
            std::hint::black_box(gas::pagerank(
                g,
                rev,
                PR_DAMPING,
                PR_TOL,
                PR_MAX_ITERS,
                gas::GasMode::Balanced,
            ));
        }),
        (System::MapGraph, Algorithm::Cc) => Box::new(move || {
            std::hint::black_box(gas::connected_components(g, rev, gas::GasMode::Balanced));
        }),

        (System::Hardwired, Algorithm::Bfs) => Box::new(move || {
            std::hint::black_box(hardwired::bfs(g, rev, src));
        }),
        (System::Hardwired, Algorithm::Sssp) => Box::new(move || {
            let delta = algos::sssp::default_delta(g);
            std::hint::black_box(hardwired::sssp_delta_stepping(g, src, delta));
        }),
        (System::Hardwired, Algorithm::Bc) => Box::new(move || {
            std::hint::black_box(hardwired::bc(g, src));
        }),
        (System::Hardwired, Algorithm::PageRank) => Box::new(move || {
            std::hint::black_box(hardwired::pagerank(g, rev, PR_DAMPING, PR_TOL, PR_MAX_ITERS));
        }),
        (System::Hardwired, Algorithm::Cc) => Box::new(move || {
            std::hint::black_box(hardwired::cc_soman(g));
        }),

        (System::Ligra, Algorithm::Bfs) => Box::new(move || {
            std::hint::black_box(ligra::bfs(g, rev, src));
        }),
        (System::Ligra, Algorithm::Sssp) => Box::new(move || {
            std::hint::black_box(ligra::sssp_bellman_ford(g, rev, src));
        }),
        (System::Ligra, Algorithm::Bc) => Box::new(move || {
            std::hint::black_box(ligra::bc(g, rev, src));
        }),
        (System::Ligra, Algorithm::PageRank) => Box::new(move || {
            std::hint::black_box(ligra::pagerank(g, rev, PR_DAMPING, PR_TOL, PR_MAX_ITERS));
        }),
        (System::Ligra, Algorithm::Cc) => Box::new(move || {
            std::hint::black_box(ligra::connected_components(g, rev));
        }),

        (System::Gunrock, Algorithm::Bfs) => Box::new(move || {
            let ctx = Context::new(g).with_reverse(rev);
            std::hint::black_box(algos::bfs(
                &ctx,
                src,
                algos::BfsOptions::direction_optimized(),
            ));
        }),
        (System::Gunrock, Algorithm::Sssp) => Box::new(move || {
            let ctx = Context::new(g);
            std::hint::black_box(algos::sssp(&ctx, src, algos::SsspOptions::default()));
        }),
        (System::Gunrock, Algorithm::Bc) => Box::new(move || {
            let ctx = Context::new(g);
            std::hint::black_box(algos::bc(&ctx, src, algos::BcOptions::default()));
        }),
        (System::Gunrock, Algorithm::PageRank) => Box::new(move || {
            let ctx = Context::new(g);
            std::hint::black_box(algos::pagerank(
                &ctx,
                algos::PrOptions {
                    damping: PR_DAMPING,
                    // residual tolerance: per-vertex pending mass, the
                    // same per-vertex granularity the other engines use
                    epsilon: PR_TOL,
                    max_iters: PR_MAX_ITERS,
                    ..Default::default()
                },
            ));
        }),
        (System::Gunrock, Algorithm::Cc) => Box::new(move || {
            let ctx = Context::new(g);
            std::hint::black_box(algos::cc(&ctx));
        }),
    };
    let run = run;
    let millis = crate::time_avg_ms(runs, run);
    let stats = (sys == System::Gunrock).then(|| gunrock_stats(alg, d));
    Some(Measurement { millis, mteps: m / (millis / 1e3) / 1e6, stats })
}

/// One extra instrumented Gunrock run to collect the per-operator trace.
/// Kept separate from the timed loop so sink bookkeeping never shows up
/// in the reported wall times. The summary is stamped with this run's own
/// wall clock (so per-operator sums can be sanity-capped against it) and
/// the context's buffer-pool counters.
fn gunrock_stats(alg: Algorithm, d: &Dataset) -> RunStatsSummary {
    let g = &d.graph;
    let src = 0u32;
    let ctx = match alg {
        Algorithm::Bfs => Context::with_stats(Context::new(g).with_reverse(d.reverse())),
        _ => Context::with_stats(Context::new(g)),
    };
    let start = std::time::Instant::now();
    match alg {
        Algorithm::Bfs => {
            std::hint::black_box(algos::bfs(
                &ctx,
                src,
                algos::BfsOptions::direction_optimized(),
            ));
        }
        Algorithm::Sssp => {
            std::hint::black_box(algos::sssp(&ctx, src, algos::SsspOptions::default()));
        }
        Algorithm::Bc => {
            std::hint::black_box(algos::bc(&ctx, src, algos::BcOptions::default()));
        }
        Algorithm::PageRank => {
            std::hint::black_box(algos::pagerank(
                &ctx,
                algos::PrOptions {
                    damping: PR_DAMPING,
                    epsilon: PR_TOL,
                    max_iters: PR_MAX_ITERS,
                    ..Default::default()
                },
            ));
        }
        Algorithm::Cc => {
            std::hint::black_box(algos::cc(&ctx));
        }
    }
    let wall = start.elapsed().as_secs_f64() * 1e3;
    ctx.run_stats().summary().with_wall_clock(wall).with_pool(ctx.pool().stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::load_dataset;

    #[test]
    fn every_supported_pair_produces_a_measurement() {
        let d = load_dataset("kron", 8);
        for sys in System::ALL {
            for alg in Algorithm::ALL {
                let skip = matches!(
                    (sys, alg),
                    (System::PowerGraph, Algorithm::Bc)
                        | (System::MapGraph, Algorithm::Bc)
                        | (System::Medusa, Algorithm::Bc)
                        | (System::Medusa, Algorithm::Cc)
                );
                let got = run_system(sys, alg, &d, 1);
                assert_eq!(got.is_none(), skip, "{sys:?} {alg:?}");
                if let Some(m) = got {
                    assert!(m.millis >= 0.0 && m.mteps >= 0.0);
                    // only Gunrock runs carry a trace aggregate, and it
                    // must have seen at least one operator step
                    assert_eq!(m.stats.is_some(), sys == System::Gunrock, "{sys:?} {alg:?}");
                    if let Some(s) = m.stats {
                        assert!(s.steps > 0, "{sys:?} {alg:?} trace is empty");
                        assert!(s.wall_millis > 0.0, "{sys:?} {alg:?} missing wall clock");
                        assert!(
                            s.operator_sum_millis() <= s.wall_millis + 1e-9,
                            "{sys:?} {alg:?} operator sum exceeds wall time"
                        );
                        assert!(s.pool.checkouts > 0, "{sys:?} {alg:?} never used the pool");
                    }
                }
            }
        }
    }
}
