//! # gunrock-bench
//!
//! Evaluation harness reproducing the paper's tables and figures (§6) at
//! laptop scale. Every artifact has a binary (see DESIGN.md §4):
//!
//! | binary | paper artifact |
//! |---|---|
//! | `table1` | Table 1 — dataset description |
//! | `table2` | Table 2 — runtime + MTEPS across seven systems (+ `--geomeans` for the MapGraph speedup figures) |
//! | `table3` | Table 3 — scalability across five Kronecker scales |
//! | `fig_pushpull` | §4.1.1 footnote — push vs direction-optimized geomean speedups |
//! | `ablation_lb` | §4.4 — load-balance strategy comparison |
//! | `ablation_filter` | §4.1.1 — idempotence + culling heuristics |
//! | `ablation_fusion` | §4.3 — fused functors vs separate passes |
//!
//! Graph sizes are scaled down from the paper's (the substrate is a
//! multicore engine, not a K40c); pass `--scale N` to grow them. The
//! *shape* of the results — who wins, by what factor, where crossovers
//! fall — is the reproduction target (EXPERIMENTS.md records both).

#![warn(missing_docs)]

pub mod datasets;
pub mod runner;
pub mod table;

pub use datasets::{load_dataset, standard_datasets, Dataset};
pub use runner::{run_system, Algorithm, Measurement, System};
pub use table::{geomean, Table};

/// Parses `--flag value` style options from `std::env::args`, returning
/// the value for `name` if present.
pub fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

/// True if the bare flag `name` is present.
pub fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Common CLI: `--scale N` (default 12), `--runs N` (default 3).
pub struct BenchArgs {
    /// Graph size exponent (~log2 of vertex count).
    pub scale: u32,
    /// Timing repetitions averaged per measurement.
    pub runs: usize,
}

impl BenchArgs {
    /// Parses the common arguments.
    pub fn parse() -> Self {
        BenchArgs {
            scale: arg_value("--scale").and_then(|s| s.parse().ok()).unwrap_or(12),
            runs: arg_value("--runs").and_then(|s| s.parse().ok()).unwrap_or(3),
        }
    }
}

/// Times `f` over `runs` executions, returning the average milliseconds
/// (the paper averages 10 runs; we default to 3 for laptop turnaround).
pub fn time_avg_ms<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(runs > 0);
    let mut total = 0.0;
    for _ in 0..runs {
        let t = std::time::Instant::now();
        let out = f();
        total += t.elapsed().as_secs_f64() * 1e3;
        std::hint::black_box(&out);
    }
    total / runs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_avg_is_positive() {
        let ms = time_avg_ms(2, || (0..10_000u64).sum::<u64>());
        assert!(ms >= 0.0);
    }
}
