//! The four benchmark datasets of Table 1, generated synthetically at a
//! tunable scale (see DESIGN.md §2 for the substitution rationale):
//!
//! | name | paper dataset | topology class |
//! |---|---|---|
//! | `soc` | soc-LiveJournal1 | scale-free social (mild skew) |
//! | `bitcoin` | bitcoin | one super-hub + very long chain |
//! | `kron` | kron_g500-logn20 | Kronecker scale-free (heavy skew) |
//! | `roadnet` | roadNet-CA | small even degree, huge diameter |
//!
//! All are undirected with symmetric random weights in `1..=64`, exactly
//! as §6 prepares them.

use gunrock_graph::generators::{grid2d, hub_chain, rmat, RmatParams};
use gunrock_graph::{Csr, GraphBuilder};

/// A prepared benchmark dataset.
pub struct Dataset {
    /// Canonical dataset name (a row of Table 1).
    pub name: &'static str,
    /// The prepared undirected weighted graph.
    pub graph: Csr,
}

impl Dataset {
    /// The reverse graph for pull traversal. Benchmark graphs are
    /// undirected (symmetric structure and weights), so the forward
    /// graph is its own reverse.
    pub fn reverse(&self) -> &Csr {
        &self.graph
    }

    /// The same dataset under the degree-descending relabeling (hub
    /// clustering for the bitmap pull sweep). The graph is isomorphic,
    /// so timings and MTEPS are directly comparable with the original.
    pub fn reordered(self) -> Dataset {
        let r = gunrock_graph::reorder::degree_descending(&self.graph);
        Dataset { name: self.name, graph: r.apply(&self.graph) }
    }
}

/// The canonical names, in the paper's row order.
pub const DATASET_NAMES: [&str; 4] = ["soc", "bitcoin", "kron", "roadnet"];

/// Builds one dataset at the given scale (`scale` ~ log2 of the vertex
/// count; the paper's originals correspond to scale 20-23).
pub fn load_dataset(name: &str, scale: u32) -> Dataset {
    let builder = || GraphBuilder::new().random_weights(1, 64, 0xC0FFEE);
    let graph = match name {
        // milder-skew social graph, a bit larger than kron as in Table 1
        "soc" => builder().build(rmat(scale + 1, 8, RmatParams::social(), 101)),
        // one huge hub, 94% degree < 4, diameter in the hundreds
        "bitcoin" => {
            let n = 3usize << scale;
            builder().build(hub_chain(n, 0.15, n / 4, 102))
        }
        // Graph500 Kronecker
        "kron" => builder().build(rmat(scale, 16, RmatParams::graph500(), 103)),
        // near-square grid with light perturbation
        "roadnet" => {
            let side = ((1u64 << scale) as f64).sqrt().round() as usize;
            builder().build(grid2d(2 * side, side, 0.05, 0.02, 104))
        }
        other => panic!("unknown dataset {other:?} (expected one of {DATASET_NAMES:?})"),
    };
    let name = DATASET_NAMES.iter().find(|&&n| n == name).expect("validated above");
    Dataset { name, graph }
}

/// All four datasets at one scale.
pub fn standard_datasets(scale: u32) -> Vec<Dataset> {
    DATASET_NAMES.iter().map(|n| load_dataset(n, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::stats::graph_stats;

    #[test]
    fn all_datasets_build_and_are_undirected() {
        for d in standard_datasets(9) {
            assert!(d.graph.num_vertices() > 0, "{}", d.name);
            assert!(d.graph.is_symmetric(), "{}", d.name);
            assert!(d.graph.edge_values().is_some(), "{}", d.name);
        }
    }

    #[test]
    fn topology_classes_match_table_one() {
        let soc = load_dataset("soc", 10);
        let kron = load_dataset("kron", 10);
        let road = load_dataset("roadnet", 10);
        let btc = load_dataset("bitcoin", 10);
        let s = |d: &Dataset| graph_stats(&d.graph);
        // scale-free graphs: tiny diameter, big max degree
        assert!(s(&kron).pseudo_diameter < 15);
        assert!(s(&kron).max_degree > 100);
        // road: huge diameter, tiny max degree
        assert!(s(&road).pseudo_diameter > 40);
        assert!(s(&road).max_degree <= 8);
        // bitcoin: biggest max degree AND a long diameter
        assert!(s(&btc).max_degree > s(&soc).max_degree);
        assert!(s(&btc).pseudo_diameter > 100);
        // kron skews harder than soc
        assert!(s(&kron).max_degree > s(&soc).max_degree);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        load_dataset("nope", 8);
    }
}
