//! Coordinate-format (edge list) graph representation.
//!
//! COO is the interchange format: generators and parsers produce it, the
//! [`crate::builder::GraphBuilder`] consumes it to produce CSR. Edge weights
//! are carried in a parallel array (structure-of-arrays, per the paper's
//! SOA design for coalesced access).

use crate::error::{GraphError, GraphResult};
use crate::types::{VertexId, Weight};

/// An edge list with optional per-edge weights.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    /// Number of vertices (`max id + 1` unless explicitly larger).
    pub num_vertices: usize,
    /// Edge sources.
    pub src: Vec<VertexId>,
    /// Edge destinations.
    pub dst: Vec<VertexId>,
    /// Optional per-edge weights; if present, `weights.len() == src.len()`.
    pub weights: Option<Vec<Weight>>,
}

impl Coo {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Coo { num_vertices, src: Vec::new(), dst: Vec::new(), weights: None }
    }

    /// Creates an edge list from `(src, dst)` pairs, inferring the vertex
    /// count from the largest endpoint if `num_vertices` is too small.
    pub fn from_edges(num_vertices: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut coo = Coo::new(num_vertices);
        coo.src.reserve(edges.len());
        coo.dst.reserve(edges.len());
        for &(s, d) in edges {
            coo.push(s, d);
        }
        coo
    }

    /// Creates a weighted edge list from `(src, dst, w)` triples.
    pub fn from_weighted_edges(
        num_vertices: usize,
        edges: &[(VertexId, VertexId, Weight)],
    ) -> Self {
        let mut coo = Coo::new(num_vertices);
        for &(s, d, w) in edges {
            coo.push_weighted(s, d, w);
        }
        coo
    }

    /// Number of edges currently stored.
    pub fn num_edges(&self) -> usize {
        self.src.len()
    }

    /// Checks the edge-list invariants, returning the first violation:
    /// parallel `src`/`dst` (and weight, when present) array lengths, a
    /// vertex count within the `VertexId` range, and every endpoint in
    /// `[0, num_vertices)`. Parsers run this on anything read from an
    /// untrusted source before CSR construction, whose counting sort
    /// indexes by source id unchecked.
    pub fn validate(&self) -> GraphResult<()> {
        if self.src.len() != self.dst.len() {
            return Err(GraphError::invalid(format!(
                "{} sources for {} destinations",
                self.src.len(),
                self.dst.len()
            )));
        }
        if let Some(ws) = &self.weights {
            if ws.len() != self.src.len() {
                return Err(GraphError::invalid(format!(
                    "{} weights for {} edges",
                    ws.len(),
                    self.src.len()
                )));
            }
        }
        if self.num_vertices > VertexId::MAX as usize {
            return Err(GraphError::invalid(format!(
                "{} vertices exceed the VertexId range",
                self.num_vertices
            )));
        }
        for (i, (&s, &d)) in self.src.iter().zip(&self.dst).enumerate() {
            if s as usize >= self.num_vertices || d as usize >= self.num_vertices {
                return Err(GraphError::invalid(format!(
                    "edge {i} ({s} -> {d}) outside the {}-vertex graph",
                    self.num_vertices
                )));
            }
        }
        Ok(())
    }

    /// Appends an unweighted edge, growing the vertex count if needed.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!(self.weights.is_none(), "mixing weighted and unweighted edges");
        self.grow_to_fit(src, dst);
        self.src.push(src);
        self.dst.push(dst);
    }

    /// Appends a weighted edge, growing the vertex count if needed.
    pub fn push_weighted(&mut self, src: VertexId, dst: VertexId, w: Weight) {
        self.grow_to_fit(src, dst);
        self.src.push(src);
        self.dst.push(dst);
        self.weights.get_or_insert_with(Vec::new).push(w);
        debug_assert_eq!(self.weights.as_ref().map(Vec::len), Some(self.src.len()));
    }

    fn grow_to_fit(&mut self, src: VertexId, dst: VertexId) {
        let need = src.max(dst) as usize + 1;
        if need > self.num_vertices {
            self.num_vertices = need;
        }
    }

    /// Iterates over `(src, dst)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// Adds the reverse of every edge, making the graph undirected (the
    /// paper converts all datasets to undirected). Reverse edges copy the
    /// forward weight.
    pub fn symmetrize(&mut self) {
        let m = self.num_edges();
        self.src.reserve(m);
        self.dst.reserve(m);
        for i in 0..m {
            let (s, d) = (self.src[i], self.dst[i]);
            self.src.push(d);
            self.dst.push(s);
        }
        if let Some(w) = &mut self.weights {
            w.reserve(m);
            for i in 0..m {
                let wi = w[i];
                w.push(wi);
            }
        }
    }

    /// Removes self loops (`u -> u`), preserving edge order.
    pub fn remove_self_loops(&mut self) {
        self.retain(|s, d, _| s != d);
    }

    /// Retains only edges for which the predicate returns true.
    pub fn retain(&mut self, mut pred: impl FnMut(VertexId, VertexId, Option<Weight>) -> bool) {
        let m = self.num_edges();
        let mut keep = 0usize;
        for i in 0..m {
            let w = self.weights.as_ref().map(|w| w[i]);
            if pred(self.src[i], self.dst[i], w) {
                self.src[keep] = self.src[i];
                self.dst[keep] = self.dst[i];
                if let Some(ws) = &mut self.weights {
                    ws[keep] = ws[i];
                }
                keep += 1;
            }
        }
        self.src.truncate(keep);
        self.dst.truncate(keep);
        if let Some(ws) = &mut self.weights {
            ws.truncate(keep);
        }
    }

    /// Sorts edges by `(src, dst)` and removes exact duplicates, keeping the
    /// first weight of each duplicate group.
    pub fn sort_and_dedup(&mut self) {
        let m = self.num_edges();
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_unstable_by_key(|&i| (self.src[i as usize], self.dst[i as usize]));
        let mut src = Vec::with_capacity(m);
        let mut dst = Vec::with_capacity(m);
        let mut wts = self.weights.as_ref().map(|_| Vec::with_capacity(m));
        let mut last: Option<(VertexId, VertexId)> = None;
        for &i in &order {
            let i = i as usize;
            let e = (self.src[i], self.dst[i]);
            if last == Some(e) {
                continue;
            }
            last = Some(e);
            src.push(e.0);
            dst.push(e.1);
            if let (Some(out), Some(ws)) = (&mut wts, &self.weights) {
                out.push(ws[i]);
            }
        }
        self.src = src;
        self.dst = dst;
        self.weights = wts;
    }

    /// Assigns uniform random weights in `lo..=hi` (the paper uses 1..=64),
    /// replacing any existing weights. `seed` makes the assignment
    /// deterministic.
    pub fn randomize_weights(&mut self, lo: Weight, hi: Weight, seed: u64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = self.num_edges();
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            w.push(rng.random_range(lo..=hi));
        }
        self.weights = Some(w);
    }

    /// Assigns uniform random weights in `lo..=hi` such that `(u, v)` and
    /// `(v, u)` always receive the same weight — the correct model for an
    /// undirected weighted graph (the per-edge weight is a hash of the
    /// unordered endpoint pair and the seed).
    pub fn randomize_weights_symmetric(&mut self, lo: Weight, hi: Weight, seed: u64) {
        assert!(hi >= lo);
        let span = (hi - lo + 1) as u64;
        let m = self.num_edges();
        let mut w = Vec::with_capacity(m);
        for i in 0..m {
            let (a, b) = (self.src[i].min(self.dst[i]), self.src[i].max(self.dst[i]));
            let h = splitmix64(seed ^ (((a as u64) << 32) | b as u64));
            w.push(lo + (h % span) as Weight);
        }
        self.weights = Some(w);
    }
}

/// SplitMix64 mixer: a fast, high-quality 64-bit hash used for
/// deterministic per-edge values.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Coo {
        Coo::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn push_grows_vertex_count() {
        let mut c = Coo::new(1);
        c.push(0, 5);
        assert_eq!(c.num_vertices, 6);
        assert_eq!(c.num_edges(), 1);
    }

    #[test]
    fn symmetrize_doubles_edges() {
        let mut c = triangle();
        c.symmetrize();
        assert_eq!(c.num_edges(), 6);
        assert!(c.edges().any(|e| e == (1, 0)));
    }

    #[test]
    fn symmetrize_copies_weights() {
        let mut c = Coo::from_weighted_edges(2, &[(0, 1, 7)]);
        c.symmetrize();
        assert_eq!(c.weights.as_ref().unwrap(), &[7, 7]);
    }

    #[test]
    fn remove_self_loops() {
        let mut c = Coo::from_edges(3, &[(0, 0), (0, 1), (2, 2), (1, 2)]);
        c.remove_self_loops();
        assert_eq!(c.num_edges(), 2);
        assert_eq!(c.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn sort_and_dedup_removes_duplicates_keeps_first_weight() {
        let mut c = Coo::from_weighted_edges(3, &[(1, 2, 9), (0, 1, 3), (1, 2, 4)]);
        c.sort_and_dedup();
        assert_eq!(c.edges().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
        assert_eq!(c.weights.as_ref().unwrap(), &[3, 9]);
    }

    #[test]
    fn randomize_weights_in_range_and_deterministic() {
        let mut a = triangle();
        a.randomize_weights(1, 64, 42);
        let mut b = triangle();
        b.randomize_weights(1, 64, 42);
        assert_eq!(a.weights, b.weights);
        assert!(a.weights.unwrap().iter().all(|&w| (1..=64).contains(&w)));
    }
}
