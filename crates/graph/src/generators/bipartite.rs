//! Bipartite graph generator for the who-to-follow node-ranking
//! extensions (§5.5): Personalized PageRank, SALSA, and HITS operate on a
//! bipartite "hubs/authorities" structure.
//!
//! Vertices `0..n_left` form the left side (e.g. users), vertices
//! `n_left..n_left+n_right` the right side (e.g. followed accounts). All
//! edges go left -> right; degree on the left is Zipf-distributed to mimic
//! follow-count skew.

use crate::coo::Coo;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};

/// Describes the two sides of a generated bipartite graph.
#[derive(Clone, Copy, Debug)]
pub struct BipartiteShape {
    /// Left-partition size (vertices `0..n_left`).
    pub n_left: usize,
    /// Right-partition size (vertices `n_left..n_left + n_right`).
    pub n_right: usize,
}

/// Generates a left->right bipartite edge list where each left vertex gets
/// `avg_degree` edges on average (Zipf-skewed) and right endpoints are
/// chosen with preferential skew (low ids are "popular"). Returns the edge
/// list and the shape. Directed output: keep it directed for HITS/SALSA,
/// or symmetrize for undirected analytics.
pub fn bipartite_random(
    n_left: usize,
    n_right: usize,
    avg_degree: usize,
    seed: u64,
) -> (Coo, BipartiteShape) {
    assert!(n_left > 0 && n_right > 0);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let n = n_left + n_right;
    let mut coo = Coo::new(n);
    for u in 0..n_left {
        // Zipf-ish out-degree: most users follow few, some follow many.
        let r: f64 = rng.random::<f64>().max(1e-9);
        let deg = ((avg_degree as f64 * 0.5 / r.sqrt()) as usize).clamp(1, 4 * avg_degree + 1);
        for _ in 0..deg {
            // popularity skew on the right: squaring biases toward low ids
            let t: f64 = rng.random();
            let v = ((t * t) * n_right as f64) as usize;
            let v = v.min(n_right - 1);
            coo.push(u as VertexId, (n_left + v) as VertexId);
        }
    }
    (coo, BipartiteShape { n_left, n_right })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_edges_cross_the_partition() {
        let (coo, shape) = bipartite_random(100, 50, 8, 1);
        assert_eq!(coo.num_vertices, 150);
        for (s, d) in coo.edges() {
            assert!((s as usize) < shape.n_left);
            assert!((d as usize) >= shape.n_left && (d as usize) < 150);
        }
    }

    #[test]
    fn every_left_vertex_has_an_edge() {
        let (coo, _) = bipartite_random(64, 32, 4, 2);
        let mut seen = [false; 64];
        for (s, _) in coo.edges() {
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn popularity_is_skewed_toward_low_right_ids() {
        let (coo, shape) = bipartite_random(2_000, 1_000, 10, 3);
        let mut indeg = vec![0usize; shape.n_right];
        for (_, d) in coo.edges() {
            indeg[d as usize - shape.n_left] += 1;
        }
        let top: usize = indeg[..100].iter().sum();
        let bottom: usize = indeg[shape.n_right - 100..].iter().sum();
        assert!(top > 3 * bottom.max(1), "top {top} bottom {bottom}");
    }
}
