//! Watts–Strogatz small-world generator: a ring lattice with random
//! rewiring. Provides a topology between the grid (high diameter) and
//! R-MAT (scale-free) extremes for ablation studies of the
//! direction-optimized traversal crossover.

use crate::coo::Coo;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};

/// Generates a ring over `n` vertices where each vertex connects to its
/// `k` clockwise neighbors; each edge is rewired to a random destination
/// with probability `p`. Directed output; symmetrize via the builder.
pub fn watts_strogatz(n: usize, k: usize, p: f64, seed: u64) -> Coo {
    assert!(n > 2 * k, "ring needs n > 2k");
    assert!((0.0..=1.0).contains(&p));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    for v in 0..n {
        for j in 1..=k {
            let mut dst = ((v + j) % n) as VertexId;
            if rng.random_bool(p) {
                // rewire, avoiding a self loop
                loop {
                    dst = rng.random_range(0..n) as VertexId;
                    if dst as usize != v {
                        break;
                    }
                }
            }
            coo.push(v as VertexId, dst);
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn zero_rewiring_is_a_pure_ring() {
        let coo = watts_strogatz(10, 2, 0.0, 1);
        assert_eq!(coo.num_edges(), 20);
        assert!(coo.edges().any(|e| e == (9, 0))); // wraps around
        assert!(coo.edges().any(|e| e == (9, 1)));
    }

    #[test]
    fn rewiring_keeps_edge_count_and_avoids_self_loops() {
        let coo = watts_strogatz(100, 3, 0.5, 2);
        assert_eq!(coo.num_edges(), 300);
        assert!(coo.edges().all(|(s, d)| s != d));
    }

    #[test]
    fn degrees_stay_low() {
        let g = GraphBuilder::new().build(watts_strogatz(200, 2, 0.1, 3));
        assert!(g.max_degree() <= 16);
    }
}
