//! R-MAT / Kronecker recursive-matrix generator (Chakrabarti et al.), the
//! generator behind the Graph500 `kron_g500` datasets the paper evaluates
//! (Tables 1 and 3).

use crate::coo::Coo;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};

/// Quadrant probabilities for the recursive matrix. Must sum to ~1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Bottom-right quadrant probability.
    pub d: f64,
    /// Per-level multiplicative noise applied to the quadrant probabilities
    /// to avoid staircase artifacts. 0.0 disables noise.
    pub noise: f64,
}

impl RmatParams {
    /// Graph500 / `kron_g500` parameters: a=0.57, b=0.19, c=0.19, d=0.05.
    /// Produces heavy-tailed scale-free graphs with tiny diameter.
    pub fn graph500() -> Self {
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05, noise: 0.1 }
    }

    /// Flatter parameters approximating a social graph like
    /// soc-LiveJournal1 (skewed but far less than Graph500 Kronecker).
    pub fn social() -> Self {
        RmatParams { a: 0.45, b: 0.22, c: 0.22, d: 0.11, noise: 0.1 }
    }

    fn validate(&self) {
        let sum = self.a + self.b + self.c + self.d;
        assert!((sum - 1.0).abs() < 1e-6, "RMAT parameters must sum to 1, got {sum}");
        assert!((0.0..=1.0).contains(&self.noise));
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::graph500()
    }
}

/// Generates a directed R-MAT edge list with `2^scale` vertices and
/// `edge_factor * 2^scale` edges (Graph500 convention: edge_factor 16).
/// Self loops and duplicates are *not* removed here — run the result
/// through [`crate::builder::GraphBuilder`], matching the paper's
/// undirected conversion.
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> Coo {
    params.validate();
    assert!(scale < 32, "scale must fit VertexId");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    coo.src.reserve(m);
    coo.dst.reserve(m);
    for _ in 0..m {
        let (u, v) = sample_edge(scale, &params, &mut rng);
        coo.src.push(u);
        coo.dst.push(v);
    }
    coo
}

fn sample_edge(scale: u32, p: &RmatParams, rng: &mut impl Rng) -> (VertexId, VertexId) {
    let mut row = 0u64;
    let mut col = 0u64;
    for _ in 0..scale {
        // multiplicative noise keeps degree sequence smooth across levels
        let mut jitter = |base: f64| -> f64 {
            if p.noise == 0.0 {
                base
            } else {
                base * (1.0 - p.noise / 2.0 + p.noise * rng.random::<f64>())
            }
        };
        let (a, b, c, d) = (jitter(p.a), jitter(p.b), jitter(p.c), jitter(p.d));
        let total = a + b + c + d;
        let r = rng.random::<f64>() * total;
        row <<= 1;
        col <<= 1;
        if r < a {
            // top-left quadrant: nothing to add
        } else if r < a + b {
            col |= 1;
        } else if r < a + b + c {
            row |= 1;
        } else {
            row |= 1;
            col |= 1;
        }
    }
    (row as VertexId, col as VertexId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn sizes_follow_scale_and_edge_factor() {
        let coo = rmat(8, 16, RmatParams::graph500(), 1);
        assert_eq!(coo.num_vertices, 256);
        assert_eq!(coo.num_edges(), 16 * 256);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = rmat(7, 8, RmatParams::graph500(), 42);
        let b = rmat(7, 8, RmatParams::graph500(), 42);
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
        let c = rmat(7, 8, RmatParams::graph500(), 43);
        assert_ne!(a.src, c.src);
    }

    #[test]
    fn graph500_params_give_skewed_degrees() {
        let g = GraphBuilder::new().build(rmat(10, 16, RmatParams::graph500(), 7));
        let n = g.num_vertices() as f64;
        let avg = g.num_edges() as f64 / n;
        // scale-free: max degree far exceeds the average
        assert!(f64::from(g.max_degree()) > 8.0 * avg, "max {} avg {}", g.max_degree(), avg);
    }

    #[test]
    fn social_params_less_skewed_than_graph500() {
        let kron = GraphBuilder::new().build(rmat(10, 16, RmatParams::graph500(), 7));
        let soc = GraphBuilder::new().build(rmat(10, 16, RmatParams::social(), 7));
        assert!(soc.max_degree() < kron.max_degree());
    }

    #[test]
    #[should_panic]
    fn rejects_bad_params() {
        rmat(4, 4, RmatParams { a: 0.9, b: 0.9, c: 0.0, d: 0.0, noise: 0.0 }, 1);
    }
}
