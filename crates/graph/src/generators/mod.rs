//! Synthetic graph generators standing in for the paper's datasets.
//!
//! The evaluation (§6, Table 1) spans four topology classes; each has a
//! generator here (see DESIGN.md §2 for the substitution rationale):
//!
//! | Paper dataset      | Class                                  | Generator |
//! |--------------------|----------------------------------------|-----------|
//! | `kron_g500-logn20` | scale-free, tiny diameter              | [`rmat::rmat`] with Graph500 parameters |
//! | `soc-LiveJournal1` | scale-free social, mild skew           | [`rmat::rmat`] with flatter parameters |
//! | `roadNet-CA`       | small even degree, huge diameter       | [`grid::grid2d`] |
//! | `bitcoin`          | one super-hub + long chain             | [`hubchain::hub_chain`] |
//!
//! All generators are deterministic given a seed and return [`crate::coo::Coo`]
//! edge lists to be finished by [`crate::builder::GraphBuilder`].

pub mod bipartite;
pub mod grid;
pub mod hubchain;
pub mod random;
pub mod rmat;
pub mod smallworld;

pub use bipartite::bipartite_random;
pub use grid::grid2d;
pub use hubchain::hub_chain;
pub use random::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use smallworld::watts_strogatz;

/// The generator spec names understood by [`from_spec`], in the order
/// the CLI documents them.
pub const SPEC_KINDS: [&str; 6] = ["kron", "soc", "roadnet", "bitcoin", "random", "smallworld"];

/// Builds the edge list for a named topology class at `scale` — the
/// shared dispatch behind the CLI's and the serve daemon's `--gen`
/// flag, so every front end maps dataset names to generators the same
/// way. Unknown `kind`s are reported, not defaulted.
pub fn from_spec(kind: &str, scale: u32, seed: u64) -> Result<crate::coo::Coo, String> {
    Ok(match kind {
        "kron" => rmat(scale, 16, RmatParams::graph500(), seed),
        "soc" => rmat(scale, 8, RmatParams::social(), seed),
        "roadnet" => {
            // CAST: scale <= 63 here; the rounded square side of 2^scale
            // always fits usize.
            let side = ((1u64 << scale) as f64).sqrt().round() as usize;
            grid2d(2 * side, side, 0.05, 0.02, seed)
        }
        "bitcoin" => {
            let n = 3usize << scale;
            hub_chain(n, 0.15, n / 4, seed)
        }
        "random" => erdos_renyi(1 << scale, 8 << scale, seed),
        "smallworld" => watts_strogatz(1 << scale, 4, 0.1, seed),
        other => return Err(format!("unknown generator {other:?}")),
    })
}
