//! Synthetic graph generators standing in for the paper's datasets.
//!
//! The evaluation (§6, Table 1) spans four topology classes; each has a
//! generator here (see DESIGN.md §2 for the substitution rationale):
//!
//! | Paper dataset      | Class                                  | Generator |
//! |--------------------|----------------------------------------|-----------|
//! | `kron_g500-logn20` | scale-free, tiny diameter              | [`rmat::rmat`] with Graph500 parameters |
//! | `soc-LiveJournal1` | scale-free social, mild skew           | [`rmat::rmat`] with flatter parameters |
//! | `roadNet-CA`       | small even degree, huge diameter       | [`grid::grid2d`] |
//! | `bitcoin`          | one super-hub + long chain             | [`hubchain::hub_chain`] |
//!
//! All generators are deterministic given a seed and return [`crate::coo::Coo`]
//! edge lists to be finished by [`crate::builder::GraphBuilder`].

pub mod bipartite;
pub mod grid;
pub mod hubchain;
pub mod random;
pub mod rmat;
pub mod smallworld;

pub use bipartite::bipartite_random;
pub use grid::grid2d;
pub use hubchain::hub_chain;
pub use random::erdos_renyi;
pub use rmat::{rmat, RmatParams};
pub use smallworld::watts_strogatz;
