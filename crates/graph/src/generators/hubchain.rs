//! Bitcoin-transaction-like generator: one enormous hub plus a very long
//! chain.
//!
//! Table 1's `bitcoin` dataset is singular: one vertex of degree > 0.5M,
//! 94% of vertices with degree < 4, and diameter > 1000. That combination
//! stresses both extremes of the load-balancing spectrum at once (a single
//! neighbor list larger than any CTA, and a long critical path of tiny
//! frontiers). This generator reproduces exactly those three properties.

use crate::coo::Coo;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};

/// Generates a hub-and-chain graph over `n` vertices:
///
/// * vertex 0 is a hub connected to a `hub_fraction` share of all vertices;
/// * vertices `1..n` form a path (guaranteeing diameter ~ `n / chain_stride`);
/// * `extra_edges` random edges are sprinkled between non-hub vertices.
///
/// Directed output; symmetrize via the builder.
pub fn hub_chain(n: usize, hub_fraction: f64, extra_edges: usize, seed: u64) -> Coo {
    assert!(n >= 2);
    assert!((0.0..=1.0).contains(&hub_fraction));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    // The chain: a long path through every non-hub vertex.
    for v in 1..n - 1 {
        coo.push(v as VertexId, (v + 1) as VertexId);
    }
    // The hub: attach to a contiguous prefix of the chain so the hub's
    // neighbor list is huge but the far end of the chain stays far away
    // (the real bitcoin graph pairs a 0.5M-degree vertex with a >1000
    // diameter, so the hub must not shortcut the whole graph).
    let hub_degree = ((n as f64) * hub_fraction) as usize;
    for v in 1..=hub_degree.min(n - 1) {
        coo.push(0, v as VertexId);
    }
    // Sparse *local* shortcuts among the tail (short range keeps the
    // diameter proportional to the chain length).
    for _ in 0..extra_edges {
        let u = rng.random_range(1..n - 1);
        let span = rng.random_range(1..50usize);
        let v = (u + span).min(n - 1);
        coo.push(u as VertexId, v as VertexId);
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn hub_dominates_degree_distribution() {
        let g = GraphBuilder::new().build(hub_chain(10_000, 0.08, 2_000, 1));
        let hub_deg = g.out_degree(0);
        assert!(hub_deg >= 700, "hub degree {hub_deg}");
        assert_eq!(g.max_degree(), hub_deg);
        // the vast majority of vertices have tiny degree, as in bitcoin
        let small = (1..g.num_vertices() as VertexId).filter(|&v| g.out_degree(v) < 4).count();
        assert!(small as f64 > 0.85 * g.num_vertices() as f64);
    }

    #[test]
    fn chain_guarantees_connectivity_of_tail() {
        let g = GraphBuilder::new().build(hub_chain(100, 0.1, 0, 2));
        // walk the chain: every vertex 1..n-1 must reach its successor
        for v in 1..98u32 {
            assert!(g.neighbors(v).contains(&(v + 1)), "missing chain edge at {v}");
        }
    }

    #[test]
    fn deterministic() {
        let a = hub_chain(500, 0.05, 100, 11);
        let b = hub_chain(500, 0.05, 100, 11);
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
    }
}
