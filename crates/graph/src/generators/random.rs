//! Uniform random (Erdős–Rényi G(n, m)) generator, used mainly by tests
//! and property-based cross-validation: every engine must agree on
//! arbitrary graphs, not just the benchmark topologies.

use crate::coo::Coo;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};

/// Generates `m` directed edges chosen uniformly at random over `n`
/// vertices (with replacement; dedup via the builder if needed).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Coo {
    assert!(n > 0 && n <= VertexId::MAX as usize);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut coo = Coo::new(n);
    coo.src.reserve(m);
    coo.dst.reserve(m);
    for _ in 0..m {
        coo.src.push(rng.random_range(0..n) as VertexId);
        coo.dst.push(rng.random_range(0..n) as VertexId);
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_requested_sizes() {
        let coo = erdos_renyi(100, 500, 3);
        assert_eq!(coo.num_vertices, 100);
        assert_eq!(coo.num_edges(), 500);
        assert!(coo.edges().all(|(s, d)| s < 100 && d < 100));
    }

    #[test]
    fn deterministic() {
        let a = erdos_renyi(50, 200, 8);
        let b = erdos_renyi(50, 200, 8);
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
    }
}
