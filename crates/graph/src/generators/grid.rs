//! Road-network-like generator: a 2D lattice with random perturbation.
//!
//! Stands in for roadNet-CA (Table 1): every vertex has degree <= 4-ish,
//! the degree distribution is nearly uniform, and the diameter grows as
//! `O(width + height)` — the "small-degree large-diameter" topology class
//! on which the paper's fine-grained load balancing and push-only traversal
//! behave best.

use crate::coo::Coo;
use crate::types::VertexId;
use rand::{Rng, SeedableRng};

/// Generates a `width x height` 4-neighbor grid. `drop_prob` randomly
/// deletes that fraction of lattice edges (making the network irregular,
/// like a real road map) and `diag_prob` adds that fraction of diagonal
/// shortcuts. Directed output; symmetrize via the builder.
pub fn grid2d(width: usize, height: usize, drop_prob: f64, diag_prob: f64, seed: u64) -> Coo {
    assert!(width * height <= VertexId::MAX as usize);
    assert!((0.0..1.0).contains(&drop_prob));
    assert!((0.0..1.0).contains(&diag_prob));
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize| (y * width + x) as VertexId;
    let mut coo = Coo::new(width * height);
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && !rng.random_bool(drop_prob) {
                coo.push(id(x, y), id(x + 1, y));
            }
            if y + 1 < height && !rng.random_bool(drop_prob) {
                coo.push(id(x, y), id(x, y + 1));
            }
            if x + 1 < width && y + 1 < height && rng.random_bool(diag_prob) {
                coo.push(id(x, y), id(x + 1, y + 1));
            }
        }
    }
    coo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn full_grid_edge_count() {
        // no drops, no diagonals: horizontal (w-1)*h + vertical w*(h-1)
        let coo = grid2d(4, 3, 0.0, 0.0, 1);
        assert_eq!(coo.num_vertices, 12);
        assert_eq!(coo.num_edges(), 3 * 3 + 4 * 2);
    }

    #[test]
    fn degrees_are_small_and_even() {
        let g = GraphBuilder::new().build(grid2d(20, 20, 0.05, 0.02, 3));
        assert!(g.max_degree() <= 8);
        // and no large holes: average degree close to 4
        let avg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(avg > 3.0, "avg {avg}");
    }

    #[test]
    fn deterministic() {
        let a = grid2d(10, 10, 0.1, 0.1, 9);
        let b = grid2d(10, 10, 0.1, 0.1, 9);
        assert_eq!(a.src, b.src);
        assert_eq!(a.dst, b.dst);
    }

    #[test]
    fn drop_prob_reduces_edges() {
        let full = grid2d(30, 30, 0.0, 0.0, 5);
        let sparse = grid2d(30, 30, 0.3, 0.0, 5);
        assert!(sparse.num_edges() < full.num_edges());
    }
}
