//! Vertex relabeling (preprocessing for bitmap-frontier locality).
//!
//! Direction-optimized traversal sweeps dense bitmap frontiers one u64
//! word at a time (paper §4.1.1's bitmap-of-predecessors, GraphBLAST's
//! masked view). On a scale-free graph the high-degree hubs — the
//! vertices a pull iteration tests most often — are scattered across the
//! id space, so every mask word is lukewarm. Relabeling vertices in
//! degree-descending order clusters the hubs into the first few words:
//! hot words stay resident in cache, and the empty-word skip of the
//! sweep fires on the long cold tail.
//!
//! The permutation is a preprocessing step: run the algorithm on the
//! relabeled graph, then map results back with [`Relabeling::old_of_new`]
//! / the `restore_*` helpers so callers never observe internal ids.

use crate::csr::Csr;
use crate::types::{VertexId, Weight, INVALID_VERTEX};

/// A bijection between original ("old") and relabeled ("new") vertex ids,
/// plus helpers to translate per-vertex results back.
#[derive(Clone, Debug)]
pub struct Relabeling {
    /// `new_of_old[old] = new`: where each original vertex went.
    new_of_old: Vec<VertexId>,
    /// `old_of_new[new] = old`: the inverse permutation.
    old_of_new: Vec<VertexId>,
}

impl Relabeling {
    /// Builds a relabeling from the forward map `new_of_old`, which must
    /// be a permutation of `0..n`.
    pub fn from_forward(new_of_old: Vec<VertexId>) -> Self {
        let n = new_of_old.len();
        let mut old_of_new = vec![INVALID_VERTEX; n];
        for (old, &new) in new_of_old.iter().enumerate() {
            assert!(
                (new as usize) < n,
                "relabeling target {new} out of range for {n} vertices"
            );
            assert_eq!(
                old_of_new[new as usize], INVALID_VERTEX,
                "relabeling maps two vertices to {new}"
            );
            old_of_new[new as usize] = old as VertexId;
        }
        Relabeling { new_of_old, old_of_new }
    }

    /// The identity relabeling (useful as a no-op default).
    pub fn identity(n: usize) -> Self {
        // CAST: n is a vertex count, capped below VertexId::MAX by Csr::validate.
        let ids: Vec<VertexId> = (0..n as VertexId).collect();
        Relabeling { new_of_old: ids.clone(), old_of_new: ids }
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.new_of_old.len()
    }

    /// True for the empty (zero-vertex) relabeling.
    pub fn is_empty(&self) -> bool {
        self.new_of_old.is_empty()
    }

    /// The new id of original vertex `old`.
    #[inline]
    pub fn new_of_old(&self, old: VertexId) -> VertexId {
        self.new_of_old[old as usize]
    }

    /// The original id of relabeled vertex `new`.
    #[inline]
    pub fn old_of_new(&self, new: VertexId) -> VertexId {
        self.old_of_new[new as usize]
    }

    /// Rebuilds `graph` under this relabeling: vertex `old` becomes
    /// `new_of_old[old]`, edges (and their weights) follow their
    /// endpoints, and each neighbor list is re-sorted by new id so the
    /// result keeps the builder's sorted-adjacency invariant (triangle
    /// counting and merge-based intersection rely on it).
    pub fn apply(&self, graph: &Csr) -> Csr {
        let n = graph.num_vertices();
        assert_eq!(n, self.len(), "relabeling covers {} vertices, graph has {n}", self.len());
        let m = graph.num_edges();
        let mut offsets = vec![0u32; n + 1];
        for old in 0..n {
            // CAST: old < n < VertexId::MAX by Csr::validate.
            offsets[self.new_of_old[old] as usize + 1] = graph.out_degree(old as VertexId);
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cols = vec![0 as VertexId; m];
        let mut vals = graph.edge_values().map(|_| vec![0 as Weight; m]);
        for old in 0..n as VertexId {
            let new = self.new_of_old[old as usize];
            let mut pos = offsets[new as usize] as usize;
            for e in graph.edge_range(old) {
                cols[pos] = self.new_of_old[graph.col_indices()[e] as usize];
                if let (Some(v), Some(w)) = (&mut vals, graph.edge_values()) {
                    v[pos] = w[e];
                }
                pos += 1;
            }
            // restore sorted adjacency under the new ids
            let range = offsets[new as usize] as usize..pos;
            match &mut vals {
                None => cols[range].sort_unstable(),
                Some(v) => {
                    let mut row: Vec<(VertexId, Weight)> = cols[range.clone()]
                        .iter()
                        .copied()
                        .zip(v[range.clone()].iter().copied())
                        .collect();
                    row.sort_unstable_by_key(|&(c, _)| c);
                    for (i, (c, w)) in row.into_iter().enumerate() {
                        cols[range.start + i] = c;
                        v[range.start + i] = w;
                    }
                }
            }
        }
        Csr::from_raw(offsets, cols, vals)
    }

    /// Restores a per-vertex value array computed on the relabeled graph
    /// to original-id order: `result[old] = values[new_of_old[old]]`.
    pub fn restore_values<T: Copy>(&self, values: &[T]) -> Vec<T> {
        assert_eq!(values.len(), self.len());
        self.new_of_old.iter().map(|&new| values[new as usize]).collect()
    }

    /// Restores a per-vertex array whose *elements are themselves vertex
    /// ids* (BFS predecessors, CC component labels): reorders to original
    /// positions AND translates each stored id back, preserving sentinel
    /// values (e.g. `INVALID_VERTEX`) that are not legal ids.
    pub fn restore_ids(&self, values: &[VertexId]) -> Vec<VertexId> {
        assert_eq!(values.len(), self.len());
        self.new_of_old
            .iter()
            .map(|&new| {
                let v = values[new as usize];
                if (v as usize) < self.len() {
                    self.old_of_new[v as usize]
                } else {
                    v // sentinel (INVALID_VERTEX / INFINITY-as-id): pass through
                }
            })
            .collect()
    }

    /// Translates a list of original vertex ids (e.g. sources) into
    /// relabeled ids.
    pub fn map_ids(&self, ids: &[VertexId]) -> Vec<VertexId> {
        ids.iter().map(|&v| self.new_of_old(v)).collect()
    }
}

/// Builds the degree-descending (hub-clustering) relabeling: vertex ids
/// are reassigned so that `out_degree` is non-increasing in the new id
/// order, ties broken by original id for determinism. New id 0 is the
/// biggest hub; isolated vertices sink to the top of the id space.
pub fn degree_descending(graph: &Csr) -> Relabeling {
    let n = graph.num_vertices();
    // CAST: n < VertexId::MAX by Csr::validate.
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
    let mut new_of_old = vec![0 as VertexId; n];
    for (new, &old) in by_degree.iter().enumerate() {
        // CAST: new < n < VertexId::MAX by Csr::validate.
        new_of_old[old as usize] = new as VertexId;
    }
    Relabeling { new_of_old, old_of_new: by_degree }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::generators;

    fn star_plus_path() -> Csr {
        // hub 2 with degree 4; path tail 5-6; isolated 7
        Csr::from_coo(&Coo::from_edges(
            8,
            &[(2, 0), (2, 1), (2, 3), (2, 4), (5, 6), (6, 5), (0, 2)],
        ))
    }

    #[test]
    fn degree_descending_puts_hubs_first() {
        let g = star_plus_path();
        let r = degree_descending(&g);
        assert_eq!(r.new_of_old(2), 0, "the hub takes id 0");
        // degrees are non-increasing in new id order
        let gr = r.apply(&g);
        let degs: Vec<u32> =
            (0..gr.num_vertices() as VertexId).map(|v| gr.out_degree(v)).collect();
        assert!(degs.windows(2).all(|w| w[0] >= w[1]), "{degs:?}");
        // same totals
        assert_eq!(gr.num_edges(), g.num_edges());
        assert_eq!(gr.num_vertices(), g.num_vertices());
    }

    #[test]
    fn apply_preserves_adjacency_under_translation() {
        let g = Csr::from_coo(&generators::rmat(7, 8, Default::default(), 11));
        let r = degree_descending(&g);
        let gr = r.apply(&g);
        for old in 0..g.num_vertices() as VertexId {
            let mut want: Vec<VertexId> =
                g.neighbors(old).iter().map(|&u| r.new_of_old(u)).collect();
            let mut got: Vec<VertexId> = gr.neighbors(r.new_of_old(old)).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "vertex {old}");
        }
    }

    #[test]
    fn apply_carries_weights_with_their_edges() {
        let g = Csr::from_coo(&Coo::from_weighted_edges(
            4,
            &[(0, 1, 10), (1, 2, 20), (1, 3, 30), (2, 0, 40)],
        ));
        let r = degree_descending(&g);
        let gr = r.apply(&g);
        // collect (src_old, dst_old, w) triples from the relabeled graph
        let mut got: Vec<(VertexId, VertexId, Weight)> = Vec::new();
        for s in 0..gr.num_vertices() as VertexId {
            for e in gr.edge_range(s) {
                // CAST: e < num_edges < EdgeId::MAX by Csr::validate.
                got.push((
                    r.old_of_new(s),
                    r.old_of_new(gr.col_indices()[e]),
                    gr.weight(e as crate::types::EdgeId),
                ));
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![(0, 1, 10), (1, 2, 20), (1, 3, 30), (2, 0, 40)]);
    }

    #[test]
    fn restore_round_trips_values_and_ids() {
        let g = star_plus_path();
        let r = degree_descending(&g);
        // a per-vertex value array in new-id order holding each vertex's
        // OLD id: restoring must give the identity
        let tagged: Vec<u32> =
            (0..g.num_vertices() as VertexId).map(|v| r.old_of_new(v)).collect();
        assert_eq!(r.restore_values(&tagged), (0..8).collect::<Vec<u32>>());
        // id-valued arrays translate their contents too
        let preds_new: Vec<VertexId> =
            (0..8).map(|v| if v == 0 { INVALID_VERTEX } else { 0 }).collect();
        let restored = r.restore_ids(&preds_new);
        // new id 0 is the hub (old 2): every other old position points at it
        assert_eq!(restored[2], INVALID_VERTEX);
        assert!(restored.iter().enumerate().all(|(old, &p)| old == 2 || p == 2));
    }

    #[test]
    fn identity_is_a_no_op() {
        let g = star_plus_path();
        let r = Relabeling::identity(g.num_vertices());
        let gr = r.apply(&g);
        assert_eq!(gr.row_offsets(), g.row_offsets());
        assert_eq!(gr.col_indices(), g.col_indices());
        assert_eq!(
            r.restore_values(&[5u32, 6, 7, 8, 9, 10, 11, 12]),
            vec![5, 6, 7, 8, 9, 10, 11, 12]
        );
    }

    #[test]
    #[should_panic(expected = "maps two vertices")]
    fn from_forward_rejects_non_permutations() {
        Relabeling::from_forward(vec![0, 0, 1]);
    }

    #[test]
    fn relabeled_graph_validates() {
        let g = Csr::from_coo(&generators::rmat(6, 8, Default::default(), 3));
        let r = degree_descending(&g);
        let gr = r.apply(&g);
        assert!(gr.validate().is_ok());
        // sorted-adjacency invariant survives the permutation
        assert!((0..gr.num_vertices() as VertexId)
            .all(|v| gr.neighbors(v).windows(2).all(|w| w[0] <= w[1])));
    }
}
