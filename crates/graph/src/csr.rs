//! Compressed-sparse-row graph storage.
//!
//! CSR is Gunrock's default representation (§3 of the paper): a
//! `row_offsets` array `R` of length `n + 1` and a `col_indices` array `C`
//! of length `m`, with optional structure-of-arrays edge weights. The
//! offsets let scan-based operators turn sparse, uneven workloads into
//! dense uniform ones.

use crate::coo::Coo;
use crate::error::{GraphError, GraphResult};
use crate::types::{EdgeId, VertexId, Weight};

/// An immutable CSR graph.
#[derive(Clone, Debug)]
pub struct Csr {
    row_offsets: Box<[EdgeId]>,
    col_indices: Box<[VertexId]>,
    edge_values: Option<Box<[Weight]>>,
}

impl Csr {
    /// Builds a CSR from an edge list using a counting sort over sources
    /// (linear time, stable within a neighbor list).
    pub fn from_coo(coo: &Coo) -> Self {
        let n = coo.num_vertices;
        let m = coo.num_edges();
        // Strict inequalities: u32::MAX itself is reserved as a sentinel
        // (INVALID_SLOT / EMPTY_SLOT in the operators), so the maximum
        // legal id is u32::MAX - 1. Checked before allocating offsets.
        assert!(n < VertexId::MAX as usize, "vertex count exceeds VertexId range");
        assert!(m < EdgeId::MAX as usize, "edge count exceeds EdgeId range");
        let mut offsets = vec![0 as EdgeId; n + 1];
        for &s in &coo.src {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<EdgeId> = offsets[..n].to_vec();
        let mut cols = vec![0 as VertexId; m];
        let mut vals = coo.weights.as_ref().map(|_| vec![0 as Weight; m]);
        for i in 0..m {
            let s = coo.src[i] as usize;
            let pos = cursor[s] as usize;
            cursor[s] += 1;
            cols[pos] = coo.dst[i];
            if let (Some(v), Some(w)) = (&mut vals, &coo.weights) {
                v[pos] = w[i];
            }
        }
        Csr {
            row_offsets: offsets.into_boxed_slice(),
            col_indices: cols.into_boxed_slice(),
            edge_values: vals.map(Vec::into_boxed_slice),
        }
    }

    /// Builds a CSR directly from raw arrays. `row_offsets` must be
    /// monotone with `row_offsets[0] == 0` and final entry equal to
    /// `col_indices.len()`.
    pub fn from_raw(
        row_offsets: Vec<EdgeId>,
        col_indices: Vec<VertexId>,
        edge_values: Option<Vec<Weight>>,
    ) -> Self {
        assert!(!row_offsets.is_empty());
        assert!(
            row_offsets.len() - 1 < VertexId::MAX as usize,
            "vertex count exceeds VertexId range"
        );
        assert!(col_indices.len() < EdgeId::MAX as usize, "edge count exceeds EdgeId range");
        assert_eq!(row_offsets[0], 0);
        assert_eq!(row_offsets.last().copied().unwrap_or(0) as usize, col_indices.len());
        debug_assert!(row_offsets.windows(2).all(|w| w[0] <= w[1]));
        if let Some(v) = &edge_values {
            assert_eq!(v.len(), col_indices.len());
        }
        Csr {
            row_offsets: row_offsets.into_boxed_slice(),
            col_indices: col_indices.into_boxed_slice(),
            edge_values: edge_values.map(Vec::into_boxed_slice),
        }
    }

    /// Builds a CSR from raw arrays loaded from an *untrusted* source,
    /// validating every invariant instead of asserting. See
    /// [`Csr::validate`] for the checks performed.
    pub fn try_from_raw(
        row_offsets: Vec<EdgeId>,
        col_indices: Vec<VertexId>,
        edge_values: Option<Vec<Weight>>,
    ) -> GraphResult<Self> {
        let csr = Csr {
            row_offsets: row_offsets.into_boxed_slice(),
            col_indices: col_indices.into_boxed_slice(),
            edge_values: edge_values.map(Vec::into_boxed_slice),
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Checks every structural invariant, returning the first violation:
    /// a non-empty offsets array starting at 0, monotone non-decreasing
    /// offsets ending at `col_indices.len()`, every column index in
    /// `[0, num_vertices)`, and a weight array (when present) exactly as
    /// long as the column array. Run this on anything loaded from an
    /// untrusted source before handing it to the operators, which index
    /// with these arrays unchecked on hot paths.
    pub fn validate(&self) -> GraphResult<()> {
        if self.row_offsets.is_empty() {
            return Err(GraphError::invalid("row_offsets is empty"));
        }
        if self.row_offsets[0] != 0 {
            return Err(GraphError::invalid(format!(
                "row_offsets[0] = {}, expected 0",
                self.row_offsets[0]
            )));
        }
        let n = self.row_offsets.len() - 1;
        // `>=`, not `>`: u32::MAX is reserved as an operator sentinel
        // (INVALID_SLOT / EMPTY_SLOT), so ids must stay strictly below it.
        if n >= VertexId::MAX as usize {
            return Err(GraphError::invalid(format!("{n} vertices exceed the VertexId range")));
        }
        if self.col_indices.len() >= EdgeId::MAX as usize {
            return Err(GraphError::invalid(format!(
                "{} edges exceed the EdgeId range",
                self.col_indices.len()
            )));
        }
        if let Some(w) = self.row_offsets.windows(2).position(|w| w[0] > w[1]) {
            return Err(GraphError::invalid(format!(
                "row_offsets not monotone at vertex {w}: {} > {}",
                self.row_offsets[w],
                self.row_offsets[w + 1]
            )));
        }
        let m = self.col_indices.len();
        let end = self.row_offsets.last().copied().unwrap_or(0);
        if end as usize != m {
            return Err(GraphError::invalid(format!(
                "row_offsets end at {end} but there are {m} edges"
            )));
        }
        if let Some(e) = self.col_indices.iter().position(|&c| c as usize >= n) {
            return Err(GraphError::invalid(format!(
                "edge {e} points at vertex {} of {n}",
                self.col_indices[e]
            )));
        }
        if let Some(vals) = &self.edge_values {
            if vals.len() != m {
                return Err(GraphError::invalid(format!(
                    "{} edge weights for {m} edges",
                    vals.len()
                )));
            }
        }
        Ok(())
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.row_offsets.len() - 1
    }

    /// Number of (directed) edges. An undirected graph stores each edge in
    /// both directions, so this counts 2x the undirected edge count.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.col_indices.len()
    }

    /// The row-offsets array `R` (length `num_vertices() + 1`).
    #[inline]
    pub fn row_offsets(&self) -> &[EdgeId] {
        &self.row_offsets
    }

    /// The column-indices array `C` (length `num_edges()`).
    #[inline]
    pub fn col_indices(&self) -> &[VertexId] {
        &self.col_indices
    }

    /// Per-edge weights, if the graph is weighted.
    #[inline]
    pub fn edge_values(&self) -> Option<&[Weight]> {
        self.edge_values.as_deref()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u32 {
        self.row_offsets[v as usize + 1] - self.row_offsets[v as usize]
    }

    /// Range of edge ids owned by `v`.
    #[inline]
    pub fn edge_range(&self, v: VertexId) -> std::ops::Range<usize> {
        self.row_offsets[v as usize] as usize..self.row_offsets[v as usize + 1] as usize
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.col_indices[self.edge_range(v)]
    }

    /// Destination of edge `e`.
    #[inline]
    pub fn edge_dest(&self, e: EdgeId) -> VertexId {
        self.col_indices[e as usize]
    }

    /// Weight of edge `e`; 1 for unweighted graphs (BFS-as-SSSP semantics).
    #[inline]
    pub fn weight(&self, e: EdgeId) -> Weight {
        match &self.edge_values {
            Some(v) => v[e as usize],
            None => 1,
        }
    }

    /// Finds the source vertex owning edge id `e` by binary search over the
    /// row offsets (the paper's "sorted search" used by the load-balanced
    /// advance).
    pub fn edge_source(&self, e: EdgeId) -> VertexId {
        debug_assert!((e as usize) < self.num_edges());
        // partition_point returns the first vertex whose offset exceeds e;
        // its predecessor owns the edge.
        let idx = self.row_offsets.partition_point(|&off| off <= e);
        (idx - 1) as VertexId
    }

    /// Builds the transpose (CSC view as a CSR of the reversed graph).
    /// Weights follow their edges.
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let m = self.num_edges();
        let mut offsets = vec![0 as EdgeId; n + 1];
        for &d in self.col_indices.iter() {
            offsets[d as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<EdgeId> = offsets[..n].to_vec();
        let mut cols = vec![0 as VertexId; m];
        let mut vals = self.edge_values.as_ref().map(|_| vec![0 as Weight; m]);
        for s in 0..n as VertexId {
            for e in self.edge_range(s) {
                let d = self.col_indices[e] as usize;
                let pos = cursor[d] as usize;
                cursor[d] += 1;
                cols[pos] = s;
                if let (Some(v), Some(w)) = (&mut vals, &self.edge_values) {
                    v[pos] = w[e];
                }
            }
        }
        Csr {
            row_offsets: offsets.into_boxed_slice(),
            col_indices: cols.into_boxed_slice(),
            edge_values: vals.map(Vec::into_boxed_slice),
        }
    }

    /// True if for every edge `(u, v)` the edge `(v, u)` also exists
    /// (ignoring weights). Quadratic in max degree; intended for tests and
    /// dataset validation.
    pub fn is_symmetric(&self) -> bool {
        for u in 0..self.num_vertices() as VertexId {
            for &v in self.neighbors(u) {
                if !self.neighbors(v).contains(&u) {
                    return false;
                }
            }
        }
        true
    }

    /// Converts back to an edge list.
    pub fn to_coo(&self) -> Coo {
        let mut coo = Coo::new(self.num_vertices());
        coo.src.reserve(self.num_edges());
        coo.dst.reserve(self.num_edges());
        if self.edge_values.is_some() {
            coo.weights = Some(Vec::with_capacity(self.num_edges()));
        }
        for s in 0..self.num_vertices() as VertexId {
            for e in self.edge_range(s) {
                coo.src.push(s);
                coo.dst.push(self.col_indices[e]);
                if let (Some(w), Some(v)) = (&mut coo.weights, &self.edge_values) {
                    w.push(v[e]);
                }
            }
        }
        coo
    }

    /// Maximum out-degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> u32 {
        (0..self.num_vertices() as VertexId).map(|v| self.out_degree(v)).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1, 2; 1 -> 2; 2 -> 0; 3 isolated
        Csr::from_coo(&Coo::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 0)]))
    }

    #[test]
    fn basic_shape() {
        let g = sample();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.out_degree(3), 0);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn edge_source_binary_search() {
        let g = sample();
        assert_eq!(g.edge_source(0), 0);
        assert_eq!(g.edge_source(1), 0);
        assert_eq!(g.edge_source(2), 1);
        assert_eq!(g.edge_source(3), 2);
    }

    #[test]
    fn edge_source_skips_isolated_vertices() {
        let g = Csr::from_coo(&Coo::from_edges(5, &[(0, 1), (4, 0)]));
        assert_eq!(g.edge_source(0), 0);
        assert_eq!(g.edge_source(1), 4);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = sample();
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[2]);
        assert_eq!(t.neighbors(3), &[] as &[VertexId]);
        // double transpose round-trips
        let tt = t.transpose();
        assert_eq!(tt.row_offsets(), g.row_offsets());
        assert_eq!(tt.col_indices(), g.col_indices());
    }

    #[test]
    fn transpose_carries_weights() {
        let coo = Coo::from_weighted_edges(3, &[(0, 1, 10), (1, 2, 20)]);
        let g = Csr::from_coo(&coo);
        let t = g.transpose();
        assert_eq!(t.weight(0), 10); // edge 1 -> 0 in transpose
        assert_eq!(t.weight(1), 20);
    }

    #[test]
    fn symmetric_detection() {
        let mut coo = Coo::from_edges(3, &[(0, 1), (1, 2)]);
        let g = Csr::from_coo(&coo);
        assert!(!g.is_symmetric());
        coo.symmetrize();
        assert!(Csr::from_coo(&coo).is_symmetric());
    }

    #[test]
    fn unweighted_weight_defaults_to_one() {
        let g = sample();
        assert_eq!(g.weight(0), 1);
    }

    #[test]
    fn coo_round_trip() {
        let g = sample();
        let back = Csr::from_coo(&g.to_coo());
        assert_eq!(back.row_offsets(), g.row_offsets());
        assert_eq!(back.col_indices(), g.col_indices());
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_coo(&Coo::new(0));
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    #[should_panic]
    fn from_raw_rejects_mismatched_lengths() {
        Csr::from_raw(vec![0, 2], vec![1], None);
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(sample().validate().is_ok());
        assert!(Csr::from_coo(&Coo::new(0)).validate().is_ok());
    }

    #[test]
    fn try_from_raw_rejects_each_invariant_violation() {
        // non-monotone offsets
        let e = Csr::try_from_raw(vec![0, 2, 1, 3], vec![0, 1, 2], None).unwrap_err();
        assert!(e.to_string().contains("monotone"), "{e}");
        // offsets end short of the edge array
        let e = Csr::try_from_raw(vec![0, 1], vec![0, 0], None).unwrap_err();
        assert!(e.to_string().contains("edges"), "{e}");
        // column index out of range
        let e = Csr::try_from_raw(vec![0, 1], vec![7], None).unwrap_err();
        assert!(e.to_string().contains("points at vertex 7"), "{e}");
        // weight array length mismatch
        let e = Csr::try_from_raw(vec![0, 1], vec![0], Some(vec![1, 2])).unwrap_err();
        assert!(e.to_string().contains("weights"), "{e}");
        // nonzero first offset
        let e = Csr::try_from_raw(vec![1, 1], vec![0], None).unwrap_err();
        assert!(e.to_string().contains("expected 0"), "{e}");
        // empty offsets
        assert!(Csr::try_from_raw(vec![], vec![], None).is_err());
    }
}
