//! Fundamental identifier types shared across the workspace.
//!
//! Vertex and edge identifiers are 32-bit, following the paper's graphs
//! (up to 2^21 vertices / 182M edges) and the general HPC guidance that
//! narrower indices reduce memory traffic on bandwidth-bound kernels.

/// Identifier of a vertex. Valid vertices are `0..num_vertices`.
pub type VertexId = u32;

/// Identifier of an edge: an index into the CSR column/value arrays.
pub type EdgeId = u32;

/// Sentinel for "no vertex" (unreached predecessor, unset label, ...).
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// Sentinel for "no edge".
pub const INVALID_EDGE: EdgeId = EdgeId::MAX;

/// Sentinel distance/label meaning "unvisited / infinity" for u32-valued
/// labels (BFS depths, SSSP distances with integer weights).
pub const INFINITY: u32 = u32::MAX;

/// Edge weight type used by weighted primitives (SSSP). The paper assigns
/// random integer weights in `1..=64`.
pub type Weight = u32;

/// A directed edge as a `(source, destination)` pair.
pub type Edge = (VertexId, VertexId);

/// A directed weighted edge.
pub type WeightedEdge = (VertexId, VertexId, Weight);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinels_are_max_values() {
        assert_eq!(INVALID_VERTEX, u32::MAX);
        assert_eq!(INVALID_EDGE, u32::MAX);
        assert_eq!(INFINITY, u32::MAX);
    }

    #[test]
    fn ids_are_word_sized_or_smaller() {
        assert!(std::mem::size_of::<VertexId>() <= std::mem::size_of::<usize>());
        assert_eq!(std::mem::size_of::<Edge>(), 8);
    }
}
