//! Graph I/O: whitespace edge lists (SNAP style), MatrixMarket coordinate
//! files, and a compact little-endian binary format for fast reloading of
//! generated benchmark graphs.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::types::{EdgeId, VertexId, Weight};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a SNAP-style edge list: one `src dst [weight]` triple per line,
/// `#`- or `%`-prefixed comment lines ignored. Vertex ids must be
/// non-negative integers.
pub fn read_edge_list<R: Read>(reader: R) -> io::Result<Coo> {
    let mut coo = Coo::new(0);
    let reader = BufReader::new(reader);
    let mut line = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            // honor the writer's "# vertices N ..." header so trailing
            // isolated vertices survive a round trip
            let mut words = t.trim_start_matches(['#', '%']).split_whitespace();
            if words.next() == Some("vertices") {
                if let Some(Ok(n)) = words.next().map(str::parse::<usize>) {
                    coo.num_vertices = coo.num_vertices.max(n);
                }
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> io::Result<u64> {
            s.ok_or_else(|| bad_line(lineno, &format!("missing {what}")))?
                .parse::<u64>()
                .map_err(|_| bad_line(lineno, &format!("invalid {what}")))
        };
        let s = parse(it.next(), "source")? as VertexId;
        let d = parse(it.next(), "destination")? as VertexId;
        match it.next() {
            Some(w) => {
                let w: Weight = w
                    .parse()
                    .map_err(|_| bad_line(lineno, "invalid weight"))?;
                coo.push_weighted(s, d, w);
            }
            None => {
                if coo.weights.is_some() {
                    return Err(bad_line(lineno, "missing weight on weighted edge list"));
                }
                coo.push(s, d);
            }
        }
    }
    Ok(coo)
}

fn bad_line(lineno: usize, msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("line {lineno}: {msg}"))
}

/// Writes a SNAP-style edge list (with weights if present).
pub fn write_edge_list<W: Write>(coo: &Coo, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", coo.num_vertices, coo.num_edges())?;
    for i in 0..coo.num_edges() {
        match &coo.weights {
            Some(ws) => writeln!(w, "{} {} {}", coo.src[i], coo.dst[i], ws[i])?,
            None => writeln!(w, "{} {}", coo.src[i], coo.dst[i])?,
        }
    }
    w.flush()
}

/// Parses a MatrixMarket coordinate file (`%%MatrixMarket matrix
/// coordinate ...`). 1-based indices are converted to 0-based. If the
/// header declares `symmetric`, the mirrored edges are materialized.
pub fn read_matrix_market<R: Read>(reader: R) -> io::Result<Coo> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let header = line.to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a MatrixMarket coordinate file",
        ));
    }
    let symmetric = header.contains("symmetric");
    let pattern = header.contains("pattern");
    // skip remaining comments; first non-comment line is the size line
    let (rows, cols, nnz) = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "missing size line"));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let mut next = |what: &str| -> io::Result<usize> {
            it.next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("size line missing {what}")))?
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("bad {what}")))
        };
        break (next("rows")?, next("cols")?, next("nnz")?);
    };
    let n = rows.max(cols);
    let mut coo = Coo::new(n);
    let mut read = 0usize;
    let mut lineno = 0usize;
    while read < nnz {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected {nnz} entries, found {read}"),
            ));
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let mut next_id = |what: &str| -> io::Result<VertexId> {
            let v: u64 = it
                .next()
                .ok_or_else(|| bad_line(lineno, &format!("missing {what}")))?
                .parse()
                .map_err(|_| bad_line(lineno, &format!("invalid {what}")))?;
            if v == 0 {
                return Err(bad_line(lineno, "MatrixMarket indices are 1-based"));
            }
            Ok((v - 1) as VertexId)
        };
        let r = next_id("row")?;
        let c = next_id("col")?;
        if pattern {
            coo.push(r, c);
            if symmetric && r != c {
                coo.push(c, r);
            }
        } else {
            // real/integer value: round to the nearest non-negative weight
            let v: f64 = it
                .next()
                .ok_or_else(|| bad_line(lineno, "missing value"))?
                .parse()
                .map_err(|_| bad_line(lineno, "invalid value"))?;
            let w = v.abs().round() as Weight;
            coo.push_weighted(r, c, w);
            if symmetric && r != c {
                coo.push_weighted(c, r, w);
            }
        }
        read += 1;
    }
    Ok(coo)
}

/// Parses a DIMACS shortest-path challenge file (`.gr`): `c` comment
/// lines, one `p sp <n> <m>` problem line, and `a <src> <dst> <weight>`
/// arc lines with 1-based vertex ids (the format the real roadNet
/// benchmark graphs ship in).
pub fn read_dimacs<R: Read>(reader: R) -> io::Result<Coo> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut coo: Option<Coo> = None;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        let mut it = t.split_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                if it.next() != Some("sp") {
                    return Err(bad_line(lineno, "expected 'p sp <n> <m>'"));
                }
                let n: usize = it
                    .next()
                    .ok_or_else(|| bad_line(lineno, "missing vertex count"))?
                    .parse()
                    .map_err(|_| bad_line(lineno, "bad vertex count"))?;
                coo = Some(Coo::new(n));
            }
            Some("a") => {
                let coo = coo
                    .as_mut()
                    .ok_or_else(|| bad_line(lineno, "arc before problem line"))?;
                let mut next_num = |what: &str| -> io::Result<u64> {
                    it.next()
                        .ok_or_else(|| bad_line(lineno, &format!("missing {what}")))?
                        .parse()
                        .map_err(|_| bad_line(lineno, &format!("bad {what}")))
                };
                let s = next_num("source")?;
                let d = next_num("destination")?;
                let w = next_num("weight")? as Weight;
                if s == 0 || d == 0 {
                    return Err(bad_line(lineno, "DIMACS ids are 1-based"));
                }
                coo.push_weighted((s - 1) as VertexId, (d - 1) as VertexId, w);
            }
            Some(other) => {
                return Err(bad_line(lineno, &format!("unknown record type {other:?}")))
            }
        }
    }
    coo.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing problem line"))
}

/// Writes a DIMACS `.gr` file (weight 1 for unweighted edge lists).
pub fn write_dimacs<W: Write>(coo: &Coo, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "c generated by gunrock-graph")?;
    writeln!(w, "p sp {} {}", coo.num_vertices, coo.num_edges())?;
    for i in 0..coo.num_edges() {
        let weight = coo.weights.as_ref().map(|ws| ws[i]).unwrap_or(1);
        writeln!(w, "a {} {} {}", coo.src[i] + 1, coo.dst[i] + 1, weight)?;
    }
    w.flush()
}

/// Writes a MatrixMarket coordinate file (general, integer weights or
/// pattern when unweighted), 1-based indices.
pub fn write_matrix_market<W: Write>(coo: &Coo, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let kind = if coo.weights.is_some() { "integer" } else { "pattern" };
    writeln!(w, "%%MatrixMarket matrix coordinate {kind} general")?;
    writeln!(w, "{} {} {}", coo.num_vertices, coo.num_vertices, coo.num_edges())?;
    for i in 0..coo.num_edges() {
        match &coo.weights {
            Some(ws) => writeln!(w, "{} {} {}", coo.src[i] + 1, coo.dst[i] + 1, ws[i])?,
            None => writeln!(w, "{} {}", coo.src[i] + 1, coo.dst[i] + 1)?,
        }
    }
    w.flush()
}

const BINARY_MAGIC: &[u8; 8] = b"GNRKCSR1";

/// Serializes a CSR to the compact binary format (little-endian u32/u64
/// arrays; magic `GNRKCSR1`).
pub fn write_csr_binary<W: Write>(csr: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(csr.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(csr.num_edges() as u64).to_le_bytes())?;
    w.write_all(&[csr.edge_values().is_some() as u8])?;
    for &x in csr.row_offsets() {
        w.write_all(&x.to_le_bytes())?;
    }
    for &x in csr.col_indices() {
        w.write_all(&x.to_le_bytes())?;
    }
    if let Some(vals) = csr.edge_values() {
        for &x in vals {
            w.write_all(&x.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Deserializes a CSR written by [`write_csr_binary`].
pub fn read_csr_binary<R: Read>(reader: R) -> io::Result<Csr> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf)?;
    let n = u64::from_le_bytes(u64buf) as usize;
    r.read_exact(&mut u64buf)?;
    let m = u64::from_le_bytes(u64buf) as usize;
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag)?;
    let read_u32s = |r: &mut BufReader<R>, len: usize| -> io::Result<Vec<u32>> {
        let mut bytes = vec![0u8; len * 4];
        r.read_exact(&mut bytes)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    };
    let offsets: Vec<EdgeId> = read_u32s(&mut r, n + 1)?;
    let cols: Vec<VertexId> = read_u32s(&mut r, m)?;
    let vals = if flag[0] != 0 { Some(read_u32s(&mut r, m)?) } else { None };
    Ok(Csr::from_raw(offsets, cols, vals))
}

/// Convenience: load a graph from a path, dispatching on extension
/// (`.mtx` -> MatrixMarket, `.bin` -> binary CSR, anything else -> edge
/// list). Returns a CSR built with default (undirected) options for text
/// formats.
pub fn load_graph(path: &Path) -> io::Result<Csr> {
    let file = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => read_csr_binary(file),
        Some("gr") => {
            let coo = read_dimacs(file)?;
            Ok(crate::builder::GraphBuilder::new().build(coo))
        }
        Some("mtx") => {
            let coo = read_matrix_market(file)?;
            Ok(crate::builder::GraphBuilder::new().build(coo))
        }
        _ => {
            let coo = read_edge_list(file)?;
            Ok(crate::builder::GraphBuilder::new().build(coo))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::rmat;

    #[test]
    fn edge_list_round_trip() {
        let mut coo = Coo::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let mut buf = Vec::new();
        write_edge_list(&coo, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.src, coo.src);
        assert_eq!(back.dst, coo.dst);
        // weighted round trip
        coo.randomize_weights(1, 64, 1);
        buf.clear();
        write_edge_list(&coo, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.weights, coo.weights);
    }

    #[test]
    fn edge_list_ignores_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n% another\n1 2\n";
        let coo = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(coo.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_general_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% c\n3 3 2\n1 2\n3 1\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.num_vertices, 3);
        assert_eq!(coo.edges().collect::<Vec<_>>(), vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn matrix_market_symmetric_mirrors_edges() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 3.0\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.num_edges(), 2);
        assert_eq!(coo.weights.as_ref().unwrap(), &[3, 3]);
    }

    #[test]
    fn matrix_market_rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn dimacs_round_trip() {
        let coo = Coo::from_weighted_edges(4, &[(0, 1, 5), (2, 3, 9), (1, 2, 1)]);
        let mut buf = Vec::new();
        write_dimacs(&coo, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(back.num_vertices, 4);
        assert_eq!(back.src, coo.src);
        assert_eq!(back.dst, coo.dst);
        assert_eq!(back.weights, coo.weights);
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(read_dimacs("a 1 2 3\n".as_bytes()).is_err()); // arc before p
        assert!(read_dimacs("p tw 3 1\n".as_bytes()).is_err()); // wrong kind
        assert!(read_dimacs("p sp 3 1\na 0 2 1\n".as_bytes()).is_err()); // 0-based
        assert!(read_dimacs("x\n".as_bytes()).is_err()); // unknown record
    }

    #[test]
    fn matrix_market_writer_round_trips_through_reader() {
        for weighted in [false, true] {
            let mut coo = Coo::from_edges(5, &[(0, 1), (3, 4), (2, 2)]);
            if weighted {
                coo.randomize_weights(1, 9, 3);
            }
            let mut buf = Vec::new();
            write_matrix_market(&coo, &mut buf).unwrap();
            let back = read_matrix_market(&buf[..]).unwrap();
            assert_eq!(back.num_vertices, 5);
            assert_eq!(back.src, coo.src);
            assert_eq!(back.dst, coo.dst);
            assert_eq!(back.weights, coo.weights);
        }
    }

    #[test]
    fn binary_round_trip_weighted_and_unweighted() {
        for weighted in [false, true] {
            let mut coo = rmat(6, 8, Default::default(), 3);
            if weighted {
                coo.randomize_weights(1, 64, 9);
            }
            let g = GraphBuilder::new().build(coo);
            let mut buf = Vec::new();
            write_csr_binary(&g, &mut buf).unwrap();
            let back = read_csr_binary(&buf[..]).unwrap();
            assert_eq!(back.row_offsets(), g.row_offsets());
            assert_eq!(back.col_indices(), g.col_indices());
            assert_eq!(back.edge_values(), g.edge_values());
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_csr_binary(&b"NOTMAGIC........"[..]).is_err());
    }
}
