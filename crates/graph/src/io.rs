//! Graph I/O: whitespace edge lists (SNAP style), MatrixMarket coordinate
//! files, DIMACS `.gr` files, and a compact little-endian binary format
//! for fast reloading of generated benchmark graphs.
//!
//! All readers treat their input as **untrusted**: they return
//! [`GraphResult`] with line-numbered [`GraphError`]s instead of
//! panicking or silently truncating, bound every allocation against the
//! input size where it is known, and validate the resulting structure
//! ([`Csr::validate`] / [`Coo::validate`]) before returning it. Writers
//! keep plain [`io::Result`] — their input is an in-memory graph the
//! process already owns.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::error::{GraphError, GraphResult};
use crate::types::{EdgeId, VertexId, Weight};
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A simulated read failure the loader fault hook can request: the
/// stream is truncated after `at` bytes, or one byte is flipped. Both
/// surface as typed [`GraphError`]s through the loaders' existing
/// validation (truncation diagnosis, checksum mismatch, parse errors) —
/// the injection proves those paths fire, it does not add new ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// End the stream after `at` bytes, as if the file were cut short.
    Truncate {
        /// Byte count after which reads report EOF.
        at: u64,
    },
    /// XOR the byte at offset `at` with `mask` (pass a non-zero mask).
    Corrupt {
        /// Byte offset to corrupt.
        at: u64,
        /// XOR mask applied to that byte.
        mask: u8,
    },
}

/// Decides whether (and how) to fault one load. Receives the path being
/// loaded and the input length in bytes; returns `None` to read cleanly.
pub type ReadFaultHook = dyn Fn(&str, u64) -> Option<IoFault> + Send + Sync;

/// Fast-path flag for [`read_fault`]: one relaxed load when no hook is
/// installed.
static READ_FAULT_INSTALLED: AtomicBool = AtomicBool::new(false);
static READ_FAULT_HOOK: Mutex<Option<Arc<ReadFaultHook>>> = Mutex::new(None);

/// Installs (with `Some`) or removes (with `None`) a process-wide fault
/// hook consulted by [`load_graph`] before reading a file. Used by the
/// fault-injection harness (`--inject-faults io=R`) to simulate
/// truncated and corrupted datasets deterministically.
pub fn set_read_fault_hook(hook: Option<Arc<ReadFaultHook>>) {
    // ORDERING: Release — publishes the hook slot (filled under the mutex
    // below) before readers can observe the installed flag.
    READ_FAULT_INSTALLED.store(hook.is_some(), Ordering::Release);
    match READ_FAULT_HOOK.lock() {
        Ok(mut slot) => *slot = hook,
        Err(poisoned) => *poisoned.into_inner() = hook,
    }
}

/// Consults the installed fault hook, if any.
fn read_fault(path: &str, len: u64) -> Option<IoFault> {
    // ORDERING: Acquire — pairs with the Release store in set_read_fault_hook
    // so the fast-path flag never races ahead of the hook slot.
    if !READ_FAULT_INSTALLED.load(Ordering::Acquire) {
        return None;
    }
    let hook = match READ_FAULT_HOOK.lock() {
        Ok(slot) => slot.clone(),
        Err(poisoned) => poisoned.into_inner().clone(),
    };
    hook.and_then(|h| h(path, len))
}

/// A reader that applies one [`IoFault`] to the wrapped stream.
struct FaultyReader<R: Read> {
    inner: R,
    fault: IoFault,
    pos: u64,
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.fault {
            IoFault::Truncate { at } => {
                let remaining = at.saturating_sub(self.pos);
                if remaining == 0 {
                    return Ok(0);
                }
                let take = buf.len().min(remaining.min(usize::MAX as u64) as usize);
                let n = self.inner.read(&mut buf[..take])?;
                self.pos += n as u64;
                Ok(n)
            }
            IoFault::Corrupt { at, mask } => {
                let n = self.inner.read(buf)?;
                if at >= self.pos && at < self.pos + n as u64 {
                    buf[(at - self.pos) as usize] ^= mask;
                }
                self.pos += n as u64;
                Ok(n)
            }
        }
    }
}

/// Largest admissible vertex id: `VertexId::MAX` itself is reserved for
/// the `INVALID_VERTEX` / `INFINITY` sentinels used by the operators.
const MAX_VERTEX_ID: u64 = VertexId::MAX as u64 - 1;

/// Converts a parsed id to `VertexId`, rejecting (rather than wrapping)
/// anything outside the representable range.
fn checked_id(v: u64, lineno: usize) -> GraphResult<VertexId> {
    if v > MAX_VERTEX_ID {
        return Err(GraphError::VertexOutOfRange { line: lineno, id: v, max: MAX_VERTEX_ID });
    }
    Ok(v as VertexId)
}

/// Parses a SNAP-style edge list: one `src dst [weight]` triple per line,
/// `#`- or `%`-prefixed comment lines ignored. Vertex ids must be
/// non-negative integers within the `VertexId` range; weighted and
/// unweighted lines must not be mixed.
pub fn read_edge_list<R: Read>(reader: R) -> GraphResult<Coo> {
    let mut coo = Coo::new(0);
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            // honor the writer's "# vertices N ..." header so trailing
            // isolated vertices survive a round trip
            let mut words = t.trim_start_matches(['#', '%']).split_whitespace();
            if words.next() == Some("vertices") {
                if let Some(Ok(n)) = words.next().map(str::parse::<u64>) {
                    if n > MAX_VERTEX_ID + 1 {
                        return Err(GraphError::parse(
                            lineno,
                            format!("declared vertex count {n} exceeds the VertexId range"),
                        ));
                    }
                    coo.num_vertices = coo.num_vertices.max(n as usize);
                }
            }
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>, what: &str| -> GraphResult<u64> {
            s.ok_or_else(|| GraphError::parse(lineno, format!("missing {what}")))?
                .parse::<u64>()
                .map_err(|_| GraphError::parse(lineno, format!("invalid {what}")))
        };
        let s = checked_id(parse(it.next(), "source")?, lineno)?;
        let d = checked_id(parse(it.next(), "destination")?, lineno)?;
        match it.next() {
            Some(w) => {
                if coo.weights.is_none() && coo.num_edges() > 0 {
                    return Err(GraphError::parse(
                        lineno,
                        "unexpected weight on unweighted edge list",
                    ));
                }
                let w: Weight =
                    w.parse().map_err(|_| GraphError::parse(lineno, "invalid weight"))?;
                coo.push_weighted(s, d, w);
            }
            None => {
                if coo.weights.is_some() {
                    return Err(GraphError::parse(
                        lineno,
                        "missing weight on weighted edge list",
                    ));
                }
                coo.push(s, d);
            }
        }
    }
    coo.validate()?;
    Ok(coo)
}

/// Writes a SNAP-style edge list (with weights if present).
pub fn write_edge_list<W: Write>(coo: &Coo, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# vertices {} edges {}", coo.num_vertices, coo.num_edges())?;
    for i in 0..coo.num_edges() {
        match &coo.weights {
            Some(ws) => writeln!(w, "{} {} {}", coo.src[i], coo.dst[i], ws[i])?,
            None => writeln!(w, "{} {}", coo.src[i], coo.dst[i])?,
        }
    }
    w.flush()
}

/// Parses a MatrixMarket coordinate file (`%%MatrixMarket matrix
/// coordinate ...`). 1-based indices are converted to 0-based. If the
/// header declares `symmetric`, the mirrored edges are materialized.
///
/// When the total input size is unknown, truncated bodies still fail
/// with a typed error at end of input; use [`read_matrix_market_sized`]
/// to additionally reject size lines whose `nnz` cannot possibly fit in
/// the input before reading the body.
pub fn read_matrix_market<R: Read>(reader: R) -> GraphResult<Coo> {
    read_matrix_market_sized(reader, None)
}

/// [`read_matrix_market`] with a known total input size in bytes, which
/// bounds the declared `nnz` (each entry takes at least 4 bytes: two
/// 1-digit ids, a separator, a newline) before anything is read or
/// reserved — a lying size line fails fast instead of spinning through a
/// huge claimed entry count.
pub fn read_matrix_market_sized<R: Read>(
    reader: R,
    input_len: Option<u64>,
) -> GraphResult<Coo> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let header = line.to_ascii_lowercase();
    if !header.starts_with("%%matrixmarket matrix coordinate") {
        return Err(GraphError::header("not a MatrixMarket coordinate file"));
    }
    let symmetric = header.contains("symmetric");
    let pattern = header.contains("pattern");
    // skip remaining comments; first non-comment line is the size line
    let (rows, cols, nnz) = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(GraphError::header("missing size line"));
        }
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let mut next = |what: &str| -> GraphResult<u64> {
            it.next()
                .ok_or_else(|| GraphError::header(format!("size line missing {what}")))?
                .parse()
                .map_err(|_| GraphError::header(format!("bad {what}")))
        };
        break (next("rows")?, next("cols")?, next("nnz")?);
    };
    if rows > MAX_VERTEX_ID + 1 || cols > MAX_VERTEX_ID + 1 {
        return Err(GraphError::header(format!(
            "matrix dimensions {rows}x{cols} exceed the VertexId range"
        )));
    }
    if let Some(len) = input_len {
        // every entry line needs >= 4 bytes; a claimed nnz beyond that is
        // a lie regardless of body content
        if nnz > len / 4 + 1 {
            return Err(GraphError::header(format!(
                "size line claims {nnz} entries but the {len}-byte input \
                 can hold at most {}",
                len / 4 + 1
            )));
        }
    }
    let nnz = usize::try_from(nnz)
        .map_err(|_| GraphError::header(format!("entry count {nnz} exceeds memory")))?;
    let n = rows.max(cols) as usize;
    let mut coo = Coo::new(n);
    // reserve only when the claim is backed by the input size; otherwise
    // let the vectors grow as entries actually parse
    if input_len.is_some() {
        coo.src.reserve(nnz);
        coo.dst.reserve(nnz);
    }
    let mut read = 0usize;
    let mut lineno = 0usize;
    while read < nnz {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(GraphError::corrupt(format!("expected {nnz} entries, found {read}")));
        }
        lineno += 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let mut next_id = |what: &str| -> GraphResult<VertexId> {
            let v: u64 = it
                .next()
                .ok_or_else(|| GraphError::parse(lineno, format!("missing {what}")))?
                .parse()
                .map_err(|_| GraphError::parse(lineno, format!("invalid {what}")))?;
            if v == 0 {
                return Err(GraphError::parse(lineno, "MatrixMarket indices are 1-based"));
            }
            let id = checked_id(v - 1, lineno)?;
            if id as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    line: lineno,
                    id: v,
                    max: n as u64,
                });
            }
            Ok(id)
        };
        let r = next_id("row")?;
        let c = next_id("col")?;
        if pattern {
            coo.push(r, c);
            if symmetric && r != c {
                coo.push(c, r);
            }
        } else {
            // real/integer value: round to the nearest non-negative weight
            let v: f64 = it
                .next()
                .ok_or_else(|| GraphError::parse(lineno, "missing value"))?
                .parse()
                .map_err(|_| GraphError::parse(lineno, "invalid value"))?;
            let w = v.abs().round() as Weight;
            coo.push_weighted(r, c, w);
            if symmetric && r != c {
                coo.push_weighted(c, r, w);
            }
        }
        read += 1;
    }
    coo.validate()?;
    Ok(coo)
}

/// Parses a DIMACS shortest-path challenge file (`.gr`): `c` comment
/// lines, one `p sp <n> <m>` problem line, and `a <src> <dst> <weight>`
/// arc lines with 1-based vertex ids in `[1, n]` (the format the real
/// roadNet benchmark graphs ship in).
pub fn read_dimacs<R: Read>(reader: R) -> GraphResult<Coo> {
    let mut reader = BufReader::new(reader);
    let mut line = String::new();
    let mut coo: Option<Coo> = None;
    let mut lineno = 0usize;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        lineno += 1;
        let t = line.trim();
        let mut it = t.split_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                if it.next() != Some("sp") {
                    return Err(GraphError::parse(lineno, "expected 'p sp <n> <m>'"));
                }
                let n: u64 = it
                    .next()
                    .ok_or_else(|| GraphError::parse(lineno, "missing vertex count"))?
                    .parse()
                    .map_err(|_| GraphError::parse(lineno, "bad vertex count"))?;
                if n > MAX_VERTEX_ID + 1 {
                    return Err(GraphError::parse(
                        lineno,
                        format!("vertex count {n} exceeds the VertexId range"),
                    ));
                }
                coo = Some(Coo::new(n as usize));
            }
            Some("a") => {
                let coo = coo
                    .as_mut()
                    .ok_or_else(|| GraphError::parse(lineno, "arc before problem line"))?;
                let mut next_num = |what: &str| -> GraphResult<u64> {
                    it.next()
                        .ok_or_else(|| GraphError::parse(lineno, format!("missing {what}")))?
                        .parse()
                        .map_err(|_| GraphError::parse(lineno, format!("bad {what}")))
                };
                let s = next_num("source")?;
                let d = next_num("destination")?;
                let w = next_num("weight")? as Weight;
                if s == 0 || d == 0 {
                    return Err(GraphError::parse(lineno, "DIMACS ids are 1-based"));
                }
                let n = coo.num_vertices as u64;
                if s > n || d > n {
                    return Err(GraphError::VertexOutOfRange {
                        line: lineno,
                        id: s.max(d),
                        max: n,
                    });
                }
                coo.push_weighted(checked_id(s - 1, lineno)?, checked_id(d - 1, lineno)?, w);
            }
            Some(other) => {
                return Err(GraphError::parse(lineno, format!("unknown record type {other:?}")))
            }
        }
    }
    let coo = coo.ok_or_else(|| GraphError::header("missing problem line"))?;
    coo.validate()?;
    Ok(coo)
}

/// Writes a DIMACS `.gr` file (weight 1 for unweighted edge lists).
pub fn write_dimacs<W: Write>(coo: &Coo, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "c generated by gunrock-graph")?;
    writeln!(w, "p sp {} {}", coo.num_vertices, coo.num_edges())?;
    for i in 0..coo.num_edges() {
        let weight = coo.weights.as_ref().map(|ws| ws[i]).unwrap_or(1);
        writeln!(w, "a {} {} {}", coo.src[i] + 1, coo.dst[i] + 1, weight)?;
    }
    w.flush()
}

/// Writes a MatrixMarket coordinate file (general, integer weights or
/// pattern when unweighted), 1-based indices.
pub fn write_matrix_market<W: Write>(coo: &Coo, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let kind = if coo.weights.is_some() { "integer" } else { "pattern" };
    writeln!(w, "%%MatrixMarket matrix coordinate {kind} general")?;
    writeln!(w, "{} {} {}", coo.num_vertices, coo.num_vertices, coo.num_edges())?;
    for i in 0..coo.num_edges() {
        match &coo.weights {
            Some(ws) => writeln!(w, "{} {} {}", coo.src[i] + 1, coo.dst[i] + 1, ws[i])?,
            None => writeln!(w, "{} {}", coo.src[i] + 1, coo.dst[i] + 1)?,
        }
    }
    w.flush()
}

/// Legacy binary magic: no trailing checksum.
const BINARY_MAGIC_V1: &[u8; 8] = b"GNRKCSR1";
/// Current binary magic: payload followed by a 64-bit FNV-1a checksum.
const BINARY_MAGIC_V2: &[u8; 8] = b"GNRKCSR2";
/// Chunk size for reading header-declared arrays: a lying header fails
/// on EOF after at most one chunk of over-allocation.
const BINARY_READ_CHUNK: usize = 16 << 20;

/// Incremental 64-bit FNV-1a, used as the binary format's integrity
/// checksum (detects truncation and bit rot, not adversarial tampering).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Serializes a CSR to the compact binary format: magic `GNRKCSR2`,
/// little-endian `u64` vertex/edge counts, a weights flag byte, the
/// `u32` offset/column/weight arrays, and a trailing 64-bit FNV-1a
/// checksum over everything after the magic.
pub fn write_csr_binary<W: Write>(csr: &Csr, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let mut hash = Fnv1a::new();
    let mut emit = |w: &mut BufWriter<W>, bytes: &[u8]| -> io::Result<()> {
        hash.update(bytes);
        w.write_all(bytes)
    };
    w.write_all(BINARY_MAGIC_V2)?;
    emit(&mut w, &(csr.num_vertices() as u64).to_le_bytes())?;
    emit(&mut w, &(csr.num_edges() as u64).to_le_bytes())?;
    emit(&mut w, &[csr.edge_values().is_some() as u8])?;
    for &x in csr.row_offsets() {
        emit(&mut w, &x.to_le_bytes())?;
    }
    for &x in csr.col_indices() {
        emit(&mut w, &x.to_le_bytes())?;
    }
    if let Some(vals) = csr.edge_values() {
        for &x in vals {
            emit(&mut w, &x.to_le_bytes())?;
        }
    }
    w.write_all(&hash.finish().to_le_bytes())?;
    w.flush()
}

/// Deserializes a CSR written by [`write_csr_binary`]. Accepts both the
/// current `GNRKCSR2` format (whose trailing checksum is verified) and
/// the legacy `GNRKCSR1` format (no checksum). Either way the decoded
/// structure must pass [`Csr::validate`].
///
/// When the total input size is unknown, header-declared array lengths
/// are still read in bounded chunks so a lying header fails on EOF
/// instead of allocating its claim up front; use
/// [`read_csr_binary_sized`] to reject impossible headers outright.
pub fn read_csr_binary<R: Read>(reader: R) -> GraphResult<Csr> {
    read_csr_binary_sized(reader, None)
}

/// [`read_csr_binary`] with a known total input size in bytes, which is
/// checked against the header's vertex/edge counts **before** any array
/// is allocated.
pub fn read_csr_binary_sized<R: Read>(reader: R, input_len: Option<u64>) -> GraphResult<Csr> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic).map_err(map_truncation)?;
    let checksummed = match &magic {
        m if m == BINARY_MAGIC_V2 => true,
        m if m == BINARY_MAGIC_V1 => false,
        _ => return Err(GraphError::header("bad magic (not a gunrock binary CSR)")),
    };
    let mut hash = Fnv1a::new();
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u64buf).map_err(map_truncation)?;
    hash.update(&u64buf);
    let n = u64::from_le_bytes(u64buf);
    r.read_exact(&mut u64buf).map_err(map_truncation)?;
    hash.update(&u64buf);
    let m = u64::from_le_bytes(u64buf);
    let mut flag = [0u8; 1];
    r.read_exact(&mut flag).map_err(map_truncation)?;
    hash.update(&flag);
    if flag[0] > 1 {
        return Err(GraphError::header(format!("bad weights flag {}", flag[0])));
    }
    let weighted = flag[0] == 1;
    if n > MAX_VERTEX_ID + 1 {
        return Err(GraphError::header(format!("vertex count {n} exceeds the VertexId range")));
    }
    if m > EdgeId::MAX as u64 {
        return Err(GraphError::header(format!("edge count {m} exceeds the EdgeId range")));
    }
    // full payload size implied by the header, checked against the real
    // input size before any allocation happens
    let arrays = (n + 1)
        .checked_add(m.checked_mul(1 + weighted as u64).ok_or_else(|| {
            GraphError::header(format!("edge count {m} overflows the payload size"))
        })?)
        .and_then(|words| words.checked_mul(4))
        .ok_or_else(|| {
            GraphError::header(format!("counts {n}/{m} overflow the payload size"))
        })?;
    if let Some(len) = input_len {
        let expected = 25 + arrays + if checksummed { 8 } else { 0 };
        if expected != len {
            return Err(GraphError::corrupt(format!(
                "header claims a {expected}-byte file but the input is {len} bytes"
            )));
        }
    }
    let mut read_u32s = |r: &mut BufReader<R>, len: usize| -> GraphResult<Vec<u32>> {
        // chunked so an unbacked header claim fails before its full
        // allocation, even when the input size is unknown
        let mut out = Vec::new();
        let mut remaining = len * 4;
        let mut chunk = vec![0u8; BINARY_READ_CHUNK.min(remaining)];
        while remaining > 0 {
            let take = BINARY_READ_CHUNK.min(remaining);
            r.read_exact(&mut chunk[..take]).map_err(map_truncation)?;
            hash.update(&chunk[..take]);
            out.extend(
                chunk[..take]
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
            );
            remaining -= take;
        }
        Ok(out)
    };
    let offsets: Vec<EdgeId> = read_u32s(&mut r, n as usize + 1)?;
    let cols: Vec<VertexId> = read_u32s(&mut r, m as usize)?;
    let vals = if weighted { Some(read_u32s(&mut r, m as usize)?) } else { None };
    if checksummed {
        r.read_exact(&mut u64buf).map_err(map_truncation)?;
        let stored = u64::from_le_bytes(u64buf);
        let computed = hash.finish();
        if stored != computed {
            return Err(GraphError::corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            )));
        }
    }
    Csr::try_from_raw(offsets, cols, vals)
}

/// Maps an unexpected-EOF while decoding the binary format to a
/// truncation diagnosis; other I/O errors pass through.
fn map_truncation(e: io::Error) -> GraphError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        GraphError::corrupt("input ends before the header-declared payload")
    } else {
        GraphError::Io(e)
    }
}

/// Convenience: load a graph from a path, dispatching on extension
/// (`.mtx` -> MatrixMarket, `.gr` -> DIMACS, `.bin` -> binary CSR,
/// anything else -> edge list). The file size bounds header claims
/// before allocation, and the returned CSR has passed
/// [`Csr::validate`]. Text formats build with default (undirected)
/// options.
pub fn load_graph(path: &Path) -> GraphResult<Csr> {
    let file = std::fs::File::open(path)?;
    let len = file.metadata().ok().map(|m| m.len());
    match read_fault(&path.display().to_string(), len.unwrap_or(0)) {
        Some(fault) => {
            // a truncated file's metadata length is the truncated length
            let len = match fault {
                IoFault::Truncate { at } => len.map(|l| l.min(at)),
                IoFault::Corrupt { .. } => len,
            };
            load_graph_from(FaultyReader { inner: file, fault, pos: 0 }, path, len)
        }
        None => load_graph_from(file, path, len),
    }
}

/// Format dispatch shared by the clean and fault-injected load paths.
fn load_graph_from<R: Read>(reader: R, path: &Path, len: Option<u64>) -> GraphResult<Csr> {
    let csr = match path.extension().and_then(|e| e.to_str()) {
        Some("bin") => read_csr_binary_sized(reader, len)?,
        Some("gr") => {
            let coo = read_dimacs(reader)?;
            crate::builder::GraphBuilder::new().build(coo)
        }
        Some("mtx") => {
            let coo = read_matrix_market_sized(reader, len)?;
            crate::builder::GraphBuilder::new().build(coo)
        }
        _ => {
            let coo = read_edge_list(reader)?;
            crate::builder::GraphBuilder::new().build(coo)
        }
    };
    csr.validate()?;
    Ok(csr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::generators::rmat;

    #[test]
    fn edge_list_round_trip() {
        let mut coo = Coo::from_edges(4, &[(0, 1), (2, 3), (1, 2)]);
        let mut buf = Vec::new();
        write_edge_list(&coo, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.src, coo.src);
        assert_eq!(back.dst, coo.dst);
        // weighted round trip
        coo.randomize_weights(1, 64, 1);
        buf.clear();
        write_edge_list(&coo, &mut buf).unwrap();
        let back = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.weights, coo.weights);
    }

    #[test]
    fn edge_list_ignores_comments_and_blank_lines() {
        let text = "# comment\n\n0 1\n% another\n1 2\n";
        let coo = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(coo.num_edges(), 2);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        assert!(read_edge_list("0 x\n".as_bytes()).is_err());
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn edge_list_rejects_oversized_ids_with_line_number() {
        let text = format!("0 1\n1 {}\n", u64::MAX);
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::VertexOutOfRange { line, id, .. }) => {
                assert_eq!(line, 2);
                assert_eq!(id, u64::MAX);
            }
            other => panic!("expected VertexOutOfRange, got {other:?}"),
        }
        // u32::MAX itself is the INVALID_VERTEX sentinel, also rejected
        let text = format!("0 {}\n", u32::MAX);
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::VertexOutOfRange { line: 1, .. })
        ));
    }

    #[test]
    fn edge_list_rejects_mixed_weightedness() {
        // weighted then unweighted
        assert!(matches!(
            read_edge_list("0 1 5\n1 2\n".as_bytes()),
            Err(GraphError::Parse { line: 2, .. })
        ));
        // unweighted then weighted
        assert!(matches!(
            read_edge_list("0 1\n1 2 5\n".as_bytes()),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn matrix_market_general_pattern() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n% c\n3 3 2\n1 2\n3 1\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.num_vertices, 3);
        assert_eq!(coo.edges().collect::<Vec<_>>(), vec![(0, 1), (2, 0)]);
    }

    #[test]
    fn matrix_market_symmetric_mirrors_edges() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 3.0\n";
        let coo = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(coo.num_edges(), 2);
        assert_eq!(coo.weights.as_ref().unwrap(), &[3, 3]);
    }

    #[test]
    fn matrix_market_rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_truncated_body() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 5\n1 2\n";
        match read_matrix_market(text.as_bytes()) {
            Err(GraphError::Corrupt { msg }) => assert!(msg.contains("expected 5"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn matrix_market_sized_rejects_impossible_nnz() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 999999999\n1 2\n";
        let err =
            read_matrix_market_sized(text.as_bytes(), Some(text.len() as u64)).unwrap_err();
        assert!(matches!(err, GraphError::InvalidHeader { .. }), "{err:?}");
        // without the size hint the same input errors at EOF instead of
        // looping forever
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn matrix_market_rejects_index_beyond_declared_size() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 9\n";
        assert!(matches!(
            read_matrix_market(text.as_bytes()),
            Err(GraphError::VertexOutOfRange { line: 1, id: 9, .. })
        ));
    }

    #[test]
    fn dimacs_round_trip() {
        let coo = Coo::from_weighted_edges(4, &[(0, 1, 5), (2, 3, 9), (1, 2, 1)]);
        let mut buf = Vec::new();
        write_dimacs(&coo, &mut buf).unwrap();
        let back = read_dimacs(&buf[..]).unwrap();
        assert_eq!(back.num_vertices, 4);
        assert_eq!(back.src, coo.src);
        assert_eq!(back.dst, coo.dst);
        assert_eq!(back.weights, coo.weights);
    }

    #[test]
    fn dimacs_rejects_malformed_input() {
        assert!(read_dimacs("a 1 2 3\n".as_bytes()).is_err()); // arc before p
        assert!(read_dimacs("p tw 3 1\n".as_bytes()).is_err()); // wrong kind
        assert!(read_dimacs("p sp 3 1\na 0 2 1\n".as_bytes()).is_err()); // 0-based
        assert!(read_dimacs("x\n".as_bytes()).is_err()); // unknown record
    }

    #[test]
    fn dimacs_rejects_arc_beyond_declared_vertex_count() {
        match read_dimacs("p sp 3 1\na 1 9 5\n".as_bytes()) {
            Err(GraphError::VertexOutOfRange { line, id, max }) => {
                assert_eq!((line, id, max), (2, 9, 3));
            }
            other => panic!("expected VertexOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn dimacs_rejects_u64_ids_without_wrapping() {
        let text = format!("p sp 3 1\na 1 {} 5\n", (u32::MAX as u64) + 2);
        assert!(matches!(
            read_dimacs(text.as_bytes()),
            Err(GraphError::VertexOutOfRange { line: 2, .. })
        ));
    }

    #[test]
    fn matrix_market_writer_round_trips_through_reader() {
        for weighted in [false, true] {
            let mut coo = Coo::from_edges(5, &[(0, 1), (3, 4), (2, 2)]);
            if weighted {
                coo.randomize_weights(1, 9, 3);
            }
            let mut buf = Vec::new();
            write_matrix_market(&coo, &mut buf).unwrap();
            let back = read_matrix_market(&buf[..]).unwrap();
            assert_eq!(back.num_vertices, 5);
            assert_eq!(back.src, coo.src);
            assert_eq!(back.dst, coo.dst);
            assert_eq!(back.weights, coo.weights);
        }
    }

    #[test]
    fn binary_round_trip_weighted_and_unweighted() {
        for weighted in [false, true] {
            let mut coo = rmat(6, 8, Default::default(), 3);
            if weighted {
                coo.randomize_weights(1, 64, 9);
            }
            let g = GraphBuilder::new().build(coo);
            let mut buf = Vec::new();
            write_csr_binary(&g, &mut buf).unwrap();
            let back = read_csr_binary(&buf[..]).unwrap();
            assert_eq!(back.row_offsets(), g.row_offsets());
            assert_eq!(back.col_indices(), g.col_indices());
            assert_eq!(back.edge_values(), g.edge_values());
            // the sized reader accepts its own output too
            let back = read_csr_binary_sized(&buf[..], Some(buf.len() as u64)).unwrap();
            assert_eq!(back.col_indices(), g.col_indices());
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        assert!(read_csr_binary(&b"NOTMAGIC........"[..]).is_err());
    }

    #[test]
    fn binary_reads_legacy_v1_payloads() {
        // hand-built GNRKCSR1 blob: 2 vertices, 1 unweighted edge 0 -> 1
        let mut blob = Vec::new();
        blob.extend_from_slice(b"GNRKCSR1");
        blob.extend_from_slice(&2u64.to_le_bytes());
        blob.extend_from_slice(&1u64.to_le_bytes());
        blob.push(0);
        for x in [0u32, 1, 1] {
            blob.extend_from_slice(&x.to_le_bytes());
        }
        blob.extend_from_slice(&1u32.to_le_bytes());
        let g = read_csr_binary(&blob[..]).unwrap();
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn binary_rejects_truncation_and_flipped_bits() {
        let g = GraphBuilder::new().build(rmat(5, 8, Default::default(), 3));
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        // truncation at every prefix length is a typed error, never a panic
        for cut in [0, 4, 8, 12, 20, 24, 25, buf.len() / 2, buf.len() - 1] {
            let err = read_csr_binary(&buf[..cut]).unwrap_err();
            assert!(err.is_malformed_input(), "cut={cut}: {err:?}");
        }
        // flip one payload bit: the checksum catches it (or validation,
        // if the flip lands in a structural array)
        let mut bad = buf.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        assert!(read_csr_binary(&bad[..]).is_err());
    }

    #[test]
    fn read_fault_hook_injects_truncation_and_corruption() {
        let g = GraphBuilder::new().build(rmat(5, 8, Default::default(), 3));
        let dir = std::env::temp_dir().join(format!("gunrock-iofault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("iofault-target.bin");
        write_csr_binary(&g, std::fs::File::create(&path).unwrap()).unwrap();

        // the hook keys on this test's unique file name so concurrently
        // running tests that load other files are unaffected
        let fault = std::sync::Arc::new(std::sync::Mutex::new(None::<IoFault>));
        let fault_in_hook = fault.clone();
        set_read_fault_hook(Some(Arc::new(move |p: &str, _len: u64| {
            if p.contains("iofault-target") {
                *fault_in_hook.lock().unwrap()
            } else {
                None
            }
        })));

        // truncation surfaces as the malformed-input diagnosis
        *fault.lock().unwrap() = Some(IoFault::Truncate { at: 30 });
        let err = load_graph(&path).unwrap_err();
        assert!(err.is_malformed_input(), "{err:?}");
        // a flipped payload bit trips the checksum (or validation)
        *fault.lock().unwrap() = Some(IoFault::Corrupt { at: 40, mask: 0x20 });
        assert!(load_graph(&path).is_err());
        // a hook that declines leaves the load clean
        *fault.lock().unwrap() = None;
        assert_eq!(load_graph(&path).unwrap().num_edges(), g.num_edges());

        set_read_fault_hook(None);
        assert_eq!(load_graph(&path).unwrap().num_vertices(), g.num_vertices());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_sized_rejects_lying_header() {
        let g = GraphBuilder::new().build(rmat(4, 8, Default::default(), 3));
        let mut buf = Vec::new();
        write_csr_binary(&g, &mut buf).unwrap();
        // inflate the claimed edge count without growing the file
        let mut bad = buf.clone();
        bad[16..24].copy_from_slice(&(u32::MAX as u64).to_le_bytes());
        let err = read_csr_binary_sized(&bad[..], Some(bad.len() as u64)).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt { .. }), "{err:?}");
        // unknown size: still fails (on EOF) rather than allocating 16 GiB
        assert!(read_csr_binary(&bad[..]).is_err());
    }
}
