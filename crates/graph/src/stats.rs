//! Dataset statistics: the columns of Table 1 (vertices, edges, max
//! degree, diameter) plus degree-distribution summaries used to pick
//! load-balancing strategies.

use crate::csr::Csr;
use crate::types::{VertexId, INFINITY};

/// Summary statistics for a graph, mirroring Table 1 of the paper.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Maximum out-degree.
    pub max_degree: u32,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Lower bound on the diameter from a double-sweep BFS (exact on
    /// trees; a good estimate in practice — roadNet-style graphs report
    /// hundreds, scale-free graphs single digits).
    pub pseudo_diameter: u32,
    /// Fraction of vertices with out-degree below 128 (the paper notes 90%
    /// for the scale-free datasets).
    pub frac_degree_lt_128: f64,
}

/// Computes the Table 1 statistics for a graph.
pub fn graph_stats(g: &Csr) -> GraphStats {
    let n = g.num_vertices();
    let m = g.num_edges();
    let max_degree = g.max_degree();
    let small = (0..n as VertexId).filter(|&v| g.out_degree(v) < 128).count();
    GraphStats {
        vertices: n,
        edges: m,
        max_degree,
        avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        pseudo_diameter: pseudo_diameter(g),
        frac_degree_lt_128: if n == 0 { 0.0 } else { small as f64 / n as f64 },
    }
}

/// Serial BFS returning `(depths, farthest_vertex, eccentricity)`.
fn bfs_ecc(g: &Csr, src: VertexId) -> (VertexId, u32) {
    let n = g.num_vertices();
    let mut depth = vec![INFINITY; n];
    let mut queue = std::collections::VecDeque::new();
    depth[src as usize] = 0;
    queue.push_back(src);
    let mut far = (src, 0u32);
    while let Some(u) = queue.pop_front() {
        let du = depth[u as usize];
        if du > far.1 {
            far = (u, du);
        }
        for &v in g.neighbors(u) {
            if depth[v as usize] == INFINITY {
                depth[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    far
}

/// Double-sweep diameter estimate: BFS from an arbitrary vertex, then BFS
/// again from the farthest vertex found. The second eccentricity is a
/// lower bound on the true diameter and typically tight.
pub fn pseudo_diameter(g: &Csr) -> u32 {
    if g.num_vertices() == 0 {
        return 0;
    }
    // start from the max-degree vertex: cheap and lands in the big component
    let start = (0..g.num_vertices() as VertexId).max_by_key(|&v| g.out_degree(v)).unwrap_or(0);
    let (far, _) = bfs_ecc(g, start);
    let (_, ecc) = bfs_ecc(g, far);
    ecc
}

/// Degree histogram with power-of-two buckets: `hist[i]` counts vertices
/// with degree in `[2^(i-1), 2^i)` (bucket 0 = degree 0).
pub fn degree_histogram(g: &Csr) -> Vec<usize> {
    let mut hist = vec![0usize; 33];
    for v in 0..g.num_vertices() as VertexId {
        let d = g.out_degree(v);
        let bucket = if d == 0 { 0 } else { 32 - d.leading_zeros() as usize };
        hist[bucket] += 1;
    }
    while hist.len() > 1 && hist.last() == Some(&0) {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::coo::Coo;
    use crate::generators::{grid2d, rmat};

    #[test]
    fn path_graph_diameter() {
        let coo = Coo::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let g = GraphBuilder::new().build(coo);
        assert_eq!(pseudo_diameter(&g), 4);
    }

    #[test]
    fn grid_has_large_diameter_rmat_small() {
        let road = GraphBuilder::new().build(grid2d(40, 40, 0.0, 0.0, 1));
        let kron = GraphBuilder::new().build(rmat(12, 16, Default::default(), 1));
        let sroad = graph_stats(&road);
        let skron = graph_stats(&kron);
        assert!(sroad.pseudo_diameter >= 78); // 2*(40-1)
        assert!(skron.pseudo_diameter < 12);
        assert!(skron.max_degree > sroad.max_degree);
    }

    #[test]
    fn stats_basic_fields() {
        let coo = Coo::from_edges(3, &[(0, 1), (1, 2)]);
        let g = GraphBuilder::new().build(coo);
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 4);
        assert_eq!(s.max_degree, 2);
        assert!((s.avg_degree - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.frac_degree_lt_128, 1.0);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: v0 = 2, v1 = 2, v2 = 2 after undirected triangle
        let coo = Coo::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let g = GraphBuilder::new().build(coo);
        let hist = degree_histogram(&g);
        assert_eq!(hist[2], 3); // bucket for degree 2..3
        assert_eq!(hist.iter().sum::<usize>(), 3);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build(Coo::new(0));
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.pseudo_diameter, 0);
    }
}
