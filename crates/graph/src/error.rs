//! Structured errors for graph loading and validation.
//!
//! Every parser and loader in this crate returns [`GraphResult`] so
//! callers (the CLI, a serving layer) can distinguish an I/O failure from
//! malformed input, report the offending line, and exit cleanly instead
//! of panicking on untrusted data.

use std::fmt;
use std::io;

/// Result alias for graph loading and validation.
pub type GraphResult<T> = Result<T, GraphError>;

/// A structured graph-loading or validation error.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure (file missing, read error, ...).
    Io(io::Error),
    /// A text-format line failed to parse; `line` is 1-based.
    Parse {
        /// 1-based line number within the input.
        line: usize,
        /// What was wrong with the line.
        msg: String,
    },
    /// A file-level header (magic, size line, problem line) is invalid.
    InvalidHeader {
        /// What was wrong with the header.
        msg: String,
    },
    /// Binary payload failed an integrity check (truncation, checksum,
    /// counts inconsistent with the file size).
    Corrupt {
        /// What integrity check failed.
        msg: String,
    },
    /// A loaded structure violates a CSR/COO invariant.
    InvalidGraph {
        /// Which invariant is violated.
        msg: String,
    },
    /// A vertex id does not fit the `VertexId` representation or exceeds
    /// the declared vertex count. `line` is 1-based, 0 for binary input.
    VertexOutOfRange {
        /// 1-based line number (0 when the input has no line structure).
        line: usize,
        /// The offending id as parsed.
        id: u64,
        /// The largest admissible id.
        max: u64,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            GraphError::InvalidHeader { msg } => write!(f, "invalid header: {msg}"),
            GraphError::Corrupt { msg } => write!(f, "corrupt input: {msg}"),
            GraphError::InvalidGraph { msg } => write!(f, "invalid graph: {msg}"),
            GraphError::VertexOutOfRange { line, id, max } => {
                if *line == 0 {
                    write!(f, "vertex id {id} out of range (max {max})")
                } else {
                    write!(f, "line {line}: vertex id {id} out of range (max {max})")
                }
            }
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

impl GraphError {
    /// Shorthand for a line-scoped parse error.
    pub fn parse(line: usize, msg: impl Into<String>) -> Self {
        GraphError::Parse { line, msg: msg.into() }
    }

    /// Shorthand for a header error.
    pub fn header(msg: impl Into<String>) -> Self {
        GraphError::InvalidHeader { msg: msg.into() }
    }

    /// Shorthand for a corrupt-payload error.
    pub fn corrupt(msg: impl Into<String>) -> Self {
        GraphError::Corrupt { msg: msg.into() }
    }

    /// Shorthand for an invariant violation.
    pub fn invalid(msg: impl Into<String>) -> Self {
        GraphError::InvalidGraph { msg: msg.into() }
    }

    /// True when the error is any kind of malformed-input rejection
    /// (as opposed to an underlying I/O failure).
    pub fn is_malformed_input(&self) -> bool {
        !matches!(self, GraphError::Io(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_numbers() {
        let e = GraphError::parse(17, "invalid weight");
        assert_eq!(e.to_string(), "line 17: invalid weight");
        let e = GraphError::VertexOutOfRange { line: 3, id: 1 << 40, max: u32::MAX as u64 - 1 };
        assert!(e.to_string().starts_with("line 3: vertex id"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(!e.is_malformed_input());
        assert!(std::error::Error::source(&e).is_some());
    }
}
