//! Dataset preparation pipeline: edge list -> cleaned CSR.
//!
//! Mirrors the paper's preprocessing (§6): all datasets are converted to
//! undirected graphs, and SSSP weights are random integers in `1..=64`.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::types::{VertexId, Weight};

/// Options controlling how an edge list is turned into a [`Csr`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    undirected: bool,
    remove_self_loops: bool,
    dedup: bool,
    random_weights: Option<(Weight, Weight, u64)>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        GraphBuilder {
            undirected: true,
            remove_self_loops: true,
            dedup: true,
            random_weights: None,
        }
    }
}

impl GraphBuilder {
    /// A builder with the paper's defaults: undirected, deduplicated,
    /// self-loop-free, unweighted.
    pub fn new() -> Self {
        Self::default()
    }

    /// Keep the graph directed (skip symmetrization).
    pub fn directed(mut self) -> Self {
        self.undirected = false;
        self
    }

    /// Keep self loops.
    pub fn keep_self_loops(mut self) -> Self {
        self.remove_self_loops = false;
        self
    }

    /// Keep duplicate/parallel edges.
    pub fn keep_duplicates(mut self) -> Self {
        self.dedup = false;
        self
    }

    /// Assign uniform random weights in `lo..=hi` with the given seed
    /// (paper: `1..=64`).
    pub fn random_weights(mut self, lo: Weight, hi: Weight, seed: u64) -> Self {
        self.random_weights = Some((lo, hi, seed));
        self
    }

    /// Runs the pipeline. The input COO is consumed.
    ///
    /// Panics if the graph has `u32::MAX` or more vertices: the operators
    /// reserve `u32::MAX` as a sentinel (INVALID_SLOT / EMPTY_SLOT), so
    /// every legal id must be strictly smaller. Checked here, before any
    /// per-vertex allocation.
    pub fn build(&self, mut coo: Coo) -> Csr {
        assert!(
            coo.num_vertices < VertexId::MAX as usize,
            "vertex count exceeds VertexId range (u32::MAX is reserved as a sentinel)"
        );
        if self.remove_self_loops {
            coo.remove_self_loops();
        }
        if self.undirected {
            coo.symmetrize();
        }
        if self.dedup {
            coo.sort_and_dedup();
        }
        if let Some((lo, hi, seed)) = self.random_weights {
            if self.undirected {
                // undirected edges carry one weight shared by both
                // directions, so the graph equals its own transpose
                coo.randomize_weights_symmetric(lo, hi, seed);
            } else {
                coo.randomize_weights(lo, hi, seed);
            }
        }
        Csr::from_coo(&coo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_pipeline_produces_clean_undirected_graph() {
        let coo = Coo::from_edges(4, &[(0, 1), (1, 0), (0, 0), (1, 2), (1, 2)]);
        let g = GraphBuilder::new().build(coo);
        assert!(g.is_symmetric());
        // self loop gone; duplicates gone; (0,1) both ways + (1,2) both ways
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn directed_builder_keeps_direction() {
        let coo = Coo::from_edges(3, &[(0, 1), (1, 2)]);
        let g = GraphBuilder::new().directed().build(coo);
        assert!(!g.is_symmetric());
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn weights_assigned_after_symmetrization() {
        let coo = Coo::from_edges(3, &[(0, 1), (1, 2)]);
        let g = GraphBuilder::new().random_weights(1, 64, 7).build(coo);
        let vals = g.edge_values().unwrap();
        assert_eq!(vals.len(), g.num_edges());
        assert!(vals.iter().all(|&w| (1..=64).contains(&w)));
    }

    #[test]
    fn keep_duplicates_preserves_parallel_edges() {
        let coo = Coo::from_edges(2, &[(0, 1), (0, 1)]);
        let g = GraphBuilder::new().directed().keep_duplicates().build(coo);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "reserved as a sentinel")]
    fn vertex_count_at_sentinel_is_rejected() {
        // u32::MAX vertices would make the top id collide with the
        // operators' INVALID_SLOT/EMPTY_SLOT sentinel; Coo::new allocates
        // nothing, so the guard must trip before any allocation
        let coo = Coo::new(u32::MAX as usize);
        let _ = GraphBuilder::new().build(coo);
    }

    #[test]
    fn vertex_count_below_sentinel_passes_the_guard() {
        let g = GraphBuilder::new().build(Coo::from_edges(3, &[(0, 1)]));
        assert_eq!(g.num_vertices(), 3);
    }
}
