//! # gunrock-graph
//!
//! Graph substrate for the Gunrock (PPoPP 2015) reproduction: storage
//! formats, dataset builders, synthetic generators standing in for the
//! paper's datasets, I/O, and statistics.
//!
//! The representation choices follow §3 of the paper: compressed sparse
//! row (CSR) by default for vertex-centric operators, an edge list (COO)
//! for edge-centric ones, and structure-of-arrays property storage.
//!
//! ```
//! use gunrock_graph::prelude::*;
//!
//! // Build a small scale-free graph like the paper's kron datasets.
//! let coo = generators::rmat(10, 16, generators::RmatParams::graph500(), 42);
//! let graph = GraphBuilder::new().random_weights(1, 64, 42).build(coo);
//! assert!(graph.is_symmetric());
//! assert!(graph.max_degree() > 64);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod coo;
pub mod csr;
pub mod error;
pub mod generators;
pub mod io;
pub mod reorder;
pub mod stats;
pub mod types;

/// Commonly used items.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::coo::Coo;
    pub use crate::csr::Csr;
    pub use crate::error::{GraphError, GraphResult};
    pub use crate::generators;
    pub use crate::reorder::{degree_descending, Relabeling};
    pub use crate::stats::{degree_histogram, graph_stats, GraphStats};
    pub use crate::types::{
        Edge, EdgeId, VertexId, Weight, WeightedEdge, INFINITY, INVALID_EDGE, INVALID_VERTEX,
    };
}

pub use builder::GraphBuilder;
pub use coo::Coo;
pub use csr::Csr;
pub use error::{GraphError, GraphResult};
pub use types::{EdgeId, VertexId, Weight, INFINITY, INVALID_EDGE, INVALID_VERTEX};
