//! Property-based tests for the graph substrate: structural laws of the
//! builder pipeline, CSR/COO conversions, transpose, and I/O round
//! trips, on arbitrary edge lists.

use gunrock_graph::{io, Coo, Csr, GraphBuilder};
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (1usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec(((0..n as u32), (0..n as u32)), 0..120);
        (Just(n), edges)
    })
}

fn edge_set(g: &Csr) -> std::collections::BTreeSet<(u32, u32)> {
    g.to_coo().edges().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builder_output_is_clean((n, edges) in arb_edges()) {
        let g = GraphBuilder::new().build(Coo::from_edges(n, &edges));
        // symmetric
        prop_assert!(g.is_symmetric());
        // no self loops
        for v in 0..g.num_vertices() as u32 {
            prop_assert!(!g.neighbors(v).contains(&v));
        }
        // sorted, deduplicated adjacency
        for v in 0..g.num_vertices() as u32 {
            prop_assert!(g.neighbors(v).windows(2).all(|w| w[0] < w[1]));
        }
        // exactly the undirected closure of the input minus self loops
        let mut want = std::collections::BTreeSet::new();
        for &(s, d) in &edges {
            if s != d {
                want.insert((s, d));
                want.insert((d, s));
            }
        }
        prop_assert_eq!(edge_set(&g), want);
    }

    #[test]
    fn builder_output_always_passes_validation((n, edges) in arb_edges()) {
        // every loader runs Csr::validate() on untrusted input; the
        // builder pipeline must always produce graphs that pass the
        // same invariant checks (undirected, directed, weighted)
        let und = GraphBuilder::new().build(Coo::from_edges(n, &edges));
        prop_assert!(und.validate().is_ok(), "{:?}", und.validate());
        let dir = GraphBuilder::new().directed().build(Coo::from_edges(n, &edges));
        prop_assert!(dir.validate().is_ok(), "{:?}", dir.validate());
        prop_assert!(dir.transpose().validate().is_ok());
        let w = GraphBuilder::new()
            .random_weights(1, 64, 7)
            .build(Coo::from_edges(n, &edges));
        prop_assert!(w.validate().is_ok(), "{:?}", w.validate());
        // and the COO view passes its own validation
        prop_assert!(w.to_coo().validate().is_ok());
    }

    #[test]
    fn transpose_is_involutive((n, edges) in arb_edges()) {
        let g = GraphBuilder::new().directed().build(Coo::from_edges(n, &edges));
        let tt = g.transpose().transpose();
        prop_assert_eq!(tt.row_offsets(), g.row_offsets());
        prop_assert_eq!(tt.col_indices(), g.col_indices());
    }

    #[test]
    fn transpose_reverses_every_edge((n, edges) in arb_edges()) {
        let g = GraphBuilder::new().directed().build(Coo::from_edges(n, &edges));
        let t = g.transpose();
        let fwd = edge_set(&g);
        let rev: std::collections::BTreeSet<(u32, u32)> =
            edge_set(&t).into_iter().map(|(a, b)| (b, a)).collect();
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn edge_source_inverts_edge_ranges((n, edges) in arb_edges()) {
        let g = GraphBuilder::new().directed().build(Coo::from_edges(n, &edges));
        for v in 0..g.num_vertices() as u32 {
            for e in g.edge_range(v) {
                prop_assert_eq!(g.edge_source(e as u32), v);
            }
        }
    }

    #[test]
    fn symmetric_weights_agree_in_both_directions((n, edges) in arb_edges()) {
        let g = GraphBuilder::new()
            .random_weights(1, 64, 99)
            .build(Coo::from_edges(n, &edges));
        for u in 0..g.num_vertices() as u32 {
            for e in g.edge_range(u) {
                let v = g.col_indices()[e];
                let back = g
                    .edge_range(v)
                    .find(|&be| g.col_indices()[be] == u)
                    .expect("symmetric");
                prop_assert_eq!(g.weight(e as u32), g.weight(back as u32));
            }
        }
    }

    #[test]
    fn binary_io_round_trips((n, edges) in arb_edges()) {
        let g = GraphBuilder::new()
            .random_weights(1, 64, 5)
            .build(Coo::from_edges(n, &edges));
        let mut buf = Vec::new();
        io::write_csr_binary(&g, &mut buf).unwrap();
        let back = io::read_csr_binary(&buf[..]).unwrap();
        prop_assert_eq!(back.row_offsets(), g.row_offsets());
        prop_assert_eq!(back.col_indices(), g.col_indices());
        prop_assert_eq!(back.edge_values(), g.edge_values());
    }

    #[test]
    fn edge_list_io_round_trips_including_vertex_count((n, edges) in arb_edges()) {
        let coo = Coo::from_edges(n, &edges);
        let mut buf = Vec::new();
        io::write_edge_list(&coo, &mut buf).unwrap();
        let back = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(back.num_vertices, coo.num_vertices);
        prop_assert_eq!(back.src, coo.src);
        prop_assert_eq!(back.dst, coo.dst);
    }

    #[test]
    fn csr_coo_round_trip((n, edges) in arb_edges()) {
        let g = GraphBuilder::new().directed().build(Coo::from_edges(n, &edges));
        let back = Csr::from_coo(&g.to_coo());
        prop_assert_eq!(back.row_offsets(), g.row_offsets());
        prop_assert_eq!(back.col_indices(), g.col_indices());
    }

    #[test]
    fn degree_sum_equals_edge_count((n, edges) in arb_edges()) {
        let g = GraphBuilder::new().directed().build(Coo::from_edges(n, &edges));
        let sum: u64 = (0..g.num_vertices() as u32).map(|v| g.out_degree(v) as u64).sum();
        prop_assert_eq!(sum, g.num_edges() as u64);
    }
}
