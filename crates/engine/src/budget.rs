//! Memory budget accounting for pooled allocations.
//!
//! A [`MemoryBudget`] is a process- or context-wide cap on *outstanding*
//! (checked-out) buffer bytes. The [`BufferPool`](crate::pool::BufferPool)
//! charges it on every `take_*` and credits it on every `put_*`, so
//! buffers parked in the pool's free lists cost nothing against the
//! budget — the accounting model matches the pool's own `bytes_live`
//! counter (outstanding bytes, not resident bytes).
//!
//! Exceeding the budget is a *structured* condition, not an abort: the
//! pool raises a typed [`BudgetDenied`] panic payload that the operator
//! isolation layer (`catch_unwind` in `gunrock::isolate`) downcasts into
//! `GunrockError::BudgetExceeded`, so a run under memory pressure fails
//! (or degrades) the same way a faulted run does. Callers that want to
//! *avoid* the failure path probe [`MemoryBudget::can_fit`] (or the
//! pool's `can_reserve`) first and take a degradation rung instead —
//! see the ladder in DESIGN §11.
//!
//! [`estimate_bytes`] is the admission-control half: a documented
//! worst-case footprint formula per primitive, derived from the pool's
//! power-of-two size classes, that lets a server reject a request
//! *before* any work is done.

use std::sync::atomic::{AtomicU64, Ordering};

/// The denial record raised (as a typed panic payload) when a reserve
/// would exceed the budget, and returned by the fallible `try_*` APIs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetDenied {
    /// Bytes the failed reservation asked for.
    pub requested: u64,
    /// Outstanding reserved bytes at the time of the denial.
    pub reserved: u64,
    /// The budget's hard limit in bytes.
    pub limit: u64,
}

impl std::fmt::Display for BudgetDenied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory budget exceeded: requested {} bytes with {} of {} reserved",
            self.requested, self.reserved, self.limit
        )
    }
}

/// An atomic reserve/release byte budget with a high-water mark.
///
/// Shared (via `Arc`) between a `BufferPool` and whoever wants to
/// observe pressure: reservations are a CAS loop so concurrent workers
/// can never overshoot `limit`, releases saturate at zero so foreign
/// buffers recycled into the pool (which were never reserved) cannot
/// wedge the counter.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: u64,
    reserved: AtomicU64,
    high_water: AtomicU64,
    denials: AtomicU64,
}

impl MemoryBudget {
    /// A budget capping outstanding pooled bytes at `limit_bytes`.
    pub fn new(limit_bytes: u64) -> MemoryBudget {
        MemoryBudget {
            limit: limit_bytes,
            reserved: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            denials: AtomicU64::new(0),
        }
    }

    /// The hard limit in bytes.
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Currently reserved (outstanding) bytes.
    pub fn reserved(&self) -> u64 {
        // ORDERING: Relaxed — monitoring read of an independent counter.
        self.reserved.load(Ordering::Relaxed)
    }

    /// Peak reserved bytes over the budget's lifetime.
    pub fn high_water(&self) -> u64 {
        // ORDERING: Relaxed — monitoring read of an independent counter.
        self.high_water.load(Ordering::Relaxed)
    }

    /// How many reservations have been denied.
    pub fn denials(&self) -> u64 {
        // ORDERING: Relaxed — monitoring read of an independent counter.
        self.denials.load(Ordering::Relaxed)
    }

    /// Bytes still available before the limit.
    pub fn headroom(&self) -> u64 {
        self.limit.saturating_sub(self.reserved())
    }

    /// Whether a `bytes`-sized reservation would currently succeed.
    /// Advisory only (another thread may reserve in between); the
    /// degradation ladder uses it to *prefer* a cheaper strategy, while
    /// [`try_reserve`](Self::try_reserve) remains the enforcement point.
    pub fn can_fit(&self, bytes: u64) -> bool {
        self.headroom() >= bytes
    }

    /// Reserves `bytes` against the budget, or reports the denial.
    pub fn try_reserve(&self, bytes: u64) -> Result<(), BudgetDenied> {
        // ORDERING: Relaxed CAS loop — the budget is an independent
        // counter guarding capacity, not an ownership handoff; no other
        // memory is published by a successful reservation.
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            let next = match cur.checked_add(bytes) {
                Some(next) if next <= self.limit => next,
                _ => {
                    self.denials.fetch_add(1, Ordering::Relaxed);
                    return Err(BudgetDenied {
                        requested: bytes,
                        reserved: cur,
                        limit: self.limit,
                    });
                }
            };
            match self.reserved.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.high_water.fetch_max(next, Ordering::Relaxed);
                    return Ok(());
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Releases `bytes`, saturating at zero (foreign buffers recycled
    /// into the pool were never reserved here).
    pub fn release(&self, bytes: u64) {
        // ORDERING: Relaxed — see try_reserve; fetch_update makes the
        // saturating subtraction atomic against concurrent releases.
        let _ = self.reserved.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
            Some(cur.saturating_sub(bytes))
        });
    }
}

/// Rounds an element count up to the capacity the pool would actually
/// hand out: the next power of two, floored at the pool's minimum class
/// (64 elements) — see `pool::class_for`.
pub fn pooled_elems(elems: u64) -> u64 {
    elems.next_power_of_two().max(64)
}

/// Bytes the pool charges for a checked-out buffer of `elems` elements
/// of `elem_size` bytes.
pub fn pooled_bytes(elems: u64, elem_size: u64) -> u64 {
    pooled_elems(elems).saturating_mul(elem_size)
}

/// Worst-case advance working set (bytes) for one strategy at a given
/// frontier size and neighbor count: the scan-offset expansion takes a
/// degree buffer and an offset buffer over the frontier plus slot and
/// output buffers over the gathered neighbors; the serial path writes
/// straight into one output buffer.
pub fn advance_workspace_bytes(frontier_len: u64, neighbors: u64, strategy: &str) -> u64 {
    let frontier = pooled_bytes(frontier_len, 4);
    let gathered = pooled_bytes(neighbors, 4);
    match strategy {
        // one pooled output buffer, no scan scratch
        "serial" => gathered,
        // load_balanced adds the per-batch edge index over the slots
        "load_balanced" => 2 * frontier + 3 * gathered,
        // thread_mapped (and twc, which merges per-bucket expansions):
        // degrees + offsets + slots + compacted output
        _ => 2 * frontier + 2 * gathered,
    }
}

/// Up-front worst-case footprint (bytes) of one run of `primitive` on a
/// graph with `n` vertices and `m` directed edges, counted in pool
/// charging units. The formulas (documented in DESIGN §11) are
/// deliberately pessimistic — they assume the widest single iteration:
/// a full-graph frontier expanding every edge — so admission control
/// errs toward rejecting, never toward aborting.
///
/// Unknown primitives fall back to the BFS formula (every served
/// primitive is frontier-shaped).
pub fn estimate_bytes(primitive: &str, n: u64, m: u64) -> u64 {
    // frontier ping-pong: two pooled u32 buffers over the vertex set
    let frontiers = 2 * pooled_bytes(n, 4);
    // widest advance: full frontier, every edge gathered
    let advance = advance_workspace_bytes(n, m, "load_balanced");
    // one pooled u64-word bitmap over the vertex set
    let bitmap = pooled_bytes(n.div_ceil(64), 8);
    match primitive {
        // labels + visited bitmap + (direction-optimized) three pull
        // bitmaps built at the push->pull switch
        "bfs" => n * 4 + 4 * bitmap + frontiers + advance,
        // distance array + visited bitmap for the culling filter
        "sssp" => n * 4 + bitmap + frontiers + advance,
        // labels + sigma/delta f64 arrays, forward and backward sweeps
        "bc" => n * 4 + 2 * n * 8 + bitmap + frontiers + advance,
        // component labels; hook/jump is filter-only but still pools
        // its compaction buffers
        "cc" => n * 4 + frontiers + advance,
        // rank ping-pong in f64 over a dense (all-vertex) frontier
        "pagerank" => 2 * n * 8 + frontiers + advance,
        // lane-packed batch: three pooled n-word u64 lane maps
        // (seen + frontier ping-pong pair) plus the 64-lane depth
        // array; the batched advance needs no scan workspace
        "msbfs" => 3 * pooled_bytes(n, 8) + 64 * n * 4,
        // the sleep diagnostic touches no graph state
        "sleep" => 0,
        _ => n * 4 + 4 * bitmap + frontiers + advance,
    }
}

/// Parses a byte count with an optional binary suffix: `4096`, `64k`,
/// `512m`, `2g` (case-insensitive). Shared by every front end that
/// accepts a `--memory-budget` flag.
pub fn parse_bytes(spec: &str) -> Result<u64, String> {
    let spec = spec.trim();
    let (digits, shift) = match spec.char_indices().last() {
        Some((i, 'k' | 'K')) => (&spec[..i], 10),
        Some((i, 'm' | 'M')) => (&spec[..i], 20),
        Some((i, 'g' | 'G')) => (&spec[..i], 30),
        _ => (spec, 0),
    };
    let n: u64 = digits.trim().parse().map_err(|_| format!("bad byte count {spec:?}"))?;
    n.checked_shl(shift)
        .filter(|scaled| scaled >> shift == n)
        .ok_or_else(|| format!("byte count {spec:?} overflows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_and_high_water() {
        let b = MemoryBudget::new(1000);
        assert!(b.try_reserve(600).is_ok());
        assert!(b.try_reserve(400).is_ok());
        assert_eq!(b.reserved(), 1000);
        assert_eq!(b.headroom(), 0);
        let denied = b.try_reserve(1).unwrap_err();
        assert_eq!(denied, BudgetDenied { requested: 1, reserved: 1000, limit: 1000 });
        assert_eq!(b.denials(), 1);
        b.release(700);
        assert_eq!(b.reserved(), 300);
        assert!(b.can_fit(700));
        assert!(!b.can_fit(701));
        // the peak survives the release
        assert_eq!(b.high_water(), 1000);
        // releases saturate: a foreign buffer's bytes cannot go negative
        b.release(10_000);
        assert_eq!(b.reserved(), 0);
    }

    #[test]
    fn reserve_overflow_is_a_denial_not_a_wrap() {
        let b = MemoryBudget::new(u64::MAX);
        assert!(b.try_reserve(u64::MAX - 1).is_ok());
        assert!(b.try_reserve(2).is_err());
    }

    #[test]
    fn concurrent_reservations_never_overshoot() {
        let b = std::sync::Arc::new(MemoryBudget::new(64));
        let workers: Vec<_> = (0..8)
            .map(|_| {
                let b = std::sync::Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut granted = 0u64;
                    for _ in 0..1000 {
                        if b.try_reserve(1).is_ok() {
                            granted += 1;
                        }
                    }
                    granted
                })
            })
            .collect();
        let granted: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(granted, 64, "exactly the limit is granted");
        assert_eq!(b.reserved(), 64);
        assert!(b.high_water() <= 64);
    }

    #[test]
    fn pooled_rounding_matches_the_pool_classes() {
        assert_eq!(pooled_elems(0), 64);
        assert_eq!(pooled_elems(64), 64);
        assert_eq!(pooled_elems(65), 128);
        assert_eq!(pooled_bytes(100, 4), 128 * 4);
    }

    #[test]
    fn estimates_are_monotone_and_primitive_shaped() {
        let (n, m) = (1 << 12, 1 << 16);
        for p in ["bfs", "sssp", "bc", "cc", "pagerank"] {
            let small = estimate_bytes(p, n, m);
            let large = estimate_bytes(p, n * 4, m * 4);
            assert!(small > 0, "{p}");
            assert!(large > small, "{p}: estimate must grow with the graph");
        }
        // bc carries two f64 arrays, so it must out-weigh bfs
        assert!(estimate_bytes("bc", n, m) > estimate_bytes("bfs", n, m));
        assert_eq!(estimate_bytes("sleep", n, m), 0);
        // the fallback is the bfs formula
        assert_eq!(estimate_bytes("unknown", n, m), estimate_bytes("bfs", n, m));
    }

    #[test]
    fn lb_workspace_dominates_thread_mapped() {
        let lb = advance_workspace_bytes(1 << 10, 1 << 14, "load_balanced");
        let tm = advance_workspace_bytes(1 << 10, 1 << 14, "thread_mapped");
        let serial = advance_workspace_bytes(1 << 10, 1 << 14, "serial");
        assert!(lb > tm, "the degrade rung must actually shrink the footprint");
        assert!(tm > serial);
    }
}
