//! Engine configuration: the knobs of the virtual GPU.
//!
//! The constants mirror the Kepler-class hardware the paper evaluates on
//! (§3) and the paper's tuned thresholds (§4.4).

/// Threads per warp on the modeled GPU; also the chunklet size for the
/// TWC medium bucket.
pub const WARP_SIZE: usize = 32;

/// Threads per cooperative thread array (block); also the chunk size for
/// the TWC large bucket and the default load-balanced edge-chunk length.
pub const CTA_SIZE: usize = 256;

/// The paper's tuned frontier-neighbor-count threshold (§4.4) selecting
/// between the fine-grained (thread-mapped) and coarse-grained
/// (load-balanced) advance strategies: "we set this value to 4096".
pub const LB_THRESHOLD: usize = 4096;

/// Minimum items per parallel task; below this, operations run
/// sequentially to avoid scheduling overhead (the CPU analog of not
/// launching a kernel for tiny inputs).
pub const SEQUENTIAL_CUTOFF: usize = 4096;

/// Sequential cutoff for frontier-sized work in the advance path
/// (neighbor-count reduction, degree gathering). Lower than
/// [`SEQUENTIAL_CUTOFF`] because each frontier item fans out to a full
/// neighbor list, so even small frontiers carry enough work to parallelize.
pub const FRONTIER_SEQ_CUTOFF: usize = 2048;

/// Default work-estimate threshold (frontier items and total neighbors)
/// below which an advance runs the single-threaded fast path: no rayon
/// dispatch, no scan, one pooled output buffer. Targets the
/// high-diameter regime (road networks, long-tail BFS levels) where
/// fork/join overhead dwarfs the few hundred edges of actual work.
pub const SERIAL_THRESHOLD: usize = 4096;

/// Watchdog escalation: a job silent for the configured interval is
/// cancelled; one silent for a further `interval / this` is killed.
/// With the default divisor the total reap latency stays under twice
/// the interval, the bound the resilience tests assert.
pub const WATCHDOG_GRACE_DIVISOR: u32 = 2;

/// Watchdog reaper poll cadence: `interval / this` (floored at 1ms).
/// Polling well inside the interval keeps detection latency a small
/// additive term on top of the interval-plus-grace schedule.
pub const WATCHDOG_POLL_DIVISOR: u32 = 8;

/// Default base for load-proportional `retry_after_ms` hints on
/// transient rejections (queue full, budget pressure). The hint scales
/// with load and carries deterministic jitter; see
/// [`crate::queue::retry_after_hint`].
pub const RETRY_AFTER_BASE_MS: u64 = 100;

/// Runtime configuration for the engine.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EngineConfig {
    /// Work chunk emulating a warp.
    pub warp_size: usize,
    /// Work chunk emulating a CTA.
    pub cta_size: usize,
    /// Advance strategy switch threshold on frontier neighbor count
    /// (users "can change this value easily in the Enactor module", §4.4).
    pub lb_threshold: usize,
    /// Small-frontier serial fast-path threshold: an advance whose
    /// frontier length and neighbor count are both at or below this
    /// expands single-threaded (`--serial-threshold` on the CLI; 0
    /// disables the fast path entirely).
    pub serial_threshold: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            warp_size: WARP_SIZE,
            cta_size: CTA_SIZE,
            lb_threshold: LB_THRESHOLD,
            serial_threshold: SERIAL_THRESHOLD,
        }
    }
}

impl EngineConfig {
    /// Default configuration (paper-tuned values).
    pub fn new() -> Self {
        Self::default()
    }

    /// Overrides the load-balance threshold.
    pub fn with_lb_threshold(mut self, t: usize) -> Self {
        self.lb_threshold = t;
        self
    }

    /// Overrides the serial fast-path threshold (0 disables it).
    pub fn with_serial_threshold(mut self, t: usize) -> Self {
        self.serial_threshold = t;
        self
    }

    /// Number of worker threads in the underlying pool.
    pub fn num_threads(&self) -> usize {
        rayon::current_num_threads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = EngineConfig::new();
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.cta_size, 256);
        assert_eq!(c.lb_threshold, 4096);
        assert_eq!(c.serial_threshold, 4096);
    }

    #[test]
    fn builder_overrides() {
        let c = EngineConfig::new().with_lb_threshold(128).with_serial_threshold(0);
        assert_eq!(c.lb_threshold, 128);
        assert_eq!(c.serial_threshold, 0);
    }

    #[test]
    fn pool_reports_threads() {
        assert!(EngineConfig::new().num_threads() >= 1);
    }
}
