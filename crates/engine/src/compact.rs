//! Stream compaction: the engine behind Gunrock's exact *filter* operator
//! (§4.1: "using parallel scan for efficient filtering is well-understood
//! on GPUs").
//!
//! `compact` keeps elements satisfying a predicate, preserving input
//! order, via the scan-then-scatter idiom: flag each element, exclusive
//! scan the flags to obtain output positions, then scatter in parallel.

use crate::config::SEQUENTIAL_CUTOFF;
use crate::scan::scan_exclusive_usize;
use crate::unsafe_slice::UnsafeSlice;
use rayon::prelude::*;

/// Returns the elements of `input` satisfying `pred`, in order.
pub fn compact<T, F>(input: &[T], pred: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    compact_map(input, |x| if pred(x) { Some(*x) } else { None })
}

/// Filter-map in one pass: elements mapping to `Some` are kept (in
/// order). This is the fused form used by filter kernels that both cull
/// and transform.
pub fn compact_map<T, U, F>(input: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Copy + Send + Sync,
    F: Fn(&T) -> Option<U> + Send + Sync,
{
    let n = input.len();
    if n < SEQUENTIAL_CUTOFF || rayon::current_num_threads() == 1 {
        return input.iter().filter_map(&f).collect();
    }
    // Phase 1: flags (recomputing f in phase 3 would double user work, so
    // materialize the mapped values once).
    let mapped: Vec<Option<U>> = input.par_iter().map(&f).collect();
    // CAST: bool -> usize is 0 or 1 by definition.
    let flags: Vec<usize> = mapped.par_iter().map(|m| m.is_some() as usize).collect();
    // Phase 2: positions.
    let (positions, total) = scan_exclusive_usize(&flags);
    // Phase 3: scatter.
    let mut out = Vec::with_capacity(total);
    // SAFETY: set_len before writes is sound because every slot 0..total is
    // written exactly once below (scan guarantees a bijection between kept
    // inputs and output positions) and U: Copy has no drop obligations.
    #[allow(clippy::uninit_vec)]
    unsafe {
        out.set_len(total)
    };
    {
        crate::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut out);
        mapped.par_iter().zip(positions.par_iter()).for_each(|(m, &pos)| {
            if let Some(v) = m {
                // SAFETY: distinct kept elements get distinct positions.
                unsafe { out_ref.write(pos, *v) };
            }
        });
    }
    out
}

/// Returns the *indices* of elements satisfying `pred`, in order. Used by
/// frontier filters that operate on index sets.
pub fn compact_indices<T, F>(input: &[T], pred: F) -> Vec<u32>
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    // CAST: indices fit u32 — asserted at entry; bool -> usize is 0 or 1.
    assert!(input.len() <= u32::MAX as usize);
    if input.len() < SEQUENTIAL_CUTOFF || rayon::current_num_threads() == 1 {
        return input
            .iter()
            .enumerate()
            .filter_map(|(i, x)| pred(x).then_some(i as u32))
            .collect();
    }
    let flags: Vec<usize> = input.par_iter().map(|x| pred(x) as usize).collect();
    let (positions, total) = scan_exclusive_usize(&flags);
    let mut out = vec![0u32; total];
    {
        crate::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut out);
        flags.par_iter().enumerate().for_each(|(i, &keep)| {
            if keep == 1 {
                // SAFETY: scan assigns each kept index a unique slot.
                // CAST: i < input.len() <= u32::MAX, asserted at entry.
                unsafe { out_ref.write(positions[i], i as u32) };
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_order_small() {
        let v = [5u32, 2, 8, 1, 9];
        assert_eq!(compact(&v, |&x| x > 4), vec![5, 8, 9]);
    }

    #[test]
    fn keeps_order_large_parallel() {
        let v: Vec<u32> = (0..200_000).collect();
        let got = compact(&v, |&x| x % 3 == 0);
        let want: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn all_and_none() {
        let v: Vec<u32> = (0..10_000).collect();
        assert_eq!(compact(&v, |_| true), v);
        assert!(compact(&v, |_| false).is_empty());
    }

    #[test]
    fn compact_map_transforms() {
        let v: Vec<u32> = (0..50_000).collect();
        let got = compact_map(&v, |&x| (x % 2 == 0).then_some(x * 10));
        assert_eq!(got.len(), 25_000);
        assert_eq!(got[0], 0);
        assert_eq!(got[1], 20);
        assert_eq!(*got.last().unwrap(), 499_980);
    }

    #[test]
    fn indices_match_positions() {
        let v = [10u32, 0, 30, 0, 50];
        assert_eq!(compact_indices(&v, |&x| x > 0), vec![0, 2, 4]);
        let big: Vec<u32> = (0..100_000).map(|i| i % 5).collect();
        let got = compact_indices(&big, |&x| x == 4);
        assert_eq!(got.len(), 20_000);
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert!(got.iter().all(|&i| big[i as usize] == 4));
    }
}
