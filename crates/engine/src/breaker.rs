//! Per-key circuit breaker for shedding traffic to a failing primitive.
//!
//! The serving layer isolates operator panics per request, but a
//! primitive that panics on *every* request (a poisoned code path, a
//! fault-injection campaign) would still burn a worker slot per attempt.
//! The breaker watches consecutive failures per key (one key per
//! primitive): after `threshold` consecutive failures it **opens** and
//! sheds that key's traffic with a structured error carrying a
//! retry-after hint; once the cool-down passes, a single **half-open**
//! probe is admitted — success closes the circuit, failure re-opens it
//! for another cool-down.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Breaker state for one key, as reported by [`CircuitBreaker::snapshot`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are shed until the cool-down passes.
    Open,
    /// Cool-down elapsed: one probe request is in flight.
    HalfOpen,
}

impl BreakerState {
    /// Stable lower-case name for JSON metrics.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// Admission decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Run the request.
    Allow,
    /// Shed it: the circuit is open; retry after the hint.
    Shed {
        /// Time remaining until the next half-open probe is admitted.
        retry_after: Duration,
    },
}

#[derive(Clone, Copy)]
enum Cell {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

struct Snapshot {
    key: String,
    state: BreakerState,
    consecutive_failures: u32,
}

/// One breaker entry in a [`CircuitBreaker::snapshot`].
pub struct BreakerEntry {
    /// The key (primitive name).
    pub key: String,
    /// Current state.
    pub state: BreakerState,
    /// Consecutive failures observed while closed (0 once open).
    pub consecutive_failures: u32,
}

/// Keyed circuit breaker: trips a key after `threshold` consecutive
/// failures, sheds its traffic for `cooldown`, then admits a single
/// half-open probe. All methods take `&self`; keys are created lazily.
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    cells: Mutex<HashMap<String, Cell>>,
}

impl CircuitBreaker {
    /// Creates a breaker tripping after `threshold` consecutive failures
    /// (clamped to at least 1) and cooling down for `cooldown`.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            cells: Mutex::new(HashMap::new()),
        }
    }

    /// The cells map holds plain state with no cross-entry invariant, so
    /// a poisoned lock (panic while held) safely yields the inner value.
    fn lock(&self) -> MutexGuard<'_, HashMap<String, Cell>> {
        self.cells.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Decides whether a request for `key` may run right now. An open
    /// circuit whose cool-down has elapsed transitions to half-open and
    /// admits this request as the probe; further requests are shed until
    /// the probe reports back.
    pub fn admit(&self, key: &str) -> Admission {
        let mut cells = self.lock();
        let cell =
            cells.entry(key.to_string()).or_insert(Cell::Closed { consecutive_failures: 0 });
        match *cell {
            Cell::Closed { .. } => Admission::Allow,
            Cell::HalfOpen => Admission::Shed { retry_after: self.cooldown },
            Cell::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    *cell = Cell::HalfOpen;
                    Admission::Allow
                } else {
                    Admission::Shed { retry_after: until - now }
                }
            }
        }
    }

    /// Reports a successful run for `key`: closes the circuit and resets
    /// the failure streak.
    pub fn record_success(&self, key: &str) {
        self.lock().insert(key.to_string(), Cell::Closed { consecutive_failures: 0 });
    }

    /// Reports a failed (panicked) run for `key`: extends the failure
    /// streak and opens the circuit when it reaches the threshold. A
    /// failed half-open probe re-opens immediately.
    pub fn record_failure(&self, key: &str) {
        let mut cells = self.lock();
        let cell =
            cells.entry(key.to_string()).or_insert(Cell::Closed { consecutive_failures: 0 });
        *cell = match *cell {
            Cell::Closed { consecutive_failures } => {
                let streak = consecutive_failures.saturating_add(1);
                if streak >= self.threshold {
                    Cell::Open { until: Instant::now() + self.cooldown }
                } else {
                    Cell::Closed { consecutive_failures: streak }
                }
            }
            // a failed probe (or a late failure from a request admitted
            // before the trip) restarts the cool-down
            Cell::HalfOpen | Cell::Open { .. } => {
                Cell::Open { until: Instant::now() + self.cooldown }
            }
        };
    }

    /// Current state of `key` (Closed if never seen).
    pub fn state(&self, key: &str) -> BreakerState {
        match self.lock().get(key) {
            None | Some(Cell::Closed { .. }) => BreakerState::Closed,
            Some(Cell::Open { .. }) => BreakerState::Open,
            Some(Cell::HalfOpen) => BreakerState::HalfOpen,
        }
    }

    /// All keys with their states, sorted by key for deterministic
    /// metrics output.
    pub fn snapshot(&self) -> Vec<BreakerEntry> {
        let mut rows: Vec<Snapshot> = self
            .lock()
            .iter()
            .map(|(key, cell)| Snapshot {
                key: key.clone(),
                state: match cell {
                    Cell::Closed { .. } => BreakerState::Closed,
                    Cell::Open { .. } => BreakerState::Open,
                    Cell::HalfOpen => BreakerState::HalfOpen,
                },
                consecutive_failures: match cell {
                    Cell::Closed { consecutive_failures } => *consecutive_failures,
                    _ => 0,
                },
            })
            .collect();
        rows.sort_by(|a, b| a.key.cmp(&b.key));
        rows.into_iter()
            .map(|s| BreakerEntry {
                key: s.key,
                state: s.state,
                consecutive_failures: s.consecutive_failures,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        assert_eq!(b.admit("bfs"), Admission::Allow);
        b.record_failure("bfs");
        b.record_failure("bfs");
        assert_eq!(b.admit("bfs"), Admission::Allow, "below threshold");
        b.record_failure("bfs");
        assert_eq!(b.state("bfs"), BreakerState::Open);
        assert!(matches!(b.admit("bfs"), Admission::Shed { .. }));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(2, Duration::from_secs(60));
        b.record_failure("cc");
        b.record_success("cc");
        b.record_failure("cc");
        assert_eq!(b.state("cc"), BreakerState::Closed, "streak was reset");
        b.record_failure("cc");
        assert_eq!(b.state("cc"), BreakerState::Open);
    }

    #[test]
    fn keys_are_independent() {
        let b = CircuitBreaker::new(1, Duration::from_secs(60));
        b.record_failure("bfs");
        assert!(matches!(b.admit("bfs"), Admission::Shed { .. }));
        assert_eq!(b.admit("pagerank"), Admission::Allow);
    }

    #[test]
    fn half_open_probe_closes_on_success_and_reopens_on_failure() {
        let b = CircuitBreaker::new(1, Duration::from_millis(10));
        b.record_failure("bfs");
        assert!(matches!(b.admit("bfs"), Admission::Shed { .. }));
        std::thread::sleep(Duration::from_millis(20));
        // cool-down elapsed: one probe admitted, followers still shed
        assert_eq!(b.admit("bfs"), Admission::Allow);
        assert_eq!(b.state("bfs"), BreakerState::HalfOpen);
        assert!(matches!(b.admit("bfs"), Admission::Shed { .. }));
        b.record_failure("bfs");
        assert_eq!(b.state("bfs"), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(b.admit("bfs"), Admission::Allow);
        b.record_success("bfs");
        assert_eq!(b.state("bfs"), BreakerState::Closed);
        assert_eq!(b.admit("bfs"), Admission::Allow);
    }

    #[test]
    fn half_open_race_admits_exactly_one_probe() {
        // Two workers hitting admit() the instant the cool-down lapses
        // must resolve to exactly one probe: the mutex serializes the
        // Open->HalfOpen transition, and the loser sees HalfOpen. Run
        // many rounds to give a regression a real chance to interleave.
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::{Arc, Barrier};
        for round in 0..50 {
            let b = Arc::new(CircuitBreaker::new(1, Duration::from_millis(1)));
            b.record_failure("bfs");
            std::thread::sleep(Duration::from_millis(3));
            let allowed = Arc::new(AtomicU32::new(0));
            let gate = Arc::new(Barrier::new(2));
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    let b = Arc::clone(&b);
                    let allowed = Arc::clone(&allowed);
                    let gate = Arc::clone(&gate);
                    std::thread::spawn(move || {
                        gate.wait();
                        if b.admit("bfs") == Admission::Allow {
                            // ORDERING: Relaxed — relaxed-counter, read
                            // only after join.
                            allowed.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            assert_eq!(
                allowed.load(Ordering::Relaxed),
                1,
                "round {round}: exactly one half-open probe may run"
            );
            assert_eq!(b.state("bfs"), BreakerState::HalfOpen);
        }
    }

    #[test]
    fn snapshot_is_sorted_and_reports_streaks() {
        let b = CircuitBreaker::new(3, Duration::from_secs(60));
        b.record_failure("sssp");
        b.record_failure("bfs");
        b.record_failure("bfs");
        b.record_failure("bfs");
        let snap = b.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].key, "bfs");
        assert_eq!(snap[0].state, BreakerState::Open);
        assert_eq!(snap[1].key, "sssp");
        assert_eq!(snap[1].state, BreakerState::Closed);
        assert_eq!(snap[1].consecutive_failures, 1);
    }
}
