//! Frontier storage: the data structure at the center of the paper's
//! abstraction. A frontier is "a subset of the edges or vertices within
//! the graph that is currently of interest"; operators consume the
//! current frontier and produce the next, ping-ponging between two
//! buffers (the multi-buffer scheme of GPU BFS implementations).
//!
//! Frontiers are *dual-representation*: push-direction operators use the
//! sparse id list held here, while the pull direction operates on the
//! dense [`crate::bitmap::PooledBitmap`] form. Conversion is lazy — it
//! happens only at the Beamer direction switch
//! ([`crate::bitmap::PooledBitmap::fill_from_frontier`] going in,
//! [`crate::bitmap::PooledBitmap::push_ones_into`] coming back) — so
//! push-only runs never touch a bitmap.

/// A frontier of element ids (vertex ids or edge ids — the interpretation
/// is carried by the operator, since Gunrock "has supported both vertex
/// and edge frontiers [...] and can easily switch between them").
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Frontier {
    items: Vec<u32>,
}

impl Frontier {
    /// An empty frontier.
    pub fn new() -> Self {
        Frontier { items: Vec::new() }
    }

    /// An empty frontier with preallocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Frontier { items: Vec::with_capacity(cap) }
    }

    /// A frontier holding a single element (e.g. the BFS/SSSP source).
    pub fn single(id: u32) -> Self {
        Frontier { items: vec![id] }
    }

    /// A frontier over all ids `0..n` (e.g. PageRank and CC start with
    /// every vertex / edge in the frontier).
    pub fn full(n: usize) -> Self {
        // CAST: n is a vertex count, capped below u32::MAX by Csr::validate.
        Frontier { items: (0..n as u32).collect() }
    }

    /// Wraps an existing id vector.
    pub fn from_vec(items: Vec<u32>) -> Self {
        Frontier { items }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the frontier is empty — the usual convergence criterion.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.items
    }

    /// Consumes the frontier, returning its id vector.
    pub fn into_vec(self) -> Vec<u32> {
        self.items
    }

    /// Mutable access for in-place construction.
    #[inline]
    pub fn as_mut_vec(&mut self) -> &mut Vec<u32> {
        &mut self.items
    }

    /// Removes all elements, keeping capacity (buffer reuse across
    /// iterations, as the perf guide recommends).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Appends an element.
    #[inline]
    pub fn push(&mut self, id: u32) {
        self.items.push(id);
    }
}

impl FromIterator<u32> for Frontier {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        Frontier { items: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a Frontier {
    type Item = u32;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, u32>>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter().copied()
    }
}

/// The ping-pong buffer pair: operators read `current` and emit into
/// `next`; `flip` swaps them between bulk-synchronous steps.
#[derive(Clone, Debug, Default)]
pub struct FrontierPair {
    /// The frontier operators read this step.
    pub current: Frontier,
    /// The frontier operators emit into this step.
    pub next: Frontier,
}

impl FrontierPair {
    /// Starts with `initial` as the current frontier.
    pub fn new(initial: Frontier) -> Self {
        FrontierPair { current: initial, next: Frontier::new() }
    }

    /// Swaps current/next and clears the new next buffer.
    pub fn flip(&mut self) {
        std::mem::swap(&mut self.current, &mut self.next);
        self.next.clear();
    }

    /// Replaces the current frontier wholesale (used when an operator
    /// produced a fresh vector, e.g. via compact).
    pub fn replace_current(&mut self, f: Frontier) {
        self.current = f;
        self.next.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert!(Frontier::new().is_empty());
        assert_eq!(Frontier::single(7).as_slice(), &[7]);
        assert_eq!(Frontier::full(3).as_slice(), &[0, 1, 2]);
        assert_eq!(Frontier::from_vec(vec![2, 4]).len(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut f = Frontier::with_capacity(100);
        for i in 0..50 {
            f.push(i);
        }
        let cap = f.as_mut_vec().capacity();
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.as_mut_vec().capacity(), cap);
    }

    #[test]
    fn pair_flip_swaps_and_clears() {
        let mut pair = FrontierPair::new(Frontier::single(1));
        pair.next.push(2);
        pair.next.push(3);
        pair.flip();
        assert_eq!(pair.current.as_slice(), &[2, 3]);
        assert!(pair.next.is_empty());
    }

    #[test]
    fn iteration_and_collect() {
        let f: Frontier = (0..5u32).filter(|x| x % 2 == 0).collect();
        assert_eq!(f.as_slice(), &[0, 2, 4]);
        let doubled: Vec<u32> = (&f).into_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 4, 8]);
    }
}
