//! A shared mutable slice for scatter-style parallel writes.
//!
//! Scan-then-scatter kernels (compact, load-balanced advance output) know
//! statically that every output index is written by exactly one task, but
//! the borrow checker cannot see that. `UnsafeSlice` is the standard HPC
//! escape hatch: a `Sync` wrapper over a raw slice whose `write` is
//! `unsafe`, with the disjointness obligation documented at each call
//! site.
//!
//! The obligation is also *checked*, at three strictness levels:
//!
//! * release builds — no checking beyond the slice bounds check; writes
//!   compile to a plain store.
//! * debug builds — a per-index write tag detects two writes to the same
//!   index within one phase (`debug_assert!`-grade, no call sites).
//! * `--features racecheck` — the full shadow table in
//!   [`crate::racecheck`]: write/write and write/read conflicts panic
//!   with **both** call sites and thread ids.
//!
//! A phase is delimited per slice: construction starts phase 0, and
//! [`UnsafeSlice::begin_phase`] marks the bulk-synchronous barrier
//! between two sequential parallel loops that reuse one slice.

use std::cell::UnsafeCell;

#[cfg(any(debug_assertions, feature = "racecheck"))]
use std::sync::atomic::{AtomicU64, Ordering};

/// A wrapper over `&mut [T]` allowing concurrent writes to *disjoint*
/// indices from multiple threads.
pub struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
    /// Phase counter for the conflict checkers; per-slice so detection
    /// is deterministic even when unrelated slices are in flight.
    #[cfg(any(debug_assertions, feature = "racecheck"))]
    phase: AtomicU64,
    /// Full shadow state: last writer/reader per index with call sites.
    #[cfg(feature = "racecheck")]
    shadow: crate::racecheck::shadow::Shadow,
    /// Lightweight debug tag per index: `phase + 1` of the last write
    /// (0 = never written). Catches same-phase double writes in every
    /// debug build, without the racecheck feature.
    #[cfg(all(debug_assertions, not(feature = "racecheck")))]
    write_tags: Vec<AtomicU64>,
}

// SAFETY: the only way to touch the data is through `write`/`read`, whose
// contracts require callers to guarantee disjointness (or
// synchronization); the checker fields are internally synchronized.
unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}

// SAFETY: same argument as Send — shared access is mediated entirely by
// the unsafe `write`/`read` contracts; no interior state is exposed.
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        #[cfg(any(debug_assertions, feature = "racecheck"))]
        let len = slice.len();
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        UnsafeSlice {
            // SAFETY: [T] and [UnsafeCell<T>] have identical layout, and
            // the cast borrows the caller's exclusive &mut for 'a.
            slice: unsafe { &*ptr },
            #[cfg(any(debug_assertions, feature = "racecheck"))]
            phase: AtomicU64::new(0),
            #[cfg(feature = "racecheck")]
            shadow: crate::racecheck::shadow::Shadow::new(len),
            #[cfg(all(debug_assertions, not(feature = "racecheck")))]
            write_tags: (0..len).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Marks a bulk-synchronous phase boundary for *this* slice: call at
    /// the barrier between two sequential parallel loops that reuse one
    /// slice, so the conflict checkers do not mistake the second loop's
    /// writes for races against the first's. A no-op in unchecked
    /// builds.
    ///
    /// Requires `&mut self` — a phase boundary is a serial point by
    /// definition, so demanding exclusive access is free and makes it
    /// impossible to bump the phase while a parallel loop still holds
    /// shared references.
    pub fn begin_phase(&mut self) {
        #[cfg(any(debug_assertions, feature = "racecheck"))]
        // ORDERING: Relaxed — called at a serial point (exclusive &mut
        // borrow); the rayon join barrier provides the happens-before.
        self.phase.fetch_add(1, Ordering::Relaxed);
    }

    /// Current per-slice phase (checked builds only).
    #[cfg(any(debug_assertions, feature = "racecheck"))]
    #[inline]
    fn current_phase(&self) -> u64 {
        // ORDERING: Relaxed — phase changes only at serial points.
        self.phase.load(Ordering::Relaxed)
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No other thread may read or write `index` concurrently; each index
    /// must be written by at most one task per parallel phase (see
    /// [`UnsafeSlice::begin_phase`]). Violations panic under
    /// `--features racecheck`, and same-phase double writes additionally
    /// trip a `debug_assert` in every debug build.
    #[inline]
    #[cfg_attr(feature = "racecheck", track_caller)]
    pub unsafe fn write(&self, index: usize, value: T) {
        debug_assert!(
            index < self.slice.len(),
            "UnsafeSlice::write out of bounds: index {index} >= len {}",
            self.slice.len()
        );
        #[cfg(feature = "racecheck")]
        self.shadow.record_write(index, self.current_phase(), std::panic::Location::caller());
        #[cfg(all(debug_assertions, not(feature = "racecheck")))]
        {
            let tag = self.current_phase() + 1;
            // ORDERING: Relaxed — the tag is a debug heuristic; a missed
            // cross-thread conflict here is caught by racecheck builds.
            let prev = self.write_tags[index].swap(tag, Ordering::Relaxed);
            debug_assert!(
                prev != tag,
                "UnsafeSlice::write: index {index} written twice in one parallel phase \
                 (phase {}); run with --features racecheck for both call sites",
                tag - 1
            );
        }
        *self.slice[index].get() = value;
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    /// No other thread may be writing `index` concurrently (concurrent
    /// reads are fine). Same-phase write/read overlaps panic under
    /// `--features racecheck` and trip a `debug_assert` in debug builds.
    #[inline]
    #[cfg_attr(feature = "racecheck", track_caller)]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(
            index < self.slice.len(),
            "UnsafeSlice::read out of bounds: index {index} >= len {}",
            self.slice.len()
        );
        #[cfg(feature = "racecheck")]
        self.shadow.record_read(index, self.current_phase(), std::panic::Location::caller());
        #[cfg(all(debug_assertions, not(feature = "racecheck")))]
        {
            // ORDERING: Relaxed — debug heuristic only, see write().
            let tag = self.write_tags[index].load(Ordering::Relaxed);
            debug_assert!(
                tag != self.current_phase() + 1,
                "UnsafeSlice::read: index {index} read in the same parallel phase it was \
                 written; run with --features racecheck for both call sites"
            );
        }
        *self.slice[index].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_writes() {
        let mut data = vec![0u32; 1000];
        {
            let out = UnsafeSlice::new(&mut data);
            (0..1000usize).into_par_iter().for_each(|i| {
                // SAFETY: each i is written exactly once.
                unsafe { out.write(i, i as u32 * 2) };
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }

    #[test]
    fn len_reflects_slice() {
        let mut data = vec![0u8; 5];
        let s = UnsafeSlice::new(&mut data);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }

    #[test]
    fn rewriting_after_begin_phase_is_legal() {
        // two sequential bulk-synchronous loops over one slice: legal as
        // long as the barrier is marked
        let mut data = vec![0u32; 64];
        let mut out = UnsafeSlice::new(&mut data);
        (0..64usize).into_par_iter().for_each(|i| {
            // SAFETY: each i written once in this phase.
            unsafe { out.write(i, 1) };
        });
        out.begin_phase();
        (0..64usize).into_par_iter().for_each(|i| {
            // SAFETY: each i written once in this phase.
            unsafe { out.write(i, 2) };
        });
        drop(out);
        assert!(data.iter().all(|&v| v == 2));
    }

    /// The regression the ISSUE demands: an intentionally overlapping
    /// write pair must be caught, with both call sites in the message.
    #[cfg(feature = "racecheck")]
    #[test]
    #[should_panic(expected = "racecheck: two writes to index 7")]
    fn racecheck_catches_same_index_write_write() {
        let mut data = vec![0u32; 16];
        let s = UnsafeSlice::new(&mut data);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // SAFETY: deliberately violating the contract under test.
                unsafe { s.write(7, 1) };
            });
        });
        // second write to the same index, same phase — from this thread,
        // so the should_panic harness observes it deterministically
        // SAFETY: deliberately violating the contract under test.
        unsafe { s.write(7, 2) };
    }

    #[cfg(feature = "racecheck")]
    #[test]
    #[should_panic(expected = "racecheck: write/read overlap on index 3")]
    fn racecheck_catches_write_read_overlap() {
        let mut data = vec![0u32; 8];
        let s = UnsafeSlice::new(&mut data);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // SAFETY: deliberately violating the contract under test.
                unsafe { s.write(3, 9) };
            });
        });
        // SAFETY: deliberately violating the contract under test.
        unsafe { s.read(3) };
    }

    #[cfg(feature = "racecheck")]
    #[test]
    fn racecheck_allows_disjoint_writes_and_cross_phase_reuse() {
        let mut data = vec![0u32; 32];
        let mut s = UnsafeSlice::new(&mut data);
        for i in 0..32 {
            // SAFETY: each index written once per phase.
            unsafe { s.write(i, 1) };
        }
        s.begin_phase();
        for i in 0..32 {
            // SAFETY: new phase — each index written once again.
            unsafe { s.write(i, 2) };
        }
        drop(s);
        assert!(data.iter().all(|&v| v == 2));
    }

    #[cfg(feature = "racecheck")]
    #[test]
    fn racecheck_allows_concurrent_reads() {
        let mut data = vec![5u32; 8];
        let s = UnsafeSlice::new(&mut data);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                // SAFETY: reads may overlap reads.
                assert_eq!(unsafe { s.read(2) }, 5);
            });
        });
        // SAFETY: reads may overlap reads.
        assert_eq!(unsafe { s.read(2) }, 5);
    }

    /// The always-on debug hardening: double writes are caught even
    /// without the racecheck feature (no call sites, but the invariant
    /// still trips in every `cargo test`).
    #[cfg(all(debug_assertions, not(feature = "racecheck")))]
    #[test]
    #[should_panic(expected = "written twice in one parallel phase")]
    fn debug_tags_catch_double_write() {
        let mut data = vec![0u32; 4];
        let s = UnsafeSlice::new(&mut data);
        // SAFETY: deliberately violating the contract under test.
        unsafe { s.write(1, 10) };
        // SAFETY: deliberately violating the contract under test.
        unsafe { s.write(1, 11) };
    }
}
