//! A shared mutable slice for scatter-style parallel writes.
//!
//! Scan-then-scatter kernels (compact, load-balanced advance output) know
//! statically that every output index is written by exactly one task, but
//! the borrow checker cannot see that. `UnsafeSlice` is the standard HPC
//! escape hatch: a `Sync` wrapper over a raw slice whose `write` is
//! `unsafe`, with the disjointness obligation documented at each call
//! site.

use std::cell::UnsafeCell;

/// A wrapper over `&mut [T]` allowing concurrent writes to *disjoint*
/// indices from multiple threads.
pub struct UnsafeSlice<'a, T> {
    slice: &'a [UnsafeCell<T>],
}

// SAFETY: the only way to touch the data is through `write`/`read`, whose
// contracts require callers to guarantee disjointness (or synchronization).
unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: [T] and [UnsafeCell<T>] have identical layout.
        let ptr = slice as *mut [T] as *const [UnsafeCell<T>];
        UnsafeSlice { slice: unsafe { &*ptr } }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.slice.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slice.is_empty()
    }

    /// Writes `value` at `index`.
    ///
    /// # Safety
    /// No other thread may read or write `index` concurrently; each index
    /// must be written by at most one task per parallel phase.
    #[inline]
    pub unsafe fn write(&self, index: usize, value: T) {
        *self.slice[index].get() = value;
    }

    /// Reads the value at `index`.
    ///
    /// # Safety
    /// No other thread may be writing `index` concurrently.
    #[inline]
    pub unsafe fn read(&self, index: usize) -> T
    where
        T: Copy,
    {
        *self.slice[index].get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_writes() {
        let mut data = vec![0u32; 1000];
        {
            let out = UnsafeSlice::new(&mut data);
            (0..1000usize).into_par_iter().for_each(|i| {
                // SAFETY: each i is written exactly once.
                unsafe { out.write(i, i as u32 * 2) };
            });
        }
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }

    #[test]
    fn len_reflects_slice() {
        let mut data = vec![0u8; 5];
        let s = UnsafeSlice::new(&mut data);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
    }
}
