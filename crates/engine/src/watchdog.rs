//! Hung-job detection: per-job heartbeats and a reaper thread.
//!
//! Safe Rust cannot kill a thread, so the watchdog escalates through
//! the same cooperative machinery the run guards already use:
//!
//! 1. **Healthy** — the job's [`Heartbeat`] ticks at every operator
//!    boundary (the stats `StepRecord` tick points: operator entry and
//!    `end_iteration`).
//! 2. **Stalled** — no tick for `interval`: the watchdog raises the
//!    job's cancel flag, so a job that still polls its guard exits with
//!    `RunOutcome::Cancelled` at the next boundary.
//! 3. **Killed** — still no tick `grace` later: the watchdog marks the
//!    heartbeat killed and fires the job's `on_kill` callback exactly
//!    once. The callback is the server's chance to answer the client
//!    (`watchdog_killed`), feed the circuit breaker, and count the
//!    kill; a *cooperatively* stalled operator (the `stall` fault site)
//!    polls [`Heartbeat::is_killed`] and panics, handing the worker
//!    back through the usual `catch_unwind` → poisoned-context path. A
//!    truly wedged operator cannot be reclaimed from safe code — the
//!    callback still unblocks the client and the breaker sheds load
//!    from the burned worker's primitive.
//!
//! Detection latency is bounded: the reaper polls at `interval / 8`
//! (floored at 1ms), so a stall is cancelled within `interval +
//! interval/8` and killed within `interval + grace + interval/4` — with
//! the default `grace = interval / 2` that is `< 2 * interval`, the
//! bound the acceptance tests assert.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A job's liveness pulse, shared between the running job (which
/// [`tick`](Heartbeat::tick)s it) and the watchdog (which watches the
/// counter move).
#[derive(Debug, Default)]
pub struct Heartbeat {
    ticks: AtomicU64,
    killed: AtomicBool,
}

impl Heartbeat {
    /// A fresh, healthy heartbeat.
    pub fn new() -> Heartbeat {
        Heartbeat::default()
    }

    /// Records one unit of progress (called at operator boundaries).
    pub fn tick(&self) {
        // ORDERING: Relaxed — the counter is a monotonic progress
        // signal; the watchdog only compares successive reads.
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Progress ticks so far.
    pub fn ticks(&self) -> u64 {
        // ORDERING: Relaxed — see tick.
        self.ticks.load(Ordering::Relaxed)
    }

    /// Marks the job reaped. Idempotent.
    pub fn kill(&self) {
        // ORDERING: Release — pairs with the Acquire in is_killed so a
        // stalled operator that observes the kill also observes every
        // write the watchdog made before it.
        self.killed.store(true, Ordering::Release);
    }

    /// Whether the watchdog has given up on this job.
    pub fn is_killed(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release in kill.
        self.killed.load(Ordering::Acquire)
    }
}

/// Watchdog timing knobs.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// No heartbeat tick for this long marks a job stalled (cancel).
    pub interval: Duration,
    /// A stalled job that stays silent this much longer is killed.
    pub grace: Duration,
}

impl WatchdogConfig {
    /// The default escalation schedule: cancel after `interval`, kill
    /// `interval / 2` later (total reap time `< 2 * interval`).
    pub fn new(interval: Duration) -> WatchdogConfig {
        WatchdogConfig { interval, grace: interval / crate::config::WATCHDOG_GRACE_DIVISOR }
    }

    /// Overrides the stall-to-kill grace period.
    pub fn with_grace(mut self, grace: Duration) -> WatchdogConfig {
        self.grace = grace;
        self
    }
}

/// What the reaper does when a job exhausts its grace period.
type KillCallback = Box<dyn FnOnce() + Send>;

struct WatchedJob {
    heartbeat: Arc<Heartbeat>,
    cancel: Arc<AtomicBool>,
    on_kill: Option<KillCallback>,
    /// Tick count at the last poll that showed progress.
    last_ticks: u64,
    /// When that progress was observed.
    last_progress: Instant,
    /// Set when the cancel flag was raised for silence.
    stalled_at: Option<Instant>,
}

#[derive(Default)]
struct Registry {
    jobs: HashMap<u64, WatchedJob>,
    shutdown: bool,
}

struct Shared {
    registry: Mutex<Registry>,
    /// Wakes the reaper early on shutdown (prompt drain).
    wake: Condvar,
    kills: AtomicU64,
}

impl Shared {
    fn registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        // A panicking kill callback must not wedge every later job
        // (same poison stance as BoundedQueue).
        self.registry.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Deregisters its job when dropped, so a finished job can never be
/// reaped retroactively.
pub struct WatchGuard {
    shared: Arc<Shared>,
    id: u64,
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        self.shared.registry().jobs.remove(&self.id);
    }
}

/// The reaper: one background thread polling every registered job's
/// heartbeat against the configured stall schedule.
pub struct Watchdog {
    shared: Arc<Shared>,
    cfg: WatchdogConfig,
    next_id: AtomicU64,
    reaper: Option<std::thread::JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the reaper thread.
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry::default()),
            wake: Condvar::new(),
            kills: AtomicU64::new(0),
        });
        let poll =
            (cfg.interval / crate::config::WATCHDOG_POLL_DIVISOR).max(Duration::from_millis(1));
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("gunrock-watchdog".into())
                .spawn(move || reaper_loop(&shared, cfg, poll))
                .ok()
        };
        Watchdog { shared, cfg, next_id: AtomicU64::new(0), reaper }
    }

    /// The schedule this watchdog enforces.
    pub fn config(&self) -> WatchdogConfig {
        self.cfg
    }

    /// Jobs killed over the watchdog's lifetime.
    pub fn kills(&self) -> u64 {
        // ORDERING: Relaxed — monitoring counter.
        self.shared.kills.load(Ordering::Relaxed)
    }

    /// Starts watching a job: `cancel` is raised when the heartbeat
    /// goes silent for `interval`, `on_kill` fires once if the silence
    /// outlives the grace period too. Dropping the guard stops the
    /// watch.
    pub fn watch(
        &self,
        heartbeat: Arc<Heartbeat>,
        cancel: Arc<AtomicBool>,
        on_kill: KillCallback,
    ) -> WatchGuard {
        // ORDERING: Relaxed — the id is only a unique key.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let job = WatchedJob {
            last_ticks: heartbeat.ticks(),
            last_progress: Instant::now(),
            stalled_at: None,
            heartbeat,
            cancel,
            on_kill: Some(on_kill),
        };
        self.shared.registry().jobs.insert(id, job);
        WatchGuard { shared: Arc::clone(&self.shared), id }
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.shared.registry().shutdown = true;
        self.shared.wake.notify_all();
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
    }
}

fn reaper_loop(shared: &Shared, cfg: WatchdogConfig, poll: Duration) {
    loop {
        // fire callbacks outside the registry lock: a kill callback is
        // arbitrary server code and must not deadlock registration
        // ALLOC-OK(reaper thread, not an operator hot path; empty unless a kill fires)
        let mut fired: Vec<KillCallback> = Vec::new();
        {
            let mut reg = shared.registry();
            if reg.shutdown {
                return;
            }
            let now = Instant::now();
            // ALLOC-OK(reaper thread, not an operator hot path; empty unless a kill fires)
            let mut reaped: Vec<u64> = Vec::new();
            for (&id, job) in reg.jobs.iter_mut() {
                let ticks = job.heartbeat.ticks();
                if ticks != job.last_ticks {
                    // progress: a stalled job that resumes is healthy
                    // again and gets a fresh escalation clock
                    job.last_ticks = ticks;
                    job.last_progress = now;
                    job.stalled_at = None;
                    continue;
                }
                if now.duration_since(job.last_progress) < cfg.interval {
                    continue;
                }
                let stalled_at = *job.stalled_at.get_or_insert_with(|| {
                    // ORDERING: Release — pairs with the Acquire in the
                    // run guard's cancel_requested poll.
                    job.cancel.store(true, Ordering::Release);
                    now
                });
                if now.duration_since(stalled_at) >= cfg.grace {
                    job.heartbeat.kill();
                    if let Some(cb) = job.on_kill.take() {
                        fired.push(cb);
                    }
                    reaped.push(id);
                }
            }
            for id in reaped {
                reg.jobs.remove(&id);
            }
        }
        // ORDERING: Relaxed — monitoring counter.
        shared.kills.fetch_add(fired.len() as u64, Ordering::Relaxed);
        for cb in fired {
            cb();
        }
        let reg = shared.registry();
        if reg.shutdown {
            return;
        }
        // the guard returned by wait_timeout is dropped immediately;
        // the next iteration re-locks and re-checks shutdown
        let _ = shared.wake.wait_timeout(reg, poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INTERVAL: Duration = Duration::from_millis(80);

    fn wait_until(deadline: Duration, mut done: impl FnMut() -> bool) -> bool {
        let start = Instant::now();
        while start.elapsed() < deadline {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        done()
    }

    #[test]
    fn silent_job_is_cancelled_then_killed_within_two_intervals() {
        let dog = Watchdog::new(WatchdogConfig::new(INTERVAL));
        let hb = Arc::new(Heartbeat::new());
        let cancel = Arc::new(AtomicBool::new(false));
        let killed_cb = Arc::new(AtomicBool::new(false));
        let cb = Arc::clone(&killed_cb);
        let start = Instant::now();
        let _watch = dog.watch(
            Arc::clone(&hb),
            Arc::clone(&cancel),
            Box::new(move || {
                cb.store(true, Ordering::Release);
            }),
        );
        // never tick: the escalation ladder must fire in order
        assert!(
            wait_until(4 * INTERVAL, || cancel.load(Ordering::Acquire)),
            "stall never raised the cancel flag"
        );
        assert!(
            wait_until(4 * INTERVAL, || hb.is_killed()),
            "stall was never escalated to a kill"
        );
        // the acceptance bound: reaped within 2x the configured interval
        assert!(
            start.elapsed() < 2 * INTERVAL + Duration::from_millis(20),
            "kill took {:?}, bound is 2 * {INTERVAL:?}",
            start.elapsed()
        );
        assert!(wait_until(INTERVAL, || killed_cb.load(Ordering::Acquire)));
        assert_eq!(dog.kills(), 1);
    }

    #[test]
    fn heartbeating_job_is_never_killed() {
        // the false-positive case: slow (ticking at interval/4) but alive
        let dog = Watchdog::new(WatchdogConfig::new(INTERVAL));
        let hb = Arc::new(Heartbeat::new());
        let cancel = Arc::new(AtomicBool::new(false));
        let _watch = dog.watch(
            Arc::clone(&hb),
            Arc::clone(&cancel),
            Box::new(|| panic!("false-positive kill")),
        );
        let start = Instant::now();
        while start.elapsed() < 6 * INTERVAL {
            hb.tick();
            std::thread::sleep(INTERVAL / 4);
        }
        assert!(!cancel.load(Ordering::Acquire), "slow job was cancelled");
        assert!(!hb.is_killed(), "slow job was killed");
        assert_eq!(dog.kills(), 0);
    }

    #[test]
    fn dropping_the_guard_stops_the_watch() {
        let dog = Watchdog::new(WatchdogConfig::new(INTERVAL));
        let hb = Arc::new(Heartbeat::new());
        let cancel = Arc::new(AtomicBool::new(false));
        let watch =
            dog.watch(Arc::clone(&hb), Arc::clone(&cancel), Box::new(|| panic!("reaped")));
        drop(watch);
        std::thread::sleep(3 * INTERVAL);
        assert!(!cancel.load(Ordering::Acquire));
        assert!(!hb.is_killed());
    }

    #[test]
    fn a_recovered_stall_resets_the_escalation_clock() {
        // long grace so the job is stalled-but-not-killed when it recovers
        let dog = Watchdog::new(WatchdogConfig::new(INTERVAL).with_grace(10 * INTERVAL));
        let hb = Arc::new(Heartbeat::new());
        let cancel = Arc::new(AtomicBool::new(false));
        let _watch = dog.watch(Arc::clone(&hb), Arc::clone(&cancel), Box::new(|| {}));
        assert!(wait_until(4 * INTERVAL, || cancel.load(Ordering::Acquire)));
        // progress arrives: the job must be healthy again
        hb.tick();
        assert!(wait_until(INTERVAL, || {
            cancel.store(false, Ordering::Release);
            !hb.is_killed()
        }));
        std::thread::sleep(INTERVAL / 2);
        assert!(!cancel.load(Ordering::Acquire), "recovered job re-flagged without a stall");
        assert!(!hb.is_killed());
    }

    #[test]
    fn watchdog_drop_joins_the_reaper_promptly() {
        let dog = Watchdog::new(WatchdogConfig::new(Duration::from_secs(3600)));
        let start = Instant::now();
        drop(dog);
        assert!(start.elapsed() < Duration::from_secs(5), "drop blocked on the poll period");
    }
}
