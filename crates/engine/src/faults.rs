//! Seeded, deterministic fault injection.
//!
//! Production graph services meet faults the paper's benchmark setting
//! never sees: a functor that panics on one adversarial vertex, an
//! allocation that fails under memory pressure, a dataset file that was
//! truncated in transit. This module provides a [`FaultInjector`] that
//! *simulates* those failures at configurable rates, fully reproducible
//! from a single `u64` seed, so the recovery paths (catch_unwind
//! isolation, retry-with-fallback, checkpoint/resume) can be exercised
//! and asserted in tests instead of trusted on faith.
//!
//! Determinism: every decision is a pure function of `(seed, site,
//! draw-counter)` — a SplitMix64 finalizer over the seed XOR an FNV-1a
//! hash of the site name XOR the per-injector draw count. Because the
//! vendored rayon shim executes sequentially, the draw order is identical
//! across runs, so a failing seed replays exactly.
//!
//! The injector is carried by the core `Context` (library use) or
//! installed process-wide via the hooks in `vendor/rayon` and the
//! `gunrock-graph` loaders (CLI use, `--inject-faults`). When no injector
//! is present every hook is a single relaxed atomic load.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which failure class a hook is asking about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A panic thrown from inside an operator's functor loop.
    Panic,
    /// A simulated allocation / scratch-buffer failure, reported *before*
    /// the operator has any side effects (the retryable class).
    Alloc,
    /// An injected denial at the `pool:alloc` buffer-pool checkout site.
    /// Unlike [`FaultKind::Alloc`], this class is *not* absorbed by the
    /// advance retry-with-fallback guard: a fired checkout surfaces as a
    /// structured `BudgetDenied`, exactly like a real budget denial.
    PoolAlloc,
    /// A truncated or corrupted read in the graph loaders.
    Io,
    /// An operator that stops making progress (and stops heartbeating)
    /// without panicking — the hung-job class the watchdog reaps. A
    /// stalled site ignores the cooperative cancel flag by design; only
    /// a watchdog kill (or a hard cap) releases it.
    Stall,
}

impl FaultKind {
    /// Stable lowercase name used in messages and JSON.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Alloc => "alloc",
            FaultKind::PoolAlloc => "pool-alloc",
            FaultKind::Io => "io",
            FaultKind::Stall => "stall",
        }
    }
}

/// Injection rates per fault class plus the reproducibility seed.
///
/// A rate of `0.0` disables that class; `1.0` fires on every draw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability a functor-panic site fires.
    pub panic_rate: f64,
    /// Probability a simulated allocation failure fires.
    pub alloc_rate: f64,
    /// Probability a buffer-pool checkout is denied (structured failure).
    pub pool_alloc_rate: f64,
    /// Probability a loader read is truncated/corrupted.
    pub io_rate: f64,
    /// Probability an operator entry stalls (stops heartbeating) until
    /// the watchdog kills it.
    pub stall_rate: f64,
}

impl FaultPlan {
    /// A plan that never fires (all rates zero).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            panic_rate: 0.0,
            alloc_rate: 0.0,
            pool_alloc_rate: 0.0,
            io_rate: 0.0,
            stall_rate: 0.0,
        }
    }

    /// Sets one class's rate (builder form for tests and tools).
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        match kind {
            FaultKind::Panic => self.panic_rate = rate,
            FaultKind::Alloc => self.alloc_rate = rate,
            FaultKind::PoolAlloc => self.pool_alloc_rate = rate,
            FaultKind::Io => self.io_rate = rate,
            FaultKind::Stall => self.stall_rate = rate,
        }
        self
    }

    /// Parses a `panic=R,alloc=R,pool-alloc=R,io=R,stall=R` spec (any subset,
    /// comma-separated, rates in `[0, 1]`), as accepted by the CLI's
    /// `--inject-faults`.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::none(seed);
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec {part:?}: expected kind=rate"))?;
            let rate: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad fault rate {value:?} for {key:?}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} for {key:?} outside [0, 1]"));
            }
            match key.trim() {
                "panic" => plan.panic_rate = rate,
                "alloc" => plan.alloc_rate = rate,
                "pool-alloc" => plan.pool_alloc_rate = rate,
                "io" => plan.io_rate = rate,
                "stall" => plan.stall_rate = rate,
                other => return Err(format!("unknown fault kind {other:?}")),
            }
        }
        Ok(plan)
    }

    /// The rate configured for one fault class.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Panic => self.panic_rate,
            FaultKind::Alloc => self.alloc_rate,
            FaultKind::PoolAlloc => self.pool_alloc_rate,
            FaultKind::Io => self.io_rate,
            FaultKind::Stall => self.stall_rate,
        }
    }

    /// True when at least one class can fire.
    pub fn is_active(&self) -> bool {
        self.panic_rate > 0.0
            || self.alloc_rate > 0.0
            || self.pool_alloc_rate > 0.0
            || self.io_rate > 0.0
            || self.stall_rate > 0.0
    }
}

/// 64-bit FNV-1a over a byte string (site names are short; this is not
/// on any hot path).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: a high-quality 64-bit mix used to turn
/// `(seed, site, counter)` into an independent uniform draw.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The deterministic fault source: hands out reproducible fail/pass
/// decisions keyed by `(seed, site, draw counter)`.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    draws: AtomicU64,
}

impl FaultInjector {
    /// Injector over a plan.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, draws: AtomicU64::new(0) }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The reproducibility seed.
    pub fn seed(&self) -> u64 {
        self.plan.seed
    }

    /// Number of decisions drawn so far.
    pub fn draws(&self) -> u64 {
        // ORDERING: Relaxed — relaxed-load; fetch_add's modification order
        // alone hands every draw a unique slot, no payload is published
        // through it.
        self.draws.load(Ordering::Relaxed)
    }

    /// One uniform draw in `[0, 1)` for `site`, consuming a counter slot.
    fn draw(&self, site: &str) -> f64 {
        // ORDERING: Relaxed — relaxed-counter; fetch_add's modification
        // order alone hands every draw a unique slot, no payload is
        // published through it.
        let n = self.draws.fetch_add(1, Ordering::Relaxed);
        let bits = splitmix64(self.plan.seed ^ fnv1a(site.as_bytes()) ^ n.rotate_left(17));
        // 53 mantissa bits -> uniform in [0, 1)
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Should the `kind` fault at `site` fire now? Always consumes one
    /// draw when the class is enabled, so enabling one class never
    /// perturbs another class's schedule.
    pub fn should_fail(&self, kind: FaultKind, site: &str) -> bool {
        let rate = self.plan.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        self.draw(site) < rate
    }

    /// Panics (an injected functor panic) if the panic class fires at
    /// `site`. Callers sit inside the operator `catch_unwind` boundary,
    /// so the panic surfaces as `GunrockError::OperatorPanic`.
    pub fn maybe_panic(&self, site: &str) {
        if self.should_fail(FaultKind::Panic, site) {
            // LINT-ALLOW(panic): the injected fault IS a panic — the chaos
            // harness exists to prove the catch_unwind boundary contains it.
            panic!("injected fault: functor panic at {site} (seed {:#x})", self.plan.seed);
        }
    }

    /// A deterministic value in `[0, n)` for choosing e.g. a byte offset
    /// to truncate or corrupt at. Returns 0 when `n == 0`.
    pub fn uniform(&self, site: &str, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let x = self.draw(site);
        ((x * n as f64) as u64).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_subsets_and_rejects_garbage() {
        let p = FaultPlan::parse("panic=0.25,io=1.0", 7).expect("valid spec");
        assert_eq!(p.panic_rate, 0.25);
        assert_eq!(p.alloc_rate, 0.0);
        assert_eq!(p.io_rate, 1.0);
        assert_eq!(p.seed, 7);
        assert!(p.is_active());
        let p = FaultPlan::parse("pool-alloc=0.5", 7).expect("valid spec");
        assert_eq!(p.pool_alloc_rate, 0.5);
        assert_eq!(p.rate(FaultKind::PoolAlloc), 0.5);
        assert!(p.is_active());
        assert!(FaultPlan::parse("panic", 0).is_err());
        assert!(FaultPlan::parse("panic=2.0", 0).is_err());
        assert!(FaultPlan::parse("frobnicate=0.1", 0).is_err());
        assert!(!FaultPlan::parse("", 0).expect("empty spec is a no-op plan").is_active());
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new(FaultPlan {
                seed,
                panic_rate: 0.3,
                alloc_rate: 0.3,
                pool_alloc_rate: 0.0,
                io_rate: 0.0,
                stall_rate: 0.0,
            });
            (0..64)
                .map(|i| {
                    let kind = if i % 2 == 0 { FaultKind::Panic } else { FaultKind::Alloc };
                    inj.should_fail(kind, "advance:load_balanced")
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should give different schedules");
    }

    #[test]
    fn zero_rate_never_fires_and_consumes_no_draws() {
        let inj = FaultInjector::new(FaultPlan::none(9));
        for _ in 0..100 {
            assert!(!inj.should_fail(FaultKind::Panic, "x"));
        }
        assert_eq!(inj.draws(), 0);
    }

    #[test]
    fn full_rate_always_fires() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            panic_rate: 1.0,
            alloc_rate: 1.0,
            pool_alloc_rate: 1.0,
            io_rate: 1.0,
            stall_rate: 1.0,
        });
        for kind in [FaultKind::Panic, FaultKind::Alloc, FaultKind::PoolAlloc, FaultKind::Io] {
            assert!(inj.should_fail(kind, "site"));
        }
    }

    #[test]
    fn rates_are_roughly_honored() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 5,
            panic_rate: 0.2,
            alloc_rate: 0.0,
            pool_alloc_rate: 0.0,
            io_rate: 0.0,
            stall_rate: 0.0,
        });
        let fired = (0..10_000).filter(|_| inj.should_fail(FaultKind::Panic, "filter")).count();
        assert!((1_500..2_500).contains(&fired), "0.2 rate fired {fired}/10000 times");
    }

    #[test]
    fn maybe_panic_panics_with_site_in_payload() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 2,
            panic_rate: 1.0,
            alloc_rate: 0.0,
            pool_alloc_rate: 0.0,
            io_rate: 0.0,
            stall_rate: 0.0,
        });
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.maybe_panic("compute:for_each")
        }))
        .expect_err("rate 1.0 must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string payload".to_string());
        assert!(msg.contains("compute:for_each"), "{msg}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let inj = FaultInjector::new(FaultPlan::none(3));
        assert_eq!(inj.uniform("io", 0), 0);
        for _ in 0..1000 {
            assert!(inj.uniform("io", 17) < 17);
        }
    }
}
