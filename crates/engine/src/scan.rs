//! Parallel prefix scan.
//!
//! §3 of the paper: scan is "a common and efficient parallel primitive
//! [used] to reorganize sparse and uneven workloads into dense and uniform
//! ones in all phases of graph processing". The load-balanced advance
//! scans frontier degrees to compute output offsets; compact-style filter
//! scans validity flags.
//!
//! Implementation: the classic three-phase chunked scan (per-chunk
//! reduce, scan of chunk sums, per-chunk downsweep), sequential below
//! [`crate::config::SEQUENTIAL_CUTOFF`].

use crate::config::SEQUENTIAL_CUTOFF;
use crate::unsafe_slice::UnsafeSlice;
use rayon::prelude::*;

/// Exclusive scan with a caller-supplied associative operator.
/// Returns the scanned vector and the total reduction.
pub fn scan_exclusive<T, F>(input: &[T], identity: T, op: F) -> (Vec<T>, T)
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let n = input.len();
    if n == 0 {
        return (Vec::new(), identity);
    }
    if n < SEQUENTIAL_CUTOFF || rayon::current_num_threads() == 1 {
        let mut out = Vec::with_capacity(n);
        let mut acc = identity;
        for &x in input {
            out.push(acc);
            acc = op(acc, x);
        }
        return (out, acc);
    }
    let chunk = n.div_ceil(rayon::current_num_threads() * 4).max(1);
    // Phase 1: per-chunk reductions.
    let mut sums: Vec<T> =
        input.par_chunks(chunk).map(|c| c.iter().fold(identity, |a, &b| op(a, b))).collect();
    // Phase 2: sequential scan of the (small) chunk sums.
    let mut acc = identity;
    for s in sums.iter_mut() {
        let prev = acc;
        acc = op(acc, *s);
        *s = prev;
    }
    let total = acc;
    // Phase 3: downsweep each chunk with its base offset.
    let mut out = vec![identity; n];
    {
        crate::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut out);
        input.par_chunks(chunk).zip(sums.par_iter()).enumerate().for_each(
            |(ci, (c, &base))| {
                let start = ci * chunk;
                let mut acc = base;
                for (i, &x) in c.iter().enumerate() {
                    // SAFETY: chunks cover disjoint ranges of `out`.
                    unsafe { out_ref.write(start + i, acc) };
                    acc = op(acc, x);
                }
            },
        );
    }
    (out, total)
}

/// Inclusive scan with a caller-supplied associative operator.
pub fn scan_inclusive<T, F>(input: &[T], identity: T, op: F) -> Vec<T>
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    let (mut out, _) = scan_exclusive(input, identity, &op);
    out.par_iter_mut().zip(input.par_iter()).for_each(|(o, &x)| *o = op(*o, x));
    out
}

/// Exclusive prefix sum of `u32` values (the workhorse: degree arrays,
/// validity flags). Returns `(offsets, total)`.
pub fn scan_exclusive_u32(input: &[u32]) -> (Vec<u32>, u32) {
    scan_exclusive(input, 0u32, |a, b| a + b)
}

/// Exclusive prefix sum of `u32` values into a caller-supplied buffer
/// (a pooled scratch in the zero-allocation advance path). The buffer
/// is cleared, then filled with the scanned offsets; returns the total.
/// Allocation-free when `out` already has capacity for the input
/// (except for the O(threads) chunk-sums vector on the parallel path,
/// amortized over at least [`SEQUENTIAL_CUTOFF`] elements).
pub fn scan_exclusive_u32_into(input: &[u32], out: &mut Vec<u32>) -> u32 {
    out.clear();
    let n = input.len();
    if n == 0 {
        return 0;
    }
    if n < SEQUENTIAL_CUTOFF || rayon::current_num_threads() == 1 {
        out.reserve(n);
        let mut acc = 0u32;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        return acc;
    }
    let chunk = n.div_ceil(rayon::current_num_threads() * 4).max(1);
    // Phase 1: per-chunk reductions.
    let mut sums: Vec<u32> = input.par_chunks(chunk).map(|c| c.iter().sum()).collect();
    // Phase 2: sequential scan of the (small) chunk sums.
    let mut acc = 0u32;
    for s in sums.iter_mut() {
        let prev = acc;
        acc += *s;
        *s = prev;
    }
    let total = acc;
    // Phase 3: downsweep each chunk with its base offset.
    out.resize(n, 0);
    {
        crate::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(out);
        input.par_chunks(chunk).zip(sums.par_iter()).enumerate().for_each(
            |(ci, (c, &base))| {
                let start = ci * chunk;
                let mut acc = base;
                for (i, &x) in c.iter().enumerate() {
                    // SAFETY: chunks cover disjoint ranges of `out`.
                    unsafe { out_ref.write(start + i, acc) };
                    acc += x;
                }
            },
        );
    }
    total
}

/// Exclusive prefix sum of `usize` values.
pub fn scan_exclusive_usize(input: &[usize]) -> (Vec<usize>, usize) {
    scan_exclusive(input, 0usize, |a, b| a + b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_exclusive(input: &[u32]) -> (Vec<u32>, u32) {
        let mut out = Vec::with_capacity(input.len());
        let mut acc = 0u32;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        (out, acc)
    }

    #[test]
    fn empty_input() {
        let (v, t) = scan_exclusive_u32(&[]);
        assert!(v.is_empty());
        assert_eq!(t, 0);
    }

    #[test]
    fn small_sequential_path() {
        let (v, t) = scan_exclusive_u32(&[1, 2, 3, 4]);
        assert_eq!(v, vec![0, 1, 3, 6]);
        assert_eq!(t, 10);
    }

    #[test]
    fn large_parallel_path_matches_reference() {
        let input: Vec<u32> = (0..100_000).map(|i| (i * 7 + 3) % 11).collect();
        let (got, total) = scan_exclusive_u32(&input);
        let (want, want_total) = reference_exclusive(&input);
        assert_eq!(got, want);
        assert_eq!(total, want_total);
    }

    #[test]
    fn scan_into_matches_allocating_scan_and_reuses_capacity() {
        let mut out = Vec::new();
        for n in [0usize, 4, 100, 100_000] {
            let input: Vec<u32> = (0..n as u32).map(|i| (i * 13 + 1) % 7).collect();
            let total = scan_exclusive_u32_into(&input, &mut out);
            let (want, want_total) = scan_exclusive_u32(&input);
            assert_eq!(out, want, "n={n}");
            assert_eq!(total, want_total, "n={n}");
        }
        // a second pass over the biggest input must not grow the buffer
        let input: Vec<u32> = (0..100_000).map(|i| i % 3).collect();
        let _ = scan_exclusive_u32_into(&input, &mut out);
        let cap = out.capacity();
        let _ = scan_exclusive_u32_into(&input, &mut out);
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn inclusive_scan() {
        let v = scan_inclusive(&[1u32, 2, 3], 0, |a, b| a + b);
        assert_eq!(v, vec![1, 3, 6]);
    }

    #[test]
    fn non_commutative_operator_ordering() {
        // max is associative & commutative; use string-like ordering via
        // pairs to check order preservation instead: (first, last) compose.
        let input: Vec<(u32, u32)> = (0..50_000).map(|i| (i, i)).collect();
        let op = |a: (u32, u32), b: (u32, u32)| {
            if a == (u32::MAX, u32::MAX) {
                b
            } else if b == (u32::MAX, u32::MAX) {
                a
            } else {
                (a.0, b.1)
            }
        };
        let (scanned, total) = scan_exclusive(&input, (u32::MAX, u32::MAX), op);
        assert_eq!(total, (0, 49_999));
        assert_eq!(scanned[1], (0, 0));
        assert_eq!(scanned[49_999], (0, 49_998));
    }

    #[test]
    fn scan_of_max_operator() {
        let input = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let v = scan_inclusive(&input, 0, |a, b| a.max(b));
        assert_eq!(v, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }
}
