//! Bounded job queue with explicit backpressure.
//!
//! The serving layer (DESIGN.md §9) admits work through a fixed-capacity
//! queue: producers get an immediate structured rejection when the queue
//! is full instead of growing an unbounded backlog, and consumers block
//! until an item arrives or the queue is closed and drained. The queue is
//! multi-producer/multi-consumer and deliberately simple — a mutexed
//! `VecDeque` plus a condvar — because capacities are small (tens of
//! jobs) and the work items themselves run for milliseconds to seconds.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a [`BoundedQueue::try_push`] was refused. The rejected item rides
/// along so the caller can respond to it without cloning.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; retry after backoff.
    Full(T),
    /// The queue has been closed; no further work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }

    /// True if the rejection was a capacity overflow (retryable).
    pub fn is_full(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity MPMC queue: `try_push` never blocks (it rejects when
/// full), `pop` blocks until an item arrives or the queue is closed and
/// empty.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items
    /// (capacity 0 is clamped to 1 so the queue stays usable).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// A panic while holding the lock poisons it; the queue state is a
    /// plain VecDeque that cannot be left mid-invariant, so recover the
    /// guard instead of propagating the poison (matches the vendored
    /// parking_lot semantics used elsewhere).
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to enqueue without blocking. Returns the item wrapped in
    /// [`PushError::Full`] when at capacity (backpressure: the caller
    /// responds with retry-after) or [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed **and** drained — the worker exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes are rejected, blocked consumers
    /// wake, and `pop` returns the remaining backlog before yielding
    /// `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Backpressure hint for a rejected request: how long the client should
/// wait before retrying, in milliseconds.
///
/// Two failure modes of a constant hint, both fixed here:
///
/// * **load-blindness** — a queue rejecting at depth 1 (a momentary
///   blip) and a queue buried under a full backlog handed out the same
///   number, so clients hammered an overloaded server exactly as hard
///   as a healthy one. The hint now scales linearly with observed load:
///   `base/2` when the queue was empty up to `2·base` when rejection
///   happened at full depth.
/// * **thundering herd** — every client rejected in the same instant got
///   the same hint and retried in the same instant, re-creating the
///   collision. A deterministic per-request jitter in `[0, base/2)`
///   (derived from `salt`, typically the request id) spreads the herd
///   without making responses nondeterministic for a given request.
///
/// Bounds: for `base > 0` the hint is always in `[base/2, 2·base +
/// base/2)`, and never 0 — a 0 hint reads as "retry immediately".
pub fn retry_after_hint(base_ms: u64, depth: usize, capacity: usize, salt: u64) -> u64 {
    let load = match capacity {
        0 => 1.0,
        // CAST: queue depths are small (tens); f64 is exact here.
        _ => (depth as f64 / capacity as f64).clamp(0.0, 1.0),
    };
    // CAST: base_ms is a config knob (tens to thousands); f64 is exact.
    let scaled = (base_ms as f64) * (0.5 + 1.5 * load);
    // SplitMix64 finalizer: cheap, deterministic per-salt spread.
    let mut z = salt.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    let jitter = match base_ms / 2 {
        0 => 0,
        half => z % half,
    };
    // CAST: scaled <= 2*base_ms, well inside u64.
    (scaled as u64).saturating_add(jitter).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_is_rejected_not_queued() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(7).unwrap();
        assert!(q.try_push(8).is_err());
    }

    #[test]
    fn close_rejects_pushes_and_drains_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.is_closed());
        let err = q.try_push(2).unwrap_err();
        assert!(!err.is_full());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // idempotent after drain
    }

    #[test]
    fn retry_hint_is_bounded_and_load_proportional() {
        let base = 100;
        for depth in 0..=16usize {
            for salt in 0..64u64 {
                let hint = retry_after_hint(base, depth, 16, salt);
                assert!(
                    (base / 2..base * 2 + base / 2).contains(&hint),
                    "depth {depth} salt {salt}: hint {hint} out of bounds"
                );
            }
        }
        // load-proportional: an empty queue's hint (pre-jitter 50) can
        // never reach a full queue's floor (pre-jitter 200)
        let idle_max = (0..64).map(|s| retry_after_hint(base, 0, 16, s)).max().unwrap();
        let full_min = (0..64).map(|s| retry_after_hint(base, 16, 16, s)).min().unwrap();
        assert!(idle_max < full_min, "idle {idle_max} must undercut full {full_min}");
    }

    #[test]
    fn retry_hint_jitter_spreads_the_herd_deterministically() {
        let hints: Vec<u64> = (0..32).map(|s| retry_after_hint(200, 8, 16, s)).collect();
        let again: Vec<u64> = (0..32).map(|s| retry_after_hint(200, 8, 16, s)).collect();
        assert_eq!(hints, again, "same salt, same hint");
        let distinct: std::collections::HashSet<u64> = hints.iter().copied().collect();
        assert!(distinct.len() > 16, "expected spread, got {distinct:?}");
    }

    #[test]
    fn retry_hint_never_tells_a_client_to_retry_immediately() {
        assert!(retry_after_hint(0, 8, 16, 3) >= 1);
        assert!(retry_after_hint(1, 0, 16, 0) >= 1);
        assert!(retry_after_hint(100, 8, 0, 9) >= 1, "capacity 0 treated as full load");
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = qc.pop() {
                got.push(v);
            }
            got
        });
        for v in 0..8 {
            // retry when the slow consumer lets the queue fill up
            let mut item = v;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("queue closed early"),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
