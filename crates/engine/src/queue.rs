//! Bounded job queue with explicit backpressure.
//!
//! The serving layer (DESIGN.md §9) admits work through a fixed-capacity
//! queue: producers get an immediate structured rejection when the queue
//! is full instead of growing an unbounded backlog, and consumers block
//! until an item arrives or the queue is closed and drained. The queue is
//! multi-producer/multi-consumer and deliberately simple — a mutexed
//! `VecDeque` plus a condvar — because capacities are small (tens of
//! jobs) and the work items themselves run for milliseconds to seconds.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Why a [`BoundedQueue::try_push`] was refused. The rejected item rides
/// along so the caller can respond to it without cloning.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; retry after backoff.
    Full(T),
    /// The queue has been closed; no further work is admitted.
    Closed(T),
}

impl<T> PushError<T> {
    /// Recovers the rejected item.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }

    /// True if the rejection was a capacity overflow (retryable).
    pub fn is_full(&self) -> bool {
        matches!(self, PushError::Full(_))
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Fixed-capacity MPMC queue: `try_push` never blocks (it rejects when
/// full), `pop` blocks until an item arrives or the queue is closed and
/// empty.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` pending items
    /// (capacity 0 is clamped to 1 so the queue stays usable).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// A panic while holding the lock poisons it; the queue state is a
    /// plain VecDeque that cannot be left mid-invariant, so recover the
    /// guard instead of propagating the poison (matches the vendored
    /// parking_lot semantics used elsewhere).
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to enqueue without blocking. Returns the item wrapped in
    /// [`PushError::Full`] when at capacity (backpressure: the caller
    /// responds with retry-after) or [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and returns it, or returns
    /// `None` once the queue is closed **and** drained — the worker exit
    /// signal.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: future pushes are rejected, blocked consumers
    /// wake, and `pop` returns the remaining backlog before yielding
    /// `None`. Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current number of queued (not yet popped) items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_is_rejected_not_queued() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let err = q.try_push(3).unwrap_err();
        assert!(err.is_full());
        assert_eq!(err.into_inner(), 3);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(7).unwrap();
        assert!(q.try_push(8).is_err());
    }

    #[test]
    fn close_rejects_pushes_and_drains_backlog() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert!(q.is_closed());
        let err = q.try_push(2).unwrap_err();
        assert!(!err.is_full());
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None); // idempotent after drain
    }

    #[test]
    fn blocked_consumer_wakes_on_push_and_on_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let qc = Arc::clone(&q);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            while let Some(v) = qc.pop() {
                got.push(v);
            }
            got
        });
        for v in 0..8 {
            // retry when the slow consumer lets the queue fill up
            let mut item = v;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("queue closed early"),
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
