//! Atomic helpers mirroring the CUDA atomics the paper's functors use:
//! `atomicMin` (SSSP relaxation), `atomicAdd` on floats (PageRank and BC
//! accumulation), and typed views over plain arrays.
//!
//! Orderings are `Relaxed` throughout: every Gunrock step ends at a
//! bulk-synchronous barrier (the rayon join), which provides the
//! necessary happens-before edges between steps; within a step, the
//! algorithms tolerate races by construction (monotonic min/add).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Atomically lowers `cell` to `min(cell, value)`, returning true if this
/// call strictly lowered the stored value — the paper's
/// `new_label < atomicMin(...)` idiom in `UpdateLabel` (Algorithm 1).
#[must_use = "the return value says whether this call won the relaxation; \
              ignoring it usually means a lost frontier insertion"]
#[inline]
pub fn fetch_min_u32(cell: &AtomicU32, value: u32) -> bool {
    cell.fetch_min(value, Ordering::Relaxed) > value
}

/// An `f32` cell supporting atomic add via CAS on the bit pattern — the
/// CPU equivalent of CUDA's `atomicAdd(float*)`.
#[derive(Debug)]
pub struct AtomicF32(AtomicU32);

impl AtomicF32 {
    /// Creates a cell holding `v`.
    pub fn new(v: f32) -> Self {
        AtomicF32(AtomicU32::new(v.to_bits()))
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f32 {
        f32::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Stores `v` (non-atomic callers should prefer `&mut` phases).
    #[inline]
    pub fn store(&self, v: f32) {
        // ORDERING: Relaxed is only sound here because callers store
        // outside the parallel accumulation phase (initialization or
        // post-barrier normalization). A store that raced a same-phase
        // fetch_add could silently drop that add's contribution — the
        // store is NOT a read-modify-write, so it does not compose with
        // concurrent CAS loops. The bulk-synchronous barrier between
        // phases provides the required happens-before.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta`, returning the previous value.
    #[must_use = "fetch_add returns the pre-add value; discard it explicitly \
                  with `let _ =` if only the side effect is wanted"]
    #[inline]
    pub fn fetch_add(&self, delta: f32) -> f32 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f32::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// An `f64` cell supporting atomic add via CAS on the bit pattern.
#[derive(Debug)]
pub struct AtomicF64(AtomicU64);

impl AtomicF64 {
    /// Creates a cell holding `v`.
    pub fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    /// Loads the current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Stores `v`.
    #[inline]
    pub fn store(&self, v: f64) {
        // ORDERING: Relaxed — same non-atomic-phase caveat as
        // AtomicF32::store: only sound outside the parallel accumulation
        // phase, with the bulk-synchronous barrier supplying the
        // happens-before edge.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Atomically adds `delta`, returning the previous value.
    #[must_use = "fetch_add returns the pre-add value; discard it explicitly \
                  with `let _ =` if only the side effect is wanted"]
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return f64::from_bits(cur),
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Reinterprets a mutable `u32` slice as atomics for the duration of a
/// parallel phase. Standard layout-compatible cast (`AtomicU32` has the
/// same size/alignment as `u32`).
#[inline]
pub fn as_atomic_u32(slice: &mut [u32]) -> &[AtomicU32] {
    // SAFETY: AtomicU32 is #[repr(C, align(4))] over u32; exclusive borrow
    // guarantees no non-atomic aliases exist during the returned lifetime.
    unsafe { &*(slice as *mut [u32] as *const [AtomicU32]) }
}

/// Allocates a vector of `AtomicU32` initialized to `init`.
pub fn atomic_u32_vec(len: usize, init: u32) -> Vec<AtomicU32> {
    (0..len).map(|_| AtomicU32::new(init)).collect()
}

/// Snapshots a slice of atomics into plain values.
pub fn unwrap_atomic_u32(slice: &[AtomicU32]) -> Vec<u32> {
    slice.iter().map(|a| a.load(Ordering::Relaxed)).collect()
}

/// Allocates a vector of `AtomicF32` initialized to `init`.
pub fn atomic_f32_vec(len: usize, init: f32) -> Vec<AtomicF32> {
    (0..len).map(|_| AtomicF32::new(init)).collect()
}

/// Snapshots a slice of `AtomicF32` into plain values.
pub fn unwrap_atomic_f32(slice: &[AtomicF32]) -> Vec<f32> {
    slice.iter().map(|a| a.load()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn fetch_min_reports_strict_improvement() {
        let cell = AtomicU32::new(10);
        assert!(fetch_min_u32(&cell, 5));
        assert!(!fetch_min_u32(&cell, 5)); // equal: not an improvement
        assert!(!fetch_min_u32(&cell, 7));
        assert_eq!(cell.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_fetch_min_converges_to_global_min() {
        let cell = AtomicU32::new(u32::MAX);
        (0..10_000u32).into_par_iter().for_each(|i| {
            let _ = fetch_min_u32(&cell, 10_000 - i);
        });
        assert_eq!(cell.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn atomic_f32_concurrent_adds_sum_exactly() {
        // powers of two add exactly in f32
        let acc = AtomicF32::new(0.0);
        (0..4096).into_par_iter().for_each(|_| {
            let _ = acc.fetch_add(0.25);
        });
        assert_eq!(acc.load(), 1024.0);
    }

    #[test]
    fn atomic_f64_add_and_store() {
        let acc = AtomicF64::new(1.5);
        assert_eq!(acc.fetch_add(2.5), 1.5);
        assert_eq!(acc.load(), 4.0);
        acc.store(-1.0);
        assert_eq!(acc.load(), -1.0);
    }

    #[test]
    fn as_atomic_view_round_trips() {
        let mut data = vec![7u32, 8, 9];
        {
            let atoms = as_atomic_u32(&mut data);
            atoms[1].store(80, Ordering::Relaxed);
        }
        assert_eq!(data, vec![7, 80, 9]);
    }

    #[test]
    fn vec_helpers() {
        let v = atomic_u32_vec(3, 42);
        assert_eq!(unwrap_atomic_u32(&v), vec![42, 42, 42]);
        let f = atomic_f32_vec(2, 0.5);
        assert_eq!(unwrap_atomic_f32(&f), vec![0.5, 0.5]);
    }
}
