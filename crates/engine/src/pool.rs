//! Size-classed reusable buffer pool — the multicore stand-in for
//! Gunrock's pre-allocated frontier and scratch storage (§4.2).
//!
//! The paper's performance model assumes every advance writes into
//! buffers that already exist: "Gunrock's frontier data structures are
//! reused across iterations" rather than reallocated per kernel launch.
//! This pool gives the operators the same property on the CPU: a
//! checkout (`take_u32`/`take_u64`) returns a cleared buffer whose
//! capacity is at least the requested size, drawn from a power-of-two
//! size class; a release (`put_u32`/`put_u64`) returns it for reuse.
//! In the steady state of an enact loop every checkout is served from a
//! free list and the `allocations` counter stops moving — the property
//! the zero-allocation integration test asserts.
//!
//! The pool is shared by reference across rayon workers (checkout and
//! release are `&self`), so the free lists are mutex-guarded and the
//! statistics are relaxed atomics. Operators check buffers out at bulk
//! "kernel" granularity — a handful of lock acquisitions per advance,
//! never per element — so the mutexes are uncontended in practice.

use crate::budget::{BudgetDenied, MemoryBudget};
use crate::faults::{FaultInjector, FaultKind};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two size classes. Class `c` holds buffers whose
/// capacity is at least `1 << c`; class 47 covers any allocation a
/// `u32`-indexed graph can produce.
const NUM_CLASSES: usize = 48;

/// Smallest class handed out (capacity 64), so tiny checkouts still
/// produce reusable buffers instead of a fresh micro-allocation each.
const MIN_CLASS: usize = 6;

/// Free buffers retained per class; beyond this a released buffer is
/// dropped so a single huge iteration cannot pin memory forever.
const MAX_PER_CLASS: usize = 16;

/// The size class serving a request for `min_cap` elements: the
/// smallest `c >= MIN_CLASS` with `(1 << c) >= min_cap`.
fn class_for(min_cap: usize) -> usize {
    let wanted = min_cap.max(1).next_power_of_two().trailing_zeros() as usize;
    wanted.clamp(MIN_CLASS, NUM_CLASSES - 1)
}

/// The class a buffer with `capacity` belongs on when released: the
/// largest `c` with `(1 << c) <= capacity`, so a checkout from class
/// `c` always yields capacity `>= 1 << c`.
fn class_of_capacity(capacity: usize) -> usize {
    debug_assert!(capacity > 0);
    let floor = (usize::BITS - 1 - capacity.leading_zeros()) as usize;
    floor.min(NUM_CLASSES - 1)
}

/// Free lists for one element type.
struct TypedPool<T> {
    classes: [Mutex<Vec<Vec<T>>>; NUM_CLASSES],
}

impl<T> TypedPool<T> {
    fn new() -> Self {
        TypedPool { classes: std::array::from_fn(|_| Mutex::new(Vec::new())) }
    }

    /// Pops a pooled buffer of class `class`, if one is free.
    fn pop(&self, class: usize) -> Option<Vec<T>> {
        self.classes[class].lock().pop()
    }

    /// Retains `buf` on its class free list (or drops it when the class
    /// is full). Returns true when the buffer was retained.
    fn push(&self, buf: Vec<T>) -> bool {
        let class = class_of_capacity(buf.capacity());
        let mut list = self.classes[class].lock();
        if list.len() < MAX_PER_CLASS {
            list.push(buf);
            true
        } else {
            false
        }
    }
}

/// Point-in-time view of the pool counters, exported into
/// `gunrock-stats/v1` / `gunrock-bench/v1` rows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStatsSnapshot {
    /// Fresh heap allocations performed by checkouts that missed the
    /// free lists. Stops growing once the enact loop reaches its steady
    /// state — the pool's reason to exist.
    pub allocations: u64,
    /// Total buffer checkouts (`take_*` calls).
    pub checkouts: u64,
    /// Total buffer releases (`put_*` calls).
    pub releases: u64,
    /// Buffers currently checked out (checkouts minus releases). A
    /// caller that keeps a buffer — e.g. a returned frontier the
    /// algorithm never recycles — holds it live forever.
    pub live: u64,
    /// High-water mark of `live`; monotone non-decreasing.
    pub live_high_water: u64,
    /// Bytes currently checked out (outstanding) — what the memory
    /// budget charges for.
    pub bytes_live: u64,
    /// High-water mark of bytes checked out at once; monotone
    /// non-decreasing.
    pub bytes_high_water: u64,
}

/// Thread-safe, size-classed pool of reusable `u32` and `u64` buffers.
/// One per execution context (`gunrock::Context` owns one), living for
/// the life of the problem.
pub struct BufferPool {
    u32s: TypedPool<u32>,
    u64s: TypedPool<u64>,
    allocations: AtomicU64,
    checkouts: AtomicU64,
    releases: AtomicU64,
    live: AtomicU64,
    live_high_water: AtomicU64,
    bytes_live: AtomicU64,
    bytes_high_water: AtomicU64,
    /// Cap on outstanding bytes; `None` is the unlimited legacy mode.
    budget: Option<Arc<MemoryBudget>>,
    /// Chaos hook for the `pool:alloc` injected-allocation-failure site.
    injector: Option<Arc<FaultInjector>>,
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferPool {
    /// An empty pool; buffers are created lazily on first checkout.
    pub fn new() -> Self {
        BufferPool {
            u32s: TypedPool::new(),
            u64s: TypedPool::new(),
            allocations: AtomicU64::new(0),
            checkouts: AtomicU64::new(0),
            releases: AtomicU64::new(0),
            live: AtomicU64::new(0),
            live_high_water: AtomicU64::new(0),
            bytes_live: AtomicU64::new(0),
            bytes_high_water: AtomicU64::new(0),
            budget: None,
            injector: None,
        }
    }

    /// Caps outstanding (checked-out) bytes at `budget`'s limit: any
    /// `take_*` that would push past it fails as a structured
    /// [`BudgetDenied`] instead of allocating.
    pub fn with_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Installs the chaos injector consulted at the `pool:alloc` site,
    /// so seeded fault schedules can fail checkouts deterministically.
    pub fn with_injector(mut self, injector: Arc<FaultInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// In-place variant of [`Self::with_budget`] for a pool already
    /// behind an `Arc` with a single owner (the context builders).
    pub fn install_budget(&mut self, budget: Arc<MemoryBudget>) {
        self.budget = Some(budget);
    }

    /// In-place variant of [`Self::with_injector`].
    pub fn install_injector(&mut self, injector: Arc<FaultInjector>) {
        self.injector = Some(injector);
    }

    /// The budget this pool charges, when one is installed.
    pub fn budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.budget.as_ref()
    }

    /// Whether a checkout of `bytes` would currently fit the budget.
    /// Always true for an unbudgeted pool. Advisory — the degradation
    /// ladder uses it to pick a cheaper strategy before committing, but
    /// `take_*` remains the enforcement point.
    pub fn can_reserve(&self, bytes: u64) -> bool {
        self.budget.as_ref().is_none_or(|b| b.can_fit(bytes))
    }

    /// The denial record for a failed `bytes` reservation (limit 0 when
    /// the failure is injected on an unbudgeted pool).
    fn denied(&self, bytes: u64) -> BudgetDenied {
        match &self.budget {
            Some(b) => {
                BudgetDenied { requested: bytes, reserved: b.reserved(), limit: b.limit() }
            }
            None => {
                // ORDERING: Relaxed — monotonic telemetry counter.
                let reserved = self.bytes_live.load(Ordering::Relaxed);
                BudgetDenied { requested: bytes, reserved, limit: 0 }
            }
        }
    }

    fn charge(&self, bytes: u64) -> Result<(), BudgetDenied> {
        match &self.budget {
            Some(b) => b.try_reserve(bytes),
            None => Ok(()),
        }
    }

    fn uncharge(&self, bytes: u64) {
        if let Some(b) = &self.budget {
            b.release(bytes);
        }
    }

    /// The `pool:alloc` chaos gate, consulted before any side effect.
    fn injected_alloc_failure(&self, bytes: u64) -> Result<(), BudgetDenied> {
        match &self.injector {
            Some(inj) if inj.should_fail(FaultKind::PoolAlloc, "pool:alloc") => {
                Err(self.denied(bytes))
            }
            _ => Ok(()),
        }
    }

    fn note_checkout(&self, bytes: u64) {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness, and the high-water updates use fetch_max so
        // they are monotone under any interleaving.
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.live_high_water.fetch_max(live, Ordering::Relaxed);
        let b = self.bytes_live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.bytes_high_water.fetch_max(b, Ordering::Relaxed);
    }

    fn note_release(&self, bytes: u64) {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness. The subtractions saturate at zero: a buffer
        // born outside the pool (an algorithm-built frontier entering via
        // `Context::recycle`) is released without a matching checkout, and
        // wrapping would poison `live` forever.
        self.releases.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)));
        let _ = self.bytes_live.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(bytes))
        });
    }

    /// Checks out a cleared `u32` buffer with capacity at least
    /// `min_cap`, reusing a pooled one when available.
    ///
    /// Under a budget (or an injected `pool:alloc` fault) a denied
    /// checkout raises a typed [`BudgetDenied`] panic payload; the
    /// operator isolation layer downcasts it into
    /// `GunrockError::BudgetExceeded`, so budget pressure surfaces as a
    /// structured failure, never an allocator abort. Enact loops that
    /// want to degrade instead of fail probe [`BufferPool::can_reserve`]
    /// or call [`BufferPool::try_take_u32`].
    pub fn take_u32(&self, min_cap: usize) -> Vec<u32> {
        match self.try_take_u32(min_cap) {
            Ok(buf) => buf,
            // the typed payload is the structured error path, not an
            // abort: catch_unwind at the operator boundary reclaims it
            Err(denied) => std::panic::panic_any(denied),
        }
    }

    /// Fallible checkout: reports the budget denial instead of raising
    /// it, for callers doing up-front footprint admission.
    pub fn try_take_u32(&self, min_cap: usize) -> Result<Vec<u32>, BudgetDenied> {
        let class = class_for(min_cap);
        let want = (1u64 << class) * std::mem::size_of::<u32>() as u64;
        // both failure gates fire before any side effect
        self.injected_alloc_failure(want)?;
        self.charge(want)?;
        let buf = match self.u32s.pop(class) {
            Some(b) => b,
            None => {
                // ORDERING: Relaxed — monotonic telemetry counter.
                self.allocations.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(1 << class)
            }
        };
        let actual = (buf.capacity() * std::mem::size_of::<u32>()) as u64;
        // a donated buffer can exceed its class's base capacity; charge
        // the excess too (put_* credits actual capacity back)
        if actual > want {
            if let Err(denied) = self.charge(actual - want) {
                self.uncharge(want);
                self.u32s.push(buf);
                return Err(denied);
            }
        }
        self.note_checkout(actual);
        Ok(buf)
    }

    /// Returns a `u32` buffer to the pool. The buffer is cleared; its
    /// capacity determines the free list it lands on, so a follow-up
    /// `take_u32` of the same request size gets the same capacity back.
    pub fn put_u32(&self, mut buf: Vec<u32>) {
        if buf.capacity() == 0 {
            return;
        }
        let bytes = (buf.capacity() * std::mem::size_of::<u32>()) as u64;
        self.uncharge(bytes);
        self.note_release(bytes);
        buf.clear();
        self.u32s.push(buf);
    }

    /// Checks out a cleared `u64` buffer with capacity at least
    /// `min_cap`, reusing a pooled one when available. Budget semantics
    /// match [`BufferPool::take_u32`].
    pub fn take_u64(&self, min_cap: usize) -> Vec<u64> {
        match self.try_take_u64(min_cap) {
            Ok(buf) => buf,
            // structured failure path — see take_u32
            Err(denied) => std::panic::panic_any(denied),
        }
    }

    /// Fallible `u64` checkout — see [`BufferPool::try_take_u32`].
    pub fn try_take_u64(&self, min_cap: usize) -> Result<Vec<u64>, BudgetDenied> {
        let class = class_for(min_cap);
        let want = (1u64 << class) * std::mem::size_of::<u64>() as u64;
        self.injected_alloc_failure(want)?;
        self.charge(want)?;
        let buf = match self.u64s.pop(class) {
            Some(b) => b,
            None => {
                // ORDERING: Relaxed — monotonic telemetry counter.
                self.allocations.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(1 << class)
            }
        };
        let actual = (buf.capacity() * std::mem::size_of::<u64>()) as u64;
        if actual > want {
            if let Err(denied) = self.charge(actual - want) {
                self.uncharge(want);
                self.u64s.push(buf);
                return Err(denied);
            }
        }
        self.note_checkout(actual);
        Ok(buf)
    }

    /// Returns a `u64` buffer to the pool (cleared, size-classed by
    /// capacity like [`BufferPool::put_u32`]).
    pub fn put_u64(&self, mut buf: Vec<u64>) {
        if buf.capacity() == 0 {
            return;
        }
        let bytes = (buf.capacity() * std::mem::size_of::<u64>()) as u64;
        self.uncharge(bytes);
        self.note_release(bytes);
        buf.clear();
        self.u64s.push(buf);
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        // ORDERING: Relaxed — monotonic telemetry counters; a snapshot is
        // advisory and tolerates momentary staleness between fields.
        PoolStatsSnapshot {
            allocations: self.allocations.load(Ordering::Relaxed),
            checkouts: self.checkouts.load(Ordering::Relaxed),
            releases: self.releases.load(Ordering::Relaxed),
            live: self.live.load(Ordering::Relaxed),
            live_high_water: self.live_high_water.load(Ordering::Relaxed),
            bytes_live: self.bytes_live.load(Ordering::Relaxed),
            bytes_high_water: self.bytes_high_water.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_math() {
        assert_eq!(class_for(0), MIN_CLASS);
        assert_eq!(class_for(1), MIN_CLASS);
        assert_eq!(class_for(64), MIN_CLASS);
        assert_eq!(class_for(65), 7);
        assert_eq!(class_for(100), 7);
        assert_eq!(class_for(128), 7);
        assert_eq!(class_for(129), 8);
        assert_eq!(class_of_capacity(128), 7);
        assert_eq!(class_of_capacity(192), 7);
        assert_eq!(class_of_capacity(256), 8);
    }

    #[test]
    fn take_returns_cleared_buffer_with_requested_capacity() {
        let pool = BufferPool::new();
        let buf = pool.take_u32(100);
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 100);
        let big = pool.take_u64(5000);
        assert!(big.capacity() >= 5000);
    }

    #[test]
    fn reuse_after_release_returns_same_capacity() {
        let pool = BufferPool::new();
        let mut buf = pool.take_u32(100);
        buf.extend_from_slice(&[1, 2, 3]);
        let cap = buf.capacity();
        let ptr = buf.as_ptr();
        pool.put_u32(buf);
        let again = pool.take_u32(100);
        assert!(again.is_empty(), "pooled buffers come back cleared");
        assert_eq!(again.capacity(), cap);
        assert_eq!(again.as_ptr(), ptr, "same allocation reused, not a new one");
        assert_eq!(pool.stats().allocations, 1);
        assert_eq!(pool.stats().checkouts, 2);
    }

    #[test]
    fn distinct_classes_do_not_mix() {
        let pool = BufferPool::new();
        let small = pool.take_u32(10);
        let small_cap = small.capacity();
        pool.put_u32(small);
        // a much larger request must not be served by the small buffer
        let large = pool.take_u32(10_000);
        assert!(large.capacity() >= 10_000);
        assert_ne!(large.capacity(), small_cap);
        assert_eq!(pool.stats().allocations, 2);
    }

    #[test]
    fn foreign_buffer_release_saturates_instead_of_wrapping() {
        let pool = BufferPool::new();
        // a buffer the pool never handed out — recycled in from outside
        pool.put_u32(vec![1, 2, 3]);
        let s = pool.stats();
        assert_eq!(s.releases, 1);
        assert_eq!(s.live, 0, "live clamps at zero, never wraps");
        // the donated buffer is now poolable and checkouts still work
        let buf = pool.take_u32(3);
        assert!(buf.is_empty());
        assert_eq!(pool.stats().live, 1);
    }

    #[test]
    fn zero_capacity_release_is_a_noop() {
        let pool = BufferPool::new();
        pool.put_u32(Vec::new());
        pool.put_u64(Vec::new());
        assert_eq!(pool.stats().releases, 0);
    }

    #[test]
    fn retention_is_bounded_per_class() {
        let pool = BufferPool::new();
        let bufs: Vec<Vec<u32>> = (0..(MAX_PER_CLASS + 4)).map(|_| pool.take_u32(64)).collect();
        for b in bufs {
            pool.put_u32(b);
        }
        // all were released (counted), but only MAX_PER_CLASS retained
        assert_eq!(pool.stats().releases, (MAX_PER_CLASS + 4) as u64);
        let mut reused = 0;
        for _ in 0..(MAX_PER_CLASS + 4) {
            let _ = pool.take_u32(64);
            reused += 1;
        }
        assert_eq!(reused, MAX_PER_CLASS + 4);
        assert_eq!(pool.stats().allocations, (MAX_PER_CLASS + 4 + 4) as u64);
    }

    #[test]
    fn high_water_marks_are_monotone() {
        let pool = BufferPool::new();
        let mut prev = pool.stats();
        let mut held = Vec::new();
        for round in 0..6 {
            for _ in 0..=round {
                held.push(pool.take_u32(256));
            }
            let s = pool.stats();
            assert!(s.live_high_water >= prev.live_high_water);
            assert!(s.bytes_high_water >= prev.bytes_high_water);
            prev = s;
            for b in held.drain(..) {
                pool.put_u32(b);
            }
            let after = pool.stats();
            assert_eq!(after.live, 0);
            assert!(after.live_high_water >= prev.live_high_water, "release never lowers hwm");
        }
        assert_eq!(prev.live_high_water, 6);
    }

    #[test]
    fn steady_state_stops_allocating() {
        let pool = BufferPool::new();
        // warm-up: the working set of a simulated iteration
        for _ in 0..10 {
            let a = pool.take_u32(1000);
            let b = pool.take_u32(1000);
            let c = pool.take_u64(500);
            pool.put_u32(a);
            pool.put_u32(b);
            pool.put_u64(c);
        }
        let warm = pool.stats().allocations;
        for _ in 0..100 {
            let a = pool.take_u32(1000);
            let b = pool.take_u32(1000);
            let c = pool.take_u64(500);
            pool.put_u32(a);
            pool.put_u32(b);
            pool.put_u64(c);
        }
        assert_eq!(pool.stats().allocations, warm, "steady state must not allocate");
    }

    #[test]
    fn snapshot_tracks_outstanding_bytes() {
        let pool = BufferPool::new();
        let a = pool.take_u32(64);
        let b = pool.take_u64(64);
        let outstanding = (a.capacity() * 4 + b.capacity() * 8) as u64;
        assert_eq!(pool.stats().bytes_live, outstanding);
        assert_eq!(pool.stats().bytes_high_water, outstanding);
        pool.put_u32(a);
        pool.put_u64(b);
        assert_eq!(pool.stats().bytes_live, 0);
        assert_eq!(pool.stats().bytes_high_water, outstanding, "hwm survives release");
    }

    #[test]
    fn budget_denies_checkouts_past_the_limit() {
        use crate::budget::MemoryBudget;
        let budget = Arc::new(MemoryBudget::new(64 * 4));
        let pool = BufferPool::new().with_budget(Arc::clone(&budget));
        let a = pool.try_take_u32(64).expect("first checkout fits");
        let denied = pool.try_take_u32(64).expect_err("second checkout exceeds the budget");
        assert_eq!(denied.requested, 64 * 4);
        assert_eq!(denied.limit, 64 * 4);
        assert!(!pool.can_reserve(1));
        // a release frees the reservation and the pool recovers
        pool.put_u32(a);
        assert_eq!(budget.reserved(), 0);
        assert!(pool.can_reserve(64 * 4));
        let b = pool.try_take_u32(64).expect("checkout fits again after release");
        pool.put_u32(b);
        assert!(budget.denials() >= 1);
        assert_eq!(budget.high_water(), 64 * 4);
    }

    #[test]
    fn budget_denial_panics_with_a_typed_payload() {
        use crate::budget::{BudgetDenied, MemoryBudget};
        let pool = BufferPool::new().with_budget(Arc::new(MemoryBudget::new(8)));
        let err = std::panic::catch_unwind(|| pool.take_u32(1024))
            .expect_err("over-budget take must raise");
        let denied = err.downcast_ref::<BudgetDenied>().expect("typed payload");
        assert_eq!(denied.limit, 8);
        assert!(denied.requested > 8);
    }

    #[test]
    fn injected_pool_alloc_fault_fails_checkouts_deterministically() {
        use crate::faults::{FaultKind, FaultPlan};
        let plan = FaultPlan::none(7).with_rate(FaultKind::PoolAlloc, 1.0);
        let pool = BufferPool::new().with_injector(Arc::new(FaultInjector::new(plan)));
        assert!(pool.try_take_u32(64).is_err(), "rate 1.0 fails every checkout");
        // the failure happens before any side effect: nothing was
        // charged, allocated, or counted
        let s = pool.stats();
        assert_eq!(s.allocations, 0);
        assert_eq!(s.checkouts, 0);
        assert_eq!(s.bytes_live, 0);
    }

    #[test]
    fn concurrent_checkout_under_rayon_is_race_free() {
        use rayon::prelude::*;
        let pool = BufferPool::new();
        // every worker repeatedly checks out, fills, verifies, releases;
        // under the racecheck feature the UnsafeSlice-free design still
        // exercises the mutex paths from many threads at once
        (0..64u32).into_par_iter().for_each(|i| {
            for round in 0..50 {
                let mut buf = pool.take_u32(64 + (i as usize * 7) % 512);
                buf.push(i);
                buf.push(round);
                assert_eq!(buf[0], i);
                assert_eq!(buf[1], round);
                pool.put_u32(buf);
            }
        });
        let s = pool.stats();
        assert_eq!(s.checkouts, 64 * 50);
        assert_eq!(s.releases, 64 * 50);
        assert_eq!(s.live, 0);
        assert!(s.allocations <= s.checkouts);
        assert!(s.live_high_water >= 1);
    }
}
