//! # gunrock-engine
//!
//! The bulk-synchronous data-parallel substrate standing in for the
//! paper's GPU (see DESIGN.md §2 and §5): a work-stealing thread pool
//! plays the SIMT grid, chunklets of [`config::WARP_SIZE`] play warps,
//! chunks of [`config::CTA_SIZE`] play cooperative thread arrays, and the
//! primitives the paper leans on — scan, compact, sorted search /
//! merge-path partitioning, atomic bitmaps — are implemented here for
//! multicore.
//!
//! Every operation is bulk-synchronous: it returns only when all parallel
//! work has completed, exactly like a CUDA kernel boundary.
//!
//! ```
//! use gunrock_engine::scan::scan_exclusive_u32;
//!
//! let degrees = [3u32, 0, 5, 2];
//! let (offsets, total) = scan_exclusive_u32(&degrees);
//! assert_eq!(offsets, vec![0, 3, 3, 8]);
//! assert_eq!(total, 10);
//! ```

#![warn(missing_docs)]

pub mod atomics;
pub mod bitmap;
pub mod breaker;
pub mod budget;
pub mod checkpoint;
pub mod compact;
pub mod config;
pub mod faults;
pub mod frontier;
pub mod json;
pub mod lanes;
pub mod pool;
pub mod queue;
pub mod racecheck;
pub mod reduce;
pub mod scan;
pub mod search;
pub mod sort;
pub mod stats;
pub mod unsafe_slice;
pub mod watchdog;

pub use config::EngineConfig;
pub use frontier::Frontier;
