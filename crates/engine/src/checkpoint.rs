//! Versioned checkpoint encoding (`gunrock-ckpt/v1`).
//!
//! Every bulk-synchronous iteration boundary is a consistent state (§3.2
//! of the paper), so a primitive's full progress is a handful of arrays:
//! the frontier plus its per-vertex problem state. A [`Checkpoint`]
//! captures those as named typed sections and serializes them as:
//!
//! ```text
//! magic "GRCKPT01" | u32 LE header length | JSON header | payload | u64 LE FNV-1a
//! ```
//!
//! The JSON header (emitted with [`JsonBuilder`], parsed back with
//! [`JsonValue`]) is self-describing — schema id, primitive name,
//! iteration, and a section table with name/type/length — while the
//! payload is the compact little-endian concatenation of the section
//! arrays. `f64` sections round-trip bit-exactly (`to_le_bytes` /
//! `from_le_bytes`), which is what makes a resumed PageRank run
//! bit-identical to an uninterrupted one. The trailing FNV-1a checksum
//! covers header + payload and rejects truncation and bit rot; the
//! version byte pair in the magic rejects future-format files.
//!
//! Writes are atomic (`path.tmp` + rename) so a crash mid-write never
//! leaves a half-valid checkpoint where a resumable one used to be.

use crate::json::{JsonBuilder, JsonValue};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

/// File magic for the current format. The trailing `01` is the version:
/// a recognized prefix with a different version is reported as
/// [`CheckpointError::VersionMismatch`], not `BadMagic`.
pub const CKPT_MAGIC_V1: &[u8; 8] = b"GRCKPT01";

/// Schema identifier stored in (and required of) the JSON header.
pub const CKPT_SCHEMA_V1: &str = "gunrock-ckpt/v1";

/// Why a checkpoint could not be decoded or written.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// The file does not start with a `GRCKPT` magic at all.
    BadMagic,
    /// A `GRCKPT` file of a different format version.
    VersionMismatch {
        /// The version tag found in the file (magic suffix or schema id).
        found: String,
    },
    /// The input ends before the structure it declares.
    Truncated {
        /// What was being read when input ran out.
        what: &'static str,
    },
    /// Stored and recomputed checksums disagree.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the read bytes.
        computed: u64,
    },
    /// Structurally invalid header or section table.
    Malformed(String),
    /// A section the caller requires is absent or has the wrong type.
    MissingSection(String),
    /// The checkpoint belongs to a different primitive than the caller
    /// is trying to resume.
    WrongPrimitive {
        /// Primitive the caller expected.
        expected: String,
        /// Primitive recorded in the checkpoint.
        found: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => {
                write!(f, "bad magic (not a gunrock checkpoint file)")
            }
            CheckpointError::VersionMismatch { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found:?} (expected {CKPT_SCHEMA_V1})"
                )
            }
            CheckpointError::Truncated { what } => {
                write!(f, "checkpoint truncated while reading {what}")
            }
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointError::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            CheckpointError::MissingSection(name) => {
                write!(f, "checkpoint is missing required section {name:?}")
            }
            CheckpointError::WrongPrimitive { expected, found } => {
                write!(f, "checkpoint is for primitive {found:?}, cannot resume {expected:?}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// One named, typed array in a checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct Section {
    /// Section name, unique within one checkpoint.
    pub name: String,
    /// The array payload.
    pub data: SectionData,
}

/// Typed payload of a [`Section`]. Three element types cover every
/// primitive's state: `u32` for frontiers/labels/ids, `u64` for counters
/// and packed scalars, `f64` for PageRank/BC floating state.
#[derive(Clone, Debug, PartialEq)]
pub enum SectionData {
    /// Little-endian `u32` array.
    U32(Vec<u32>),
    /// Little-endian `u64` array.
    U64(Vec<u64>),
    /// Little-endian IEEE-754 `f64` array (bit-exact round trip).
    F64(Vec<f64>),
}

impl SectionData {
    fn type_name(&self) -> &'static str {
        match self {
            SectionData::U32(_) => "u32",
            SectionData::U64(_) => "u64",
            SectionData::F64(_) => "f64",
        }
    }

    fn len(&self) -> usize {
        match self {
            SectionData::U32(v) => v.len(),
            SectionData::U64(v) => v.len(),
            SectionData::F64(v) => v.len(),
        }
    }

    fn byte_len(&self) -> usize {
        match self {
            SectionData::U32(v) => v.len() * 4,
            SectionData::U64(v) => v.len() * 8,
            SectionData::F64(v) => v.len() * 8,
        }
    }
}

/// An iteration-boundary snapshot of one primitive's state.
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    primitive: String,
    iteration: u32,
    sections: Vec<Section>,
}

impl Checkpoint {
    /// Empty checkpoint for `primitive` at a completed `iteration`.
    pub fn new(primitive: &str, iteration: u32) -> Self {
        Checkpoint { primitive: primitive.to_string(), iteration, sections: Vec::new() }
    }

    /// The primitive this checkpoint belongs to (e.g. `"bfs"`).
    pub fn primitive(&self) -> &str {
        &self.primitive
    }

    /// The bulk-synchronous iteration the snapshot was taken after.
    pub fn iteration(&self) -> u32 {
        self.iteration
    }

    /// The section table, in insertion order.
    pub fn sections(&self) -> &[Section] {
        &self.sections
    }

    /// Appends a `u32` section.
    pub fn push_u32(&mut self, name: &str, data: Vec<u32>) -> &mut Self {
        self.sections.push(Section { name: name.to_string(), data: SectionData::U32(data) });
        self
    }

    /// Appends a `u64` section.
    pub fn push_u64(&mut self, name: &str, data: Vec<u64>) -> &mut Self {
        self.sections.push(Section { name: name.to_string(), data: SectionData::U64(data) });
        self
    }

    /// Appends an `f64` section.
    pub fn push_f64(&mut self, name: &str, data: Vec<f64>) -> &mut Self {
        self.sections.push(Section { name: name.to_string(), data: SectionData::F64(data) });
        self
    }

    fn find(&self, name: &str) -> Option<&SectionData> {
        self.sections.iter().find(|s| s.name == name).map(|s| &s.data)
    }

    /// The named `u32` section, or a typed error.
    pub fn u32s(&self, name: &str) -> Result<&[u32], CheckpointError> {
        match self.find(name) {
            Some(SectionData::U32(v)) => Ok(v),
            _ => Err(CheckpointError::MissingSection(name.to_string())),
        }
    }

    /// The named `u64` section, or a typed error.
    pub fn u64s(&self, name: &str) -> Result<&[u64], CheckpointError> {
        match self.find(name) {
            Some(SectionData::U64(v)) => Ok(v),
            _ => Err(CheckpointError::MissingSection(name.to_string())),
        }
    }

    /// The named `f64` section, or a typed error.
    pub fn f64s(&self, name: &str) -> Result<&[f64], CheckpointError> {
        match self.find(name) {
            Some(SectionData::F64(v)) => Ok(v),
            _ => Err(CheckpointError::MissingSection(name.to_string())),
        }
    }

    /// Requires the checkpoint to belong to `primitive` (resume entry
    /// points call this before touching any section).
    pub fn expect_primitive(&self, primitive: &str) -> Result<(), CheckpointError> {
        if self.primitive == primitive {
            Ok(())
        } else {
            Err(CheckpointError::WrongPrimitive {
                expected: primitive.to_string(),
                found: self.primitive.clone(),
            })
        }
    }

    /// Serializes to the `gunrock-ckpt/v1` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.field_str("schema", CKPT_SCHEMA_V1);
        j.field_str("primitive", &self.primitive);
        j.field_u64("iteration", self.iteration as u64);
        j.key("sections");
        j.begin_array();
        for s in &self.sections {
            j.begin_object();
            j.field_str("name", &s.name);
            j.field_str("type", s.data.type_name());
            j.field_u64("len", s.data.len() as u64);
            j.end_object();
        }
        j.end_array();
        j.end_object();
        let header = j.finish().into_bytes();

        let payload_len: usize = self.sections.iter().map(|s| s.data.byte_len()).sum();
        let mut out = Vec::with_capacity(8 + 4 + header.len() + payload_len + 8);
        out.extend_from_slice(CKPT_MAGIC_V1);
        out.extend_from_slice(&(header.len() as u32).to_le_bytes());
        out.extend_from_slice(&header);
        for s in &self.sections {
            match &s.data {
                SectionData::U32(v) => {
                    for &x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                SectionData::U64(v) => {
                    for &x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
                SectionData::F64(v) => {
                    for &x in v {
                        out.extend_from_slice(&x.to_le_bytes());
                    }
                }
            }
        }
        let checksum = fnv1a(&out[12..]);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes a `gunrock-ckpt/v1` byte stream, verifying magic,
    /// version, structure, and the trailing checksum.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        if bytes.len() < 8 {
            if bytes.len() >= 6 && &bytes[..6] == b"GRCKPT" {
                return Err(CheckpointError::Truncated { what: "magic" });
            }
            return Err(CheckpointError::BadMagic);
        }
        let magic = &bytes[..8];
        if magic != CKPT_MAGIC_V1 {
            if &magic[..6] == b"GRCKPT" {
                return Err(CheckpointError::VersionMismatch {
                    found: String::from_utf8_lossy(&magic[6..8]).into_owned(),
                });
            }
            return Err(CheckpointError::BadMagic);
        }
        let header_len = bytes
            .get(8..12)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize)
            .ok_or(CheckpointError::Truncated { what: "header length" })?;
        let header_end = 12usize
            .checked_add(header_len)
            .ok_or_else(|| CheckpointError::Malformed("header length overflows".into()))?;
        let header_bytes = bytes
            .get(12..header_end)
            .ok_or(CheckpointError::Truncated { what: "JSON header" })?;
        let header_text = std::str::from_utf8(header_bytes)
            .map_err(|_| CheckpointError::Malformed("header is not UTF-8".into()))?;
        let header = JsonValue::parse(header_text)
            .map_err(|e| CheckpointError::Malformed(format!("header JSON: {e}")))?;

        let schema = header
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CheckpointError::Malformed("header missing schema".into()))?;
        if schema != CKPT_SCHEMA_V1 {
            return Err(CheckpointError::VersionMismatch { found: schema.to_string() });
        }
        let primitive = header
            .get("primitive")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| CheckpointError::Malformed("header missing primitive".into()))?
            .to_string();
        let iteration = header
            .get("iteration")
            .and_then(JsonValue::as_u64)
            .filter(|&i| i <= u32::MAX as u64)
            .ok_or_else(|| CheckpointError::Malformed("header missing iteration".into()))?
            as u32;
        let table = header
            .get("sections")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| CheckpointError::Malformed("header missing sections".into()))?;

        // verify the checksum over header + payload before decoding arrays
        if bytes.len() < header_end + 8 {
            return Err(CheckpointError::Truncated { what: "checksum" });
        }
        let body_end = bytes.len() - 8;
        let tail = &bytes[body_end..];
        let stored = u64::from_le_bytes([
            tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
        ]);
        let computed = fnv1a(&bytes[12..body_end]);
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut sections = Vec::with_capacity(table.len());
        let mut cursor = header_end;
        for entry in table {
            let name = entry
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| CheckpointError::Malformed("section missing name".into()))?
                .to_string();
            let ty = entry
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| CheckpointError::Malformed("section missing type".into()))?;
            let len = entry
                .get("len")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| CheckpointError::Malformed("section missing len".into()))?
                as usize;
            let width = match ty {
                "u32" => 4usize,
                "u64" | "f64" => 8,
                other => {
                    return Err(CheckpointError::Malformed(format!(
                        "unknown section type {other:?}"
                    )))
                }
            };
            let nbytes = len
                .checked_mul(width)
                .ok_or_else(|| CheckpointError::Malformed("section size overflows".into()))?;
            let end = cursor
                .checked_add(nbytes)
                .filter(|&e| e <= body_end)
                .ok_or(CheckpointError::Truncated { what: "section payload" })?;
            let raw = &bytes[cursor..end];
            let data = match ty {
                "u32" => SectionData::U32(
                    raw.chunks_exact(4)
                        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect(),
                ),
                "u64" => SectionData::U64(
                    raw.chunks_exact(8)
                        .map(|c| {
                            u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                        })
                        .collect(),
                ),
                _ => SectionData::F64(
                    raw.chunks_exact(8)
                        .map(|c| {
                            f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]])
                        })
                        .collect(),
                ),
            };
            sections.push(Section { name, data });
            cursor = end;
        }
        if cursor != body_end {
            return Err(CheckpointError::Malformed(format!(
                "{} payload bytes beyond the declared sections",
                body_end - cursor
            )));
        }
        Ok(Checkpoint { primitive, iteration, sections })
    }

    /// Writes the checkpoint atomically: encode to `path` with a `.tmp`
    /// suffix, fsync, then rename over the destination. If the rename
    /// itself fails, the orphaned tmp file is removed before the error
    /// surfaces, so a failed save leaves the directory exactly as it was.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_inner(path, false)
    }

    /// Fault-injection hook proving the atomicity claim of
    /// [`save`](Self::save): writes and fsyncs the tmp file exactly like
    /// a real save, then *stops before the rename* — the state a process
    /// crash at that instant leaves behind. The tmp file remains on disk
    /// as the crash artifact, the previous checkpoint at `path` (if any)
    /// is untouched and still loads, and the returned `Interrupted` io
    /// error reports the simulated crash to the caller.
    pub fn save_crash_before_rename(&self, path: &Path) -> Result<(), CheckpointError> {
        self.save_inner(path, true)
    }

    fn save_inner(
        &self,
        path: &Path,
        crash_before_rename: bool,
    ) -> Result<(), CheckpointError> {
        let bytes = self.encode();
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        if crash_before_rename {
            return Err(CheckpointError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                "injected crash before checkpoint rename",
            )));
        }
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(CheckpointError::Io(e));
        }
        Ok(())
    }

    /// Reads and decodes a checkpoint file.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Checkpoint::decode(&bytes)
    }
}

/// 64-bit FNV-1a (same parameters as the graph binary format's
/// integrity checksum: detects truncation and bit rot, not tampering).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new("bfs", 7);
        c.push_u32("frontier", vec![3, 1, 4, 1, 5]);
        c.push_u32("labels", vec![0, u32::MAX, 2]);
        c.push_u64("meta", vec![42, u64::MAX]);
        c.push_f64("scores", vec![0.15, -1.0, f64::MIN_POSITIVE]);
        c
    }

    #[test]
    fn round_trip_preserves_everything() {
        let c = sample();
        let back = Checkpoint::decode(&c.encode()).expect("own output decodes");
        assert_eq!(back, c);
        assert_eq!(back.primitive(), "bfs");
        assert_eq!(back.iteration(), 7);
        assert_eq!(back.u32s("frontier").expect("present"), &[3, 1, 4, 1, 5]);
        assert_eq!(back.u64s("meta").expect("present"), &[42, u64::MAX]);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let c = Checkpoint::new("cc", 0);
        assert_eq!(Checkpoint::decode(&c.encode()).expect("decodes"), c);
    }

    #[test]
    fn rejects_bad_magic_and_version_mismatch() {
        assert!(matches!(
            Checkpoint::decode(b"NOTCKPT0xxxxxxxxxxxx"),
            Err(CheckpointError::BadMagic)
        ));
        let mut bytes = sample().encode();
        bytes[6] = b'9';
        bytes[7] = b'9';
        match Checkpoint::decode(&bytes) {
            Err(CheckpointError::VersionMismatch { found }) => assert_eq!(found, "99"),
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncation_at_every_prefix() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "accepted a {cut}-byte prefix of a {}-byte checkpoint",
                bytes.len()
            );
        }
    }

    #[test]
    fn rejects_flipped_bits() {
        let bytes = sample().encode();
        for pos in [12, bytes.len() / 2, bytes.len() - 9] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(Checkpoint::decode(&bad).is_err(), "accepted a flip at byte {pos}");
        }
    }

    #[test]
    fn missing_and_mistyped_sections_are_typed_errors() {
        let c = sample();
        assert!(matches!(c.u32s("nope"), Err(CheckpointError::MissingSection(_))));
        assert!(matches!(c.f64s("frontier"), Err(CheckpointError::MissingSection(_))));
        assert!(c.expect_primitive("bfs").is_ok());
        assert!(matches!(
            c.expect_primitive("sssp"),
            Err(CheckpointError::WrongPrimitive { .. })
        ));
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let dir =
            std::env::temp_dir().join(format!("gunrock-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bfs.ckpt");
        let c = sample();
        c.save(&path).expect("save");
        assert_eq!(Checkpoint::load(&path).expect("load"), c);
        // the tmp file must not linger after a successful save
        assert!(!path.with_extension("ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_before_rename_preserves_the_previous_snapshot() {
        let dir =
            std::env::temp_dir().join(format!("gunrock-ckpt-crash-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("bfs.ckpt");
        let first = sample();
        first.save(&path).expect("save");
        let golden = std::fs::read(&path).expect("read");

        let mut second = sample();
        second.push_u32("extra", vec![9, 9, 9]);
        let err = second.save_crash_before_rename(&path).expect_err("must report the crash");
        assert!(matches!(err, CheckpointError::Io(_)));
        // the crash artifact exists, fully written...
        let tmp = path.with_extension("ckpt.tmp");
        assert!(tmp.exists(), "crash leaves the tmp file behind");
        // ...and the resumable file still holds the previous snapshot,
        // byte for byte
        assert_eq!(std::fs::read(&path).expect("read"), golden);
        assert_eq!(Checkpoint::load(&path).expect("load"), first);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The vendored proptest has no regex string strategies; build short
    /// lowercase names from byte vectors instead.
    fn arb_name() -> impl Strategy<Value = String> {
        proptest::collection::vec(0u8..26, 1..12)
            .prop_map(|bytes| bytes.into_iter().map(|b| (b'a' + b) as char).collect())
    }

    proptest! {
        /// Satellite S3: arbitrary section contents round-trip exactly
        /// (including NaN bit patterns in f64 sections), and appending or
        /// removing one byte is always rejected.
        #[test]
        fn prop_round_trip(
            primitive in arb_name(),
            iteration in 0u32..u32::MAX,
            u32s in proptest::collection::vec(any::<u32>(), 0..200),
            u64s in proptest::collection::vec(any::<u64>(), 0..100),
            f64s in proptest::collection::vec(any::<u64>(), 0..100),
        ) {
            let f64s: Vec<f64> = f64s.into_iter().map(f64::from_bits).collect();
            let mut c = Checkpoint::new(&primitive, iteration);
            c.push_u32("frontier", u32s.clone());
            c.push_u64("counters", u64s.clone());
            c.push_f64("values", f64s.clone());
            let bytes = c.encode();
            let back = Checkpoint::decode(&bytes).expect("round trip");
            prop_assert_eq!(back.primitive(), primitive.as_str());
            prop_assert_eq!(back.iteration(), iteration);
            prop_assert_eq!(back.u32s("frontier").expect("u32s"), &u32s[..]);
            prop_assert_eq!(back.u64s("counters").expect("u64s"), &u64s[..]);
            // compare f64 *bits* so NaN payloads count as equal
            let back_bits: Vec<u64> =
                back.f64s("values").expect("f64s").iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u64> = f64s.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(back_bits, want_bits);
            // one byte short is truncated; one byte extra breaks the checksum
            prop_assert!(Checkpoint::decode(&bytes[..bytes.len() - 1]).is_err());
            let mut padded = bytes.clone();
            padded.push(0xAB);
            prop_assert!(Checkpoint::decode(&padded).is_err());
        }

        /// Any mangled version tag in the magic is a typed rejection.
        #[test]
        fn prop_version_mismatch(a in 0u8..62, b in 0u8..62) {
            let digit = |x: u8| match x {
                0..=9 => b'0' + x,
                10..=35 => b'a' + (x - 10),
                _ => b'A' + (x - 36),
            };
            let v = [digit(a), digit(b)];
            prop_assume!(&v != b"01");
            let mut bytes = Checkpoint::new("pr", 1).encode();
            bytes[6..8].copy_from_slice(&v);
            prop_assert!(matches!(
                Checkpoint::decode(&bytes),
                Err(CheckpointError::VersionMismatch { .. })
            ));
        }
    }
}
