//! Minimal JSON emission for the stats export paths.
//!
//! The workspace builds offline with no serde available (see
//! `vendor/README.md`), so the observability layer hand-writes its JSON
//! through this small builder. It covers exactly what the exporters
//! need: objects, arrays, and scalar values with correct string escaping
//! and non-finite-float handling. It is an *emitter only* — parsing is
//! left to the consumers (python in CI, humans elsewhere).

/// Incremental JSON document builder.
///
/// ```
/// use gunrock_engine::json::JsonBuilder;
/// let mut j = JsonBuilder::new();
/// j.begin_object();
/// j.field_str("name", "bfs");
/// j.field_u64("edges", 42);
/// j.key("steps");
/// j.begin_array();
/// j.value_f64(1.5);
/// j.end_array();
/// j.end_object();
/// assert_eq!(j.finish(), r#"{"name":"bfs","edges":42,"steps":[1.5]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonBuilder {
    out: String,
    /// Per-nesting-level flag: does the next element need a leading comma?
    needs_comma: Vec<bool>,
}

impl JsonBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next `value_*`/`begin_*` call supplies
    /// its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        // the value following a key must not get its own comma
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self.needs_comma.push(false);
        self.needs_comma.pop();
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
    }

    /// String value.
    pub fn value_str(&mut self, v: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
    }

    /// Unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Float value; NaN and infinities are emitted as `null` (JSON has no
    /// representation for them).
    pub fn value_f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// `null`.
    pub fn value_null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    /// Key + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
        self.mark_comma();
    }

    /// Key + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
        self.mark_comma();
    }

    /// Key + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
        self.mark_comma();
    }

    /// Key + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.value_bool(v);
        self.mark_comma();
    }

    /// Key + `null`.
    pub fn field_null(&mut self, k: &str) {
        self.key(k);
        self.value_null();
        self.mark_comma();
    }

    fn mark_comma(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            *last = true;
        }
    }

    /// Returns the finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document() {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.field_str("a", "x\"y");
        j.key("b");
        j.begin_array();
        j.value_u64(1);
        j.value_u64(2);
        j.begin_object();
        j.field_bool("ok", true);
        j.end_object();
        j.end_array();
        j.field_null("c");
        j.end_object();
        assert_eq!(j.finish(), r#"{"a":"x\"y","b":[1,2,{"ok":true}],"c":null}"#);
    }

    #[test]
    fn floats_and_specials() {
        let mut j = JsonBuilder::new();
        j.begin_array();
        j.value_f64(1.25);
        j.value_f64(f64::NAN);
        j.value_f64(f64::INFINITY);
        j.end_array();
        assert_eq!(j.finish(), "[1.25,null,null]");
    }

    #[test]
    fn escaping_control_characters() {
        let mut out = String::new();
        escape_into(&mut out, "a\nb\u{1}c\\");
        assert_eq!(out, "a\\nb\\u0001c\\\\");
    }

    #[test]
    fn top_level_scalar_array_has_no_leading_comma() {
        let mut j = JsonBuilder::new();
        j.begin_array();
        j.value_str("only");
        j.end_array();
        assert_eq!(j.finish(), r#"["only"]"#);
    }
}
