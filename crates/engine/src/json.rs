//! Minimal JSON emission and parsing for the stats/checkpoint paths.
//!
//! The workspace builds offline with no serde available (see
//! `vendor/README.md`), so the observability layer hand-writes its JSON
//! through this small builder. It covers exactly what the exporters
//! need: objects, arrays, and scalar values with correct string escaping
//! and non-finite-float handling. The matching [`JsonValue`] parser
//! exists for the one consumer that must read JSON back — the
//! `gunrock-ckpt/v1` checkpoint header — and accepts exactly the subset
//! the builder emits.

/// Incremental JSON document builder.
///
/// ```
/// use gunrock_engine::json::JsonBuilder;
/// let mut j = JsonBuilder::new();
/// j.begin_object();
/// j.field_str("name", "bfs");
/// j.field_u64("edges", 42);
/// j.key("steps");
/// j.begin_array();
/// j.value_f64(1.5);
/// j.end_array();
/// j.end_object();
/// assert_eq!(j.finish(), r#"{"name":"bfs","edges":42,"steps":[1.5]}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonBuilder {
    out: String,
    /// Per-nesting-level flag: does the next element need a leading comma?
    needs_comma: Vec<bool>,
}

impl JsonBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn pre_value(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next `value_*`/`begin_*` call supplies
    /// its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        // the value following a key must not get its own comma
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
        self.needs_comma.push(false);
        self.needs_comma.pop();
        if let Some(last) = self.needs_comma.last_mut() {
            *last = false;
        }
    }

    /// String value.
    pub fn value_str(&mut self, v: &str) {
        self.pre_value();
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
    }

    /// Unsigned integer value.
    pub fn value_u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Float value; NaN and infinities are emitted as `null` (JSON has no
    /// representation for them).
    pub fn value_f64(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            self.out.push_str(&format!("{v}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Boolean value.
    pub fn value_bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// `null`.
    pub fn value_null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    /// Key + string value.
    pub fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.value_str(v);
        self.mark_comma();
    }

    /// Key + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) {
        self.key(k);
        self.value_u64(v);
        self.mark_comma();
    }

    /// Key + float value.
    pub fn field_f64(&mut self, k: &str, v: f64) {
        self.key(k);
        self.value_f64(v);
        self.mark_comma();
    }

    /// Key + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.value_bool(v);
        self.mark_comma();
    }

    /// Key + `null`.
    pub fn field_null(&mut self, k: &str) {
        self.key(k);
        self.value_null();
        self.mark_comma();
    }

    fn mark_comma(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            *last = true;
        }
    }

    /// Returns the finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A parsed JSON document node.
///
/// Object keys keep insertion order (a `Vec` of pairs, not a map): the
/// documents this parser reads are small headers, and order preservation
/// makes round-trip tests exact.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integral values up to 2^53 are
    /// exact, which covers every length/count this layer reads back).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integral
    /// number within `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &[u8],
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| format!("invalid number encoding at byte {start}"))?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "bad \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // surrogate pairs are never emitted by the builder;
                        // map unpaired surrogates to the replacement char
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar value
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let c = rest.chars().next().ok_or_else(|| "empty string tail".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect_byte(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document() {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.field_str("a", "x\"y");
        j.key("b");
        j.begin_array();
        j.value_u64(1);
        j.value_u64(2);
        j.begin_object();
        j.field_bool("ok", true);
        j.end_object();
        j.end_array();
        j.field_null("c");
        j.end_object();
        assert_eq!(j.finish(), r#"{"a":"x\"y","b":[1,2,{"ok":true}],"c":null}"#);
    }

    #[test]
    fn floats_and_specials() {
        let mut j = JsonBuilder::new();
        j.begin_array();
        j.value_f64(1.25);
        j.value_f64(f64::NAN);
        j.value_f64(f64::INFINITY);
        j.end_array();
        assert_eq!(j.finish(), "[1.25,null,null]");
    }

    #[test]
    fn escaping_control_characters() {
        let mut out = String::new();
        escape_into(&mut out, "a\nb\u{1}c\\");
        assert_eq!(out, "a\\nb\\u0001c\\\\");
    }

    #[test]
    fn top_level_scalar_array_has_no_leading_comma() {
        let mut j = JsonBuilder::new();
        j.begin_array();
        j.value_str("only");
        j.end_array();
        assert_eq!(j.finish(), r#"["only"]"#);
    }

    #[test]
    fn parser_round_trips_builder_output() {
        let mut j = JsonBuilder::new();
        j.begin_object();
        j.field_str("name", "b\"f\\s\n");
        j.field_u64("len", 12345);
        j.field_f64("ms", 1.25);
        j.field_bool("ok", true);
        j.field_null("gap");
        j.key("sections");
        j.begin_array();
        j.begin_object();
        j.field_str("name", "labels");
        j.field_u64("len", 8);
        j.end_object();
        j.end_array();
        j.end_object();
        let doc = JsonValue::parse(&j.finish()).expect("builder output parses");
        assert_eq!(doc.get("name").and_then(JsonValue::as_str), Some("b\"f\\s\n"));
        assert_eq!(doc.get("len").and_then(JsonValue::as_u64), Some(12345));
        assert_eq!(doc.get("ms").and_then(JsonValue::as_f64), Some(1.25));
        assert_eq!(doc.get("gap"), Some(&JsonValue::Null));
        let sections = doc.get("sections").and_then(JsonValue::as_array).expect("array");
        assert_eq!(sections[0].get("len").and_then(JsonValue::as_u64), Some(8));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "tru",
            "[1 2]",
            "{\"a\" 1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parser_handles_numbers_and_escapes() {
        let doc = JsonValue::parse(r#"[-1.5e2, 0, 9007199254740992, "A\t"]"#)
            .expect("valid document");
        let items = doc.as_array().expect("array");
        assert_eq!(items[0].as_f64(), Some(-150.0));
        assert_eq!(items[0].as_u64(), None, "negative numbers are not u64");
        assert_eq!(items[1].as_u64(), Some(0));
        assert_eq!(items[2].as_u64(), Some(9007199254740992));
        assert_eq!(items[3].as_str(), Some("A\t"));
    }
}
