//! Parallel reductions over slices: sums, extrema, and counting — the
//! regular-parallel building blocks of convergence checks (e.g. "did any
//! component id change this iteration?") and frontier sizing (total
//! neighbor count ahead of an advance).

use crate::config::SEQUENTIAL_CUTOFF;
use rayon::prelude::*;

/// Generic parallel reduction with identity and associative operator.
pub fn reduce<T, F>(input: &[T], identity: T, op: F) -> T
where
    T: Copy + Send + Sync,
    F: Fn(T, T) -> T + Send + Sync,
{
    if input.len() < SEQUENTIAL_CUTOFF {
        return input.iter().fold(identity, |a, &b| op(a, b));
    }
    input.par_iter().copied().reduce(|| identity, &op)
}

/// Sum of `u32` values widened to `u64` (degree sums overflow u32 on
/// large frontiers).
pub fn sum_u32(input: &[u32]) -> u64 {
    if input.len() < SEQUENTIAL_CUTOFF {
        return input.iter().map(|&x| x as u64).sum();
    }
    input.par_iter().map(|&x| x as u64).sum()
}

/// Maximum value, or `None` for an empty slice.
pub fn max_u32(input: &[u32]) -> Option<u32> {
    if input.is_empty() {
        return None;
    }
    Some(reduce(input, 0, |a, b| a.max(b)))
}

/// Counts elements satisfying the predicate.
pub fn count_if<T, F>(input: &[T], pred: F) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if input.len() < SEQUENTIAL_CUTOFF {
        return input.iter().filter(|x| pred(x)).count();
    }
    input.par_iter().filter(|x| pred(x)).count()
}

/// True if any element satisfies the predicate (short-circuiting in the
/// parallel path).
pub fn any<T, F>(input: &[T], pred: F) -> bool
where
    T: Sync,
    F: Fn(&T) -> bool + Send + Sync,
{
    if input.len() < SEQUENTIAL_CUTOFF {
        return input.iter().any(&pred);
    }
    input.par_iter().any(pred)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_small_and_large_agree_with_reference() {
        let small: Vec<u32> = (0..100).collect();
        assert_eq!(sum_u32(&small), 4950);
        let large: Vec<u32> = (0..1_000_000).map(|i| i % 7).collect();
        let want: u64 = large.iter().map(|&x| x as u64).sum();
        assert_eq!(sum_u32(&large), want);
    }

    #[test]
    fn sum_does_not_overflow_u32() {
        let v = vec![u32::MAX; 8];
        assert_eq!(sum_u32(&v), 8 * u32::MAX as u64);
    }

    #[test]
    fn max_of_empty_is_none() {
        assert_eq!(max_u32(&[]), None);
        assert_eq!(max_u32(&[5, 2, 9, 1]), Some(9));
    }

    #[test]
    fn count_and_any() {
        let v: Vec<u32> = (0..10_000).collect();
        assert_eq!(count_if(&v, |&x| x % 10 == 0), 1000);
        assert!(any(&v, |&x| x == 9_999));
        assert!(!any(&v, |&x| x == 10_000));
    }

    #[test]
    fn generic_reduce_with_min() {
        let v = [7u32, 3, 9];
        assert_eq!(reduce(&v, u32::MAX, |a, b| a.min(b)), 3);
    }
}
