//! Concurrent bitmap over atomic words.
//!
//! Gunrock's pull-based advance "internally converts the current frontier
//! into a bitmap of vertices" (§4.1.1), and the idempotent filter's
//! bitmask-culling heuristic tests a visited bitmap before enqueueing.
//! `test_and_set` is the GPU's `atomicOr` returning the old bit.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fixed-capacity bitmap supporting concurrent set/test.
pub struct AtomicBitmap {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates a cleared bitmap with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        AtomicBitmap { words, len }
    }

    /// Bit capacity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Atomically sets bit `i`, returning its previous value. The winner
    /// of a concurrent race observes `false` exactly once — the mechanism
    /// behind unique vertex discovery.
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_and(!(1 << (i % 64)), Ordering::Relaxed);
    }

    /// Clears all bits. Not safe to call concurrently with setters
    /// (requires `&mut`).
    pub fn clear_all(&mut self) {
        for w in self.words.iter() {
            // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
            // winners); cross-phase visibility comes from the caller's join barrier.
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        // CAST: count_ones() <= 64 widens to usize losslessly.
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits (ascending).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
            // winners); cross-phase visibility comes from the caller's join barrier.
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    // CAST: trailing_zeros() <= 64 widens to usize losslessly.
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl std::fmt::Debug for AtomicBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBitmap({} bits, {} set)", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn set_get_clear() {
        let bm = AtomicBitmap::new(130);
        assert!(!bm.get(0));
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn test_and_set_returns_old_value() {
        let bm = AtomicBitmap::new(10);
        assert!(!bm.test_and_set(3));
        assert!(bm.test_and_set(3));
    }

    #[test]
    fn concurrent_test_and_set_has_exactly_one_winner_per_bit() {
        let bm = AtomicBitmap::new(1000);
        let winners: usize =
            (0..8000usize).into_par_iter().map(|i| !bm.test_and_set(i % 1000) as usize).sum();
        assert_eq!(winners, 1000);
        assert_eq!(bm.count_ones(), 1000);
    }

    #[test]
    fn iter_ones_ascending() {
        let bm = AtomicBitmap::new(200);
        for i in [5usize, 63, 64, 130, 199] {
            bm.set(i);
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![5, 63, 64, 130, 199]);
    }

    #[test]
    fn clear_all_resets() {
        let mut bm = AtomicBitmap::new(100);
        for i in 0..100 {
            bm.set(i);
        }
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn empty_bitmap() {
        let bm = AtomicBitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.iter_ones().count(), 0);
    }
}
