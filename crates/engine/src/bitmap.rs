//! Concurrent bitmaps over atomic words.
//!
//! Gunrock's pull-based advance "internally converts the current frontier
//! into a bitmap of vertices" (§4.1.1), and the idempotent filter's
//! bitmask-culling heuristic tests a visited bitmap before enqueueing.
//! `test_and_set` is the GPU's `atomicOr` returning the old bit.
//!
//! Two representations share the [`BitSet`] interface:
//!
//! * [`AtomicBitmap`] — a self-owned `Box<[AtomicU64]>`, for callers
//!   without a [`BufferPool`] in reach;
//! * [`PooledBitmap`] — the frontier representation of the masked
//!   word-sweep pull path: its words come from a [`BufferPool`] checkout
//!   (`take_u64`) and go back on release, so steady-state direction
//!   switches allocate nothing and pool stats count bitmap storage. It is
//!   *word-addressable*: operators iterate set bits with
//!   `trailing_zeros`, skip empty mask words wholesale, and batch
//!   bitmask-culling into one `fetch_or` per word.

use crate::frontier::Frontier;
use crate::pool::BufferPool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared-bitmap operations common to [`AtomicBitmap`] and
/// [`PooledBitmap`], so operators (pull advance, culling filter, fused
/// advance) accept either representation.
pub trait BitSet: Sync {
    /// Bit capacity.
    fn len(&self) -> usize;
    /// Number of 64-bit words backing the bitmap.
    fn word_count(&self) -> usize;
    /// Tests bit `i`.
    fn get(&self, i: usize) -> bool;
    /// Sets bit `i`.
    fn set(&self, i: usize);
    /// Atomically sets bit `i`, returning its previous value.
    fn test_and_set(&self, i: usize) -> bool;
    /// Loads word `wi`.
    fn load_word(&self, wi: usize) -> u64;
    /// Atomically ORs `bits` into word `wi`, returning the word's
    /// previous value — word-granular bitmask culling (one atomic for up
    /// to 64 `test_and_set`s).
    fn fetch_or_word(&self, wi: usize, bits: u64) -> u64;

    /// True if capacity is zero.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of set bits (popcount sweep).
    fn count_ones(&self) -> usize {
        // CAST: count_ones() <= 64 widens to usize losslessly.
        (0..self.word_count()).map(|wi| self.load_word(wi).count_ones() as usize).sum()
    }
}

/// A fixed-capacity bitmap supporting concurrent set/test.
pub struct AtomicBitmap {
    words: Box<[AtomicU64]>,
    len: usize,
}

impl AtomicBitmap {
    /// Creates a cleared bitmap with capacity for `len` bits.
    pub fn new(len: usize) -> Self {
        // ALLOC-OK(owned one-shot bitmap with no Context in scope; the
        // steady-state pull path uses pool-backed PooledBitmap instead)
        let words = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
        AtomicBitmap { words, len }
    }

    /// Bit capacity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tests bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Sets bit `i`.
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Atomically sets bit `i`, returning its previous value. The winner
    /// of a concurrent race observes `false` exactly once — the mechanism
    /// behind unique vertex discovery.
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }

    /// Clears bit `i`.
    #[inline]
    pub fn clear(&self, i: usize) {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_and(!(1 << (i % 64)), Ordering::Relaxed);
    }

    /// Clears all bits. Not safe to call concurrently with setters
    /// (requires `&mut`).
    pub fn clear_all(&mut self) {
        for w in self.words.iter() {
            // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
            // winners); cross-phase visibility comes from the caller's join barrier.
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        // CAST: count_ones() <= 64 widens to usize losslessly.
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum()
    }

    /// Iterates over the indices of set bits (ascending).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, w)| {
            // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
            // winners); cross-phase visibility comes from the caller's join barrier.
            let mut bits = w.load(Ordering::Relaxed);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    // CAST: trailing_zeros() <= 64 widens to usize losslessly.
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl BitSet for AtomicBitmap {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }
    #[inline]
    fn word_count(&self) -> usize {
        self.words.len()
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        AtomicBitmap::get(self, i)
    }
    #[inline]
    fn set(&self, i: usize) {
        AtomicBitmap::set(self, i)
    }
    #[inline]
    fn test_and_set(&self, i: usize) -> bool {
        AtomicBitmap::test_and_set(self, i)
    }
    #[inline]
    fn load_word(&self, wi: usize) -> u64 {
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[wi].load(Ordering::Relaxed)
    }
    #[inline]
    fn fetch_or_word(&self, wi: usize, bits: u64) -> u64 {
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[wi].fetch_or(bits, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for AtomicBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AtomicBitmap({} bits, {} set)", self.len, self.count_ones())
    }
}

/// Converts a pool-checked-out `u64` buffer into atomic words without
/// copying. Shared with the lane-packed multi-source frontier
/// (`crate::lanes`), whose per-vertex lane words use the same pooled
/// storage discipline.
pub(crate) fn into_atomic_words(mut v: Vec<u64>) -> Vec<AtomicU64> {
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    std::mem::forget(v);
    // SAFETY: std guarantees AtomicU64 "has the same in-memory
    // representation as the underlying integer type, u64", so size and
    // alignment match and the reconstructed Vec frees with the exact
    // layout it was allocated with.
    unsafe { Vec::from_raw_parts(ptr as *mut AtomicU64, len, cap) }
}

/// The inverse of [`into_atomic_words`], for returning storage to the
/// pool.
pub(crate) fn into_plain_words(mut v: Vec<AtomicU64>) -> Vec<u64> {
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    std::mem::forget(v);
    // SAFETY: same layout guarantee as into_atomic_words, in reverse; the
    // caller holds the Vec exclusively, so no outstanding atomic views
    // alias the storage.
    unsafe { Vec::from_raw_parts(ptr as *mut u64, len, cap) }
}

/// A pool-backed, word-addressable frontier bitmap (§4.1.1's
/// bitmap-of-predecessors, GraphBLAST's masked view).
///
/// Storage is a `BufferPool` `u64` checkout, so enact loops ping-pong
/// bitmaps across iterations exactly like list frontiers: `take` at the
/// Beamer switch, [`PooledBitmap::release`] when done, zero heap traffic
/// in between. Shared (`&self`) accessors are atomic (safe under
/// concurrent operator writes); exclusive (`&mut self`) word accessors
/// let the masked word sweep mutate partitioned word ranges without any
/// atomics at all.
pub struct PooledBitmap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl PooledBitmap {
    /// Checks out a cleared bitmap with capacity for `len` bits, drawing
    /// word storage from `pool` (counted by pool stats like any other
    /// checkout).
    pub fn take(pool: &BufferPool, len: usize) -> Self {
        let nw = len.div_ceil(64);
        let mut words = pool.take_u64(nw);
        // resize within pooled capacity: zero-fill only, no reallocation
        words.resize(nw, 0);
        PooledBitmap { words: into_atomic_words(words), len }
    }

    /// Returns the word storage to `pool` for reuse by the next checkout
    /// (bitmap or otherwise). Dropping without releasing is safe but
    /// forfeits the reuse.
    pub fn release(self, pool: &BufferPool) {
        pool.put_u64(into_plain_words(self.words));
    }

    /// Bit capacity.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive access to the backing words. The masked word sweep
    /// partitions this slice into disjoint per-task chunks and mutates
    /// through `AtomicU64::get_mut` — plain stores, no atomic RMWs.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [AtomicU64] {
        &mut self.words
    }

    /// Clears all bits (exclusive; a word-sweep memset).
    pub fn clear_all(&mut self) {
        for w in self.words.iter_mut() {
            *w.get_mut() = 0;
        }
    }

    /// Sets every bit that is *clear* in `of` (same capacity), masking
    /// tail bits past `len` to zero — how the pull path derives the
    /// unvisited-candidate bitmap as the complement of the visited set.
    pub fn fill_complement(&mut self, of: &impl BitSet) {
        assert_eq!(of.len(), self.len, "complement requires equal capacity");
        let nw = self.words.len();
        for (wi, w) in self.words.iter_mut().enumerate() {
            *w.get_mut() = !of.load_word(wi);
        }
        let tail = self.len % 64;
        if tail != 0 && nw > 0 {
            *self.words[nw - 1].get_mut() &= (1u64 << tail) - 1;
        }
    }

    /// Scatters a list frontier into the bitmap (the lazy list → bitmap
    /// conversion at the Beamer switch). Bits already set stay set.
    pub fn fill_from_frontier(&mut self, frontier: &Frontier) {
        for v in frontier {
            // CAST: vertex ids are u32 widened to usize for bitmap indexing — lossless.
            debug_assert!((v as usize) < self.len);
            let slot = self.words[v as usize / 64].get_mut();
            *slot |= 1u64 << (v % 64);
        }
    }

    /// Appends the indices of set bits (ascending) to `out` — the lazy
    /// bitmap → list conversion (`trailing_zeros` sweep with whole-word
    /// skip of empty words).
    pub fn push_ones_into(&self, out: &mut Vec<u32>) {
        for wi in 0..self.words.len() {
            let mut bits = self.load_word(wi);
            while bits != 0 {
                // CAST: word index * 64 + trailing_zeros() < len < u32::MAX by
                // construction (vertex counts are u32).
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push((wi * 64 + b) as u32);
            }
        }
    }

    /// Iterates over the indices of set bits (ascending).
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.words.len()).flat_map(move |wi| {
            let mut bits = self.load_word(wi);
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    // CAST: trailing_zeros() <= 64 widens to usize losslessly.
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        BitSet::count_ones(self)
    }

    /// Tests bit `i` (shared, atomic).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].load(Ordering::Relaxed) & (1 << (i % 64)) != 0
    }

    /// Sets bit `i` (shared, atomic).
    #[inline]
    pub fn set(&self, i: usize) {
        debug_assert!(i < self.len);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_or(1 << (i % 64), Ordering::Relaxed);
    }

    /// Atomically sets bit `i`, returning its previous value.
    #[inline]
    pub fn test_and_set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i % 64);
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[i / 64].fetch_or(mask, Ordering::Relaxed) & mask != 0
    }
}

impl BitSet for PooledBitmap {
    #[inline]
    fn len(&self) -> usize {
        self.len
    }
    #[inline]
    fn word_count(&self) -> usize {
        self.words.len()
    }
    #[inline]
    fn get(&self, i: usize) -> bool {
        PooledBitmap::get(self, i)
    }
    #[inline]
    fn set(&self, i: usize) {
        PooledBitmap::set(self, i)
    }
    #[inline]
    fn test_and_set(&self, i: usize) -> bool {
        PooledBitmap::test_and_set(self, i)
    }
    #[inline]
    fn load_word(&self, wi: usize) -> u64 {
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[wi].load(Ordering::Relaxed)
    }
    #[inline]
    fn fetch_or_word(&self, wi: usize, bits: u64) -> u64 {
        // ORDERING: Relaxed — bit RMWs need only atomicity (unique test_and_set
        // winners); cross-phase visibility comes from the caller's join barrier.
        self.words[wi].fetch_or(bits, Ordering::Relaxed)
    }
}

impl std::fmt::Debug for PooledBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBitmap({} bits, {} set)", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn set_get_clear() {
        let bm = AtomicBitmap::new(130);
        assert!(!bm.get(0));
        bm.set(0);
        bm.set(64);
        bm.set(129);
        assert!(bm.get(0) && bm.get(64) && bm.get(129));
        assert!(!bm.get(1));
        bm.clear(64);
        assert!(!bm.get(64));
        assert_eq!(bm.count_ones(), 2);
    }

    #[test]
    fn test_and_set_returns_old_value() {
        let bm = AtomicBitmap::new(10);
        assert!(!bm.test_and_set(3));
        assert!(bm.test_and_set(3));
    }

    #[test]
    fn concurrent_test_and_set_has_exactly_one_winner_per_bit() {
        let bm = AtomicBitmap::new(1000);
        let winners: usize =
            (0..8000usize).into_par_iter().map(|i| !bm.test_and_set(i % 1000) as usize).sum();
        assert_eq!(winners, 1000);
        assert_eq!(bm.count_ones(), 1000);
    }

    #[test]
    fn iter_ones_ascending() {
        let bm = AtomicBitmap::new(200);
        for i in [5usize, 63, 64, 130, 199] {
            bm.set(i);
        }
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![5, 63, 64, 130, 199]);
    }

    #[test]
    fn clear_all_resets() {
        let mut bm = AtomicBitmap::new(100);
        for i in 0..100 {
            bm.set(i);
        }
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
    }

    #[test]
    fn empty_bitmap() {
        let bm = AtomicBitmap::new(0);
        assert!(bm.is_empty());
        assert_eq!(bm.iter_ones().count(), 0);
    }

    #[test]
    fn fetch_or_word_batches_test_and_set() {
        let bm = AtomicBitmap::new(130);
        bm.set(3);
        let old = bm.fetch_or_word(0, 0b1011);
        assert_eq!(old, 0b1000, "previous word returned");
        assert!(bm.get(0) && bm.get(1) && bm.get(3));
        // newly-set bits are exactly `bits & !old`
        assert_eq!(0b1011 & !old, 0b0011);
    }

    #[test]
    fn pooled_bitmap_draws_and_returns_pool_storage() {
        let pool = BufferPool::new();
        let bm = PooledBitmap::take(&pool, 200);
        assert_eq!(bm.len(), 200);
        assert_eq!(bm.word_count(), 4);
        assert_eq!(pool.stats().checkouts, 1);
        bm.set(5);
        bm.set(64);
        bm.set(199);
        assert_eq!(bm.count_ones(), 3);
        assert!(bm.test_and_set(5));
        assert!(!bm.test_and_set(6));
        bm.release(&pool);
        assert_eq!(pool.stats().releases, 1);
        // the next checkout reuses the same words, cleared
        let again = PooledBitmap::take(&pool, 200);
        assert_eq!(again.count_ones(), 0);
        assert_eq!(pool.stats().allocations, 1, "storage reused, not reallocated");
    }

    #[test]
    fn pooled_conversions_round_trip_a_frontier() {
        let pool = BufferPool::new();
        let mut bm = PooledBitmap::take(&pool, 300);
        let f = Frontier::from_vec(vec![1, 63, 64, 130, 299]);
        bm.fill_from_frontier(&f);
        assert_eq!(bm.iter_ones().collect::<Vec<_>>(), vec![1, 63, 64, 130, 299]);
        let mut back = Vec::new();
        bm.push_ones_into(&mut back);
        assert_eq!(back, f.as_slice());
        bm.clear_all();
        assert_eq!(bm.count_ones(), 0);
        bm.release(&pool);
    }

    #[test]
    fn pooled_complement_masks_tail_bits() {
        let pool = BufferPool::new();
        // 70 bits: the second word has 58 tail bits past the capacity
        let visited = PooledBitmap::take(&pool, 70);
        visited.set(0);
        visited.set(69);
        let mut unvisited = PooledBitmap::take(&pool, 70);
        unvisited.fill_complement(&visited);
        assert_eq!(unvisited.count_ones(), 68);
        assert!(!unvisited.get(0) && !unvisited.get(69));
        assert!(unvisited.get(1) && unvisited.get(68));
        // no phantom bits past len
        assert_eq!(unvisited.iter_ones().max(), Some(68));
        visited.release(&pool);
        unvisited.release(&pool);
    }

    #[test]
    fn bitset_trait_unifies_both_representations() {
        fn probe<B: BitSet>(b: &B) -> (usize, usize, bool) {
            b.set(2);
            (b.len(), b.count_ones(), b.get(2))
        }
        let pool = BufferPool::new();
        let atomic = AtomicBitmap::new(100);
        let pooled = PooledBitmap::take(&pool, 100);
        assert_eq!(probe(&atomic), (100, 1, true));
        assert_eq!(probe(&pooled), (100, 1, true));
    }

    #[test]
    fn pooled_concurrent_test_and_set_has_one_winner_per_bit() {
        let pool = BufferPool::new();
        let bm = PooledBitmap::take(&pool, 1000);
        let winners: usize =
            (0..8000usize).into_par_iter().map(|i| !bm.test_and_set(i % 1000) as usize).sum();
        assert_eq!(winners, 1000);
        assert_eq!(bm.count_ones(), 1000);
        bm.release(&pool);
    }
}
