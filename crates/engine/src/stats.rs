//! Work counters and timing for the evaluation harness.
//!
//! The paper reports runtime (ms) and edge throughput (MTEPS = millions
//! of traversed edges per second); operators increment these counters so
//! primitives can report both without re-deriving traversal counts.

use crate::json::JsonBuilder;
use crate::pool::PoolStatsSnapshot;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cumulative work counters for one primitive execution. Cheap enough to
/// update per bulk step (not per element).
#[derive(Debug, Default)]
pub struct WorkCounters {
    /// Edges examined by advance steps (the numerator of MTEPS).
    pub edges_examined: AtomicU64,
    /// Elements processed by filter steps.
    pub elements_filtered: AtomicU64,
    /// Bulk-synchronous iterations executed.
    pub iterations: AtomicU64,
    /// Iterations run in pull (reverse) direction by the
    /// direction-optimized advance.
    pub pull_iterations: AtomicU64,
}

impl WorkCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to the edge-examination count.
    #[inline]
    pub fn add_edges(&self, n: u64) {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.edges_examined.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the filtered-element count.
    #[inline]
    pub fn add_filtered(&self, n: u64) {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.elements_filtered.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one completed iteration; `pull` marks reverse-direction.
    #[inline]
    pub fn add_iteration(&self, pull: bool) {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.iterations.fetch_add(1, Ordering::Relaxed);
        if pull {
            self.pull_iterations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the edge count.
    pub fn edges(&self) -> u64 {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.edges_examined.load(Ordering::Relaxed)
    }

    /// Snapshot of the iteration count.
    pub fn iters(&self) -> u64 {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.iterations.load(Ordering::Relaxed)
    }

    /// Snapshot of pull-direction iterations.
    pub fn pull_iters(&self) -> u64 {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.pull_iterations.load(Ordering::Relaxed)
    }
}

/// How an enact loop ended. Primitives report this alongside their
/// results so callers can tell a converged answer from a best-so-far
/// partial one (graceful degradation under execution guards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The frontier drained naturally; results are complete.
    #[default]
    Converged,
    /// The iteration cap tripped; results reflect the completed
    /// iterations only.
    IterationCapped,
    /// The wall-clock budget tripped; results are best-so-far.
    TimedOut,
    /// The cancel flag tripped; results are best-so-far.
    Cancelled,
    /// An operator failed (e.g. a functor panic) and the problem state
    /// is poisoned; results must not be read as meaningful.
    Failed,
}

impl RunOutcome {
    /// True when the run converged (the only complete outcome).
    pub fn is_converged(self) -> bool {
        self == RunOutcome::Converged
    }

    /// True when a guard tripped and the results are partial.
    pub fn is_partial(self) -> bool {
        !self.is_converged()
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunOutcome::Converged => "converged",
            RunOutcome::IterationCapped => "iteration-capped",
            RunOutcome::TimedOut => "timed-out",
            RunOutcome::Cancelled => "cancelled",
            RunOutcome::Failed => "failed",
        })
    }
}

/// Result of timing a primitive: wall time plus derived throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Timing {
    /// Measured wall time.
    pub elapsed: Duration,
    /// Edges examined during the measured interval.
    pub edges_examined: u64,
}

impl Timing {
    /// Runtime in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }

    /// Millions of traversed edges per second, the paper's throughput
    /// metric. Returns 0 for zero-duration runs.
    pub fn mteps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.edges_examined as f64 / s / 1e6
        }
    }
}

/// Times a closure, pairing its wall time with an edge count supplied by
/// the closure's return value.
pub fn time_with_edges<T>(f: impl FnOnce() -> (T, u64)) -> (T, Timing) {
    let start = Instant::now();
    let (value, edges) = f();
    let elapsed = start.elapsed();
    (value, Timing { elapsed, edges_examined: edges })
}

// ---------------------------------------------------------------------------
// Per-operator instrumentation (the observability layer).
//
// The paper's evaluation (§6) is built on per-kernel runtimes and traversed
// edge counts; the global `WorkCounters` above cannot attribute work to a
// specific operator call or explain why the direction optimizer flipped.
// A `StatsSink` — when installed on a `Context` — collects one `StepRecord`
// per operator invocation. When no sink is installed the operators skip all
// timing (one `Option` check per bulk step), so the hot path stays at
// relaxed-atomic-counter cost.
// ---------------------------------------------------------------------------

/// Which of the three Gunrock operator families a step belongs to (§4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperatorKind {
    /// Frontier expansion over neighbor lists.
    Advance,
    /// Frontier compaction / validity culling.
    Filter,
    /// Per-element computation over a frontier.
    Compute,
}

impl OperatorKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            OperatorKind::Advance => "advance",
            OperatorKind::Filter => "filter",
            OperatorKind::Compute => "compute",
        }
    }
}

/// Traversal direction of an advance step, for the direction-optimized
/// primitives (push scatters from the frontier; pull gathers into
/// unvisited vertices).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StepDirection {
    /// Forward/scatter traversal from the frontier.
    Push,
    /// Reverse/gather traversal into candidate vertices.
    Pull,
}

impl StepDirection {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            StepDirection::Push => "push",
            StepDirection::Pull => "pull",
        }
    }
}

/// One instrumented operator invocation.
#[derive(Clone, Debug, PartialEq)]
pub struct StepRecord {
    /// Bulk-synchronous iteration this step ran in (0-based; advanced by
    /// the enactor via [`StatsSink::next_iteration`]).
    pub iteration: u32,
    /// Operator family.
    pub operator: OperatorKind,
    /// The workload-mapping strategy the dispatcher chose
    /// (e.g. `"thread_mapped"`, `"twc"`, `"auto:load_balanced"`,
    /// `"pull"`, `"culling"`).
    pub strategy: &'static str,
    /// Traversal direction; `None` for filter/compute steps.
    pub direction: Option<StepDirection>,
    /// Input frontier population. For push steps this is the frontier
    /// list length; for pull steps it is the in-frontier bitmap popcount
    /// — the same quantity, so the field is comparable across directions
    /// (gunrock-stats/v1 consumers previously saw the candidate count
    /// here for pull steps; that now lives in
    /// [`StepRecord::candidates_len`]).
    pub input_len: u64,
    /// Candidate vertices scanned by a pull-direction step (the
    /// unvisited sweep set) — distinct from the in-frontier population.
    /// Zero for push/filter/compute steps, which have no candidate set.
    pub candidates_len: u64,
    /// Distinct traversal lanes still live in this step's frontier, for
    /// the bit-parallel multi-source (`msbfs`) strategy: the popcount of
    /// the OR over every active vertex's lane word. Zero for
    /// single-source steps, which have no lane packing.
    pub lanes_active: u64,
    /// Output frontier length (0 for for-effect steps).
    pub output_len: u64,
    /// Edges examined by this step alone.
    pub edges_examined: u64,
    /// Wall-clock duration of the bulk step.
    pub duration: Duration,
}

/// A recorded direction-optimizer decision change, with the reason the
/// hysteresis tripped (Beamer-style alpha/beta comparison, §4.4 /
/// PAPERS.md).
#[derive(Clone, Debug, PartialEq)]
pub struct DirectionSwitch {
    /// Iteration at which the new direction took effect.
    pub iteration: u32,
    /// Direction before the switch.
    pub from: StepDirection,
    /// Direction after the switch.
    pub to: StepDirection,
    /// Human-readable trigger, e.g. the alpha/beta inequality that fired.
    pub reason: String,
}

/// What kind of recovery action the fault-tolerance layer took.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryKind {
    /// A failed operator attempt was retried with the same strategy.
    Retry,
    /// A failing strategy was abandoned for the always-safe fallback
    /// (`load_balanced` -> `thread_mapped`).
    Fallback,
    /// A checkpoint write failed; the run continued without it.
    CheckpointFailed,
}

impl RecoveryKind {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryKind::Retry => "retry",
            RecoveryKind::Fallback => "fallback",
            RecoveryKind::CheckpointFailed => "checkpoint-failed",
        }
    }
}

/// One recovery action taken by the fault-tolerance layer: a retry, a
/// strategy fallback, or a tolerated checkpoint-write failure. Fault-free
/// runs record none (and the bench gate asserts exactly that).
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveryEvent {
    /// Iteration the recovery happened in.
    pub iteration: u32,
    /// Operator family that failed (or `"checkpoint"`).
    pub operator: &'static str,
    /// What the recovery layer did.
    pub kind: RecoveryKind,
    /// Strategy that failed.
    pub from_strategy: &'static str,
    /// Strategy used after recovery (same as `from_strategy` for a
    /// retry).
    pub to_strategy: &'static str,
    /// Human-readable trigger, e.g. the injected fault site.
    pub reason: String,
}

/// One rung taken on the degradation ladder: under memory-budget
/// pressure an enact loop trades a faster (memory-hungrier) execution
/// mode for a leaner one instead of failing — pull→push (dropping the
/// pull bitmaps), lb_batch→thread_mapped (dropping the balanced edge
/// partition), or an up-front strategy demotion. Distinct from a
/// [`RecoveryEvent`]: recoveries react to *faults*, degrades react to
/// *pressure*, and both ride in the stats/bench JSON so a budgeted run
/// explains exactly which cheaper path it took.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradeEvent {
    /// Iteration the degrade happened in.
    pub iteration: u32,
    /// Operator family (or loop) that degraded.
    pub operator: &'static str,
    /// Execution mode that was too expensive.
    pub from: &'static str,
    /// Leaner mode used instead.
    pub to: &'static str,
    /// Human-readable trigger, e.g. the bytes-needed vs headroom gap.
    pub reason: String,
}

/// Collecting sink for [`StepRecord`]s. Installed on a `Context` via
/// `with_stats()`; operators check for it with a single `Option`
/// dereference, so uninstrumented runs pay nothing beyond the existing
/// relaxed counters.
#[derive(Debug, Default)]
pub struct StatsSink {
    steps: Mutex<Vec<StepRecord>>,
    switches: Mutex<Vec<DirectionSwitch>>,
    recoveries: Mutex<Vec<RecoveryEvent>>,
    degrades: Mutex<Vec<DegradeEvent>>,
    iteration: AtomicU32,
}

impl StatsSink {
    /// Fresh, empty sink at iteration 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current bulk-synchronous iteration number.
    pub fn current_iteration(&self) -> u32 {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.iteration.load(Ordering::Relaxed)
    }

    /// Advances the iteration counter (called once per bulk-synchronous
    /// iteration by the enact loop).
    pub fn next_iteration(&self) {
        // ORDERING: Relaxed — monotonic telemetry counters; readers tolerate
        // momentary staleness.
        self.iteration.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one operator step, stamped with the current iteration.
    // one scalar per StepRecord field; a builder would cost more at
    // every operator call site than it saves here
    #[allow(clippy::too_many_arguments)]
    pub fn record_step(
        &self,
        operator: OperatorKind,
        strategy: &'static str,
        direction: Option<StepDirection>,
        input_len: u64,
        output_len: u64,
        edges_examined: u64,
        duration: Duration,
    ) {
        self.record_step_with_candidates(
            operator,
            strategy,
            direction,
            input_len,
            0,
            output_len,
            edges_examined,
            duration,
        );
    }

    /// Records one operator step that scanned a candidate set distinct
    /// from its input frontier (the pull direction): `input_len` is the
    /// in-frontier population (bitmap popcount), `candidates_len` the
    /// number of candidate vertices swept.
    #[allow(clippy::too_many_arguments)]
    pub fn record_step_with_candidates(
        &self,
        operator: OperatorKind,
        strategy: &'static str,
        direction: Option<StepDirection>,
        input_len: u64,
        candidates_len: u64,
        output_len: u64,
        edges_examined: u64,
        duration: Duration,
    ) {
        self.steps.lock().push(StepRecord {
            iteration: self.current_iteration(),
            operator,
            strategy,
            direction,
            input_len,
            candidates_len,
            lanes_active: 0,
            output_len,
            edges_examined,
            duration,
        });
    }

    /// Records one lane-packed multi-source operator step: like
    /// [`StatsSink::record_step_with_candidates`] but stamped with the
    /// number of traversal lanes still live in the input frontier, so
    /// the trace shows the amortization the `msbfs` strategy is buying
    /// (one sweep serving `lanes_active` traversals).
    #[allow(clippy::too_many_arguments)]
    pub fn record_step_lanes(
        &self,
        operator: OperatorKind,
        strategy: &'static str,
        direction: Option<StepDirection>,
        input_len: u64,
        lanes_active: u64,
        output_len: u64,
        edges_examined: u64,
        duration: Duration,
    ) {
        self.steps.lock().push(StepRecord {
            iteration: self.current_iteration(),
            operator,
            strategy,
            direction,
            input_len,
            candidates_len: 0,
            lanes_active,
            output_len,
            edges_examined,
            duration,
        });
    }

    /// Records a direction-optimizer switch, stamped with the current
    /// iteration.
    pub fn record_switch(&self, from: StepDirection, to: StepDirection, reason: String) {
        self.switches.lock().push(DirectionSwitch {
            iteration: self.current_iteration(),
            from,
            to,
            reason,
        });
    }

    /// Records one recovery action (retry, fallback, tolerated
    /// checkpoint failure), stamped with the current iteration.
    pub fn record_recovery(
        &self,
        operator: &'static str,
        kind: RecoveryKind,
        from_strategy: &'static str,
        to_strategy: &'static str,
        reason: String,
    ) {
        self.recoveries.lock().push(RecoveryEvent {
            iteration: self.current_iteration(),
            operator,
            kind,
            from_strategy,
            to_strategy,
            reason,
        });
    }

    /// Records one degradation-ladder rung taken under budget pressure,
    /// stamped with the current iteration.
    pub fn record_degrade(
        &self,
        operator: &'static str,
        from: &'static str,
        to: &'static str,
        reason: String,
    ) {
        self.degrades.lock().push(DegradeEvent {
            iteration: self.current_iteration(),
            operator,
            from,
            to,
            reason,
        });
    }

    /// Copies out everything recorded so far.
    ///
    /// The four clones are struct-literal temporaries, so all four
    /// guards overlap until the literal is built — that nests the locks
    /// in field order. Recorders only ever take one lock at a time, so
    /// the hierarchy below is the only multi-lock shape in this file.
    // LOCK-ORDER: stats::StatsSink.steps -> stats::StatsSink.switches
    // LOCK-ORDER: stats::StatsSink.steps -> stats::StatsSink.recoveries
    // LOCK-ORDER: stats::StatsSink.steps -> stats::StatsSink.degrades
    // LOCK-ORDER: stats::StatsSink.switches -> stats::StatsSink.recoveries
    // LOCK-ORDER: stats::StatsSink.switches -> stats::StatsSink.degrades
    // LOCK-ORDER: stats::StatsSink.recoveries -> stats::StatsSink.degrades
    pub fn snapshot(&self) -> RunStats {
        RunStats {
            steps: self.steps.lock().clone(),
            switches: self.switches.lock().clone(),
            recoveries: self.recoveries.lock().clone(),
            degrades: self.degrades.lock().clone(),
        }
    }
}

/// The full per-run trace: every operator step plus every
/// direction-optimizer switch, in execution order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunStats {
    /// One record per instrumented operator invocation.
    pub steps: Vec<StepRecord>,
    /// Direction-optimizer decision changes.
    pub switches: Vec<DirectionSwitch>,
    /// Recovery actions taken by the fault-tolerance layer (empty on
    /// fault-free runs).
    pub recoveries: Vec<RecoveryEvent>,
    /// Degradation-ladder rungs taken under memory-budget pressure
    /// (empty on unbudgeted or comfortably-fitting runs).
    pub degrades: Vec<DegradeEvent>,
}

/// Clamps a serialized duration to a finite, non-negative value.
///
/// Rust's `Sum for f64` starts its fold at `-0.0`, so summing an empty
/// set of step durations yields `-0.0`, which the JSON writer renders
/// as the ugly (and schema-surprising) `-0`. Non-finite values cannot
/// arise from `Duration` but are clamped too so serialized durations
/// are *always* finite and `>= +0.0`.
pub fn sanitize_millis(v: f64) -> f64 {
    if v.is_finite() && v > 0.0 {
        v
    } else {
        0.0
    }
}

impl RunStats {
    /// Total edges examined across all recorded steps.
    pub fn edges_examined(&self) -> u64 {
        self.steps.iter().map(|s| s.edges_examined).sum()
    }

    /// Milliseconds spent in steps of the given operator kind. Always
    /// finite and non-negative (see [`sanitize_millis`]).
    pub fn operator_millis(&self, kind: OperatorKind) -> f64 {
        sanitize_millis(
            self.steps
                .iter()
                .filter(|s| s.operator == kind)
                .map(|s| s.duration.as_secs_f64() * 1e3)
                .sum(),
        )
    }

    /// Number of distinct iterations observed (highest stamp + 1).
    pub fn iterations(&self) -> u32 {
        self.steps.iter().map(|s| s.iteration + 1).max().unwrap_or(0)
    }

    /// Iterations containing at least one pull-direction advance.
    pub fn pull_iterations(&self) -> u32 {
        let mut iters: Vec<u32> = self
            .steps
            .iter()
            .filter(|s| s.direction == Some(StepDirection::Pull))
            .map(|s| s.iteration)
            .collect();
        iters.sort_unstable();
        iters.dedup();
        iters.len() as u32
    }

    /// Collapses the trace into the flat summary carried by bench
    /// `Measurement`s.
    pub fn summary(&self) -> RunStatsSummary {
        RunStatsSummary {
            iterations: self.iterations(),
            pull_iterations: self.pull_iterations(),
            edges_examined: self.edges_examined(),
            advance_millis: self.operator_millis(OperatorKind::Advance),
            filter_millis: self.operator_millis(OperatorKind::Filter),
            compute_millis: self.operator_millis(OperatorKind::Compute),
            wall_millis: 0.0,
            steps: self.steps.len() as u64,
            direction_switches: self.switches.len() as u64,
            recovery_events: self.recoveries.len() as u64,
            degrade_events: self.degrades.len() as u64,
            pool: PoolStatsSnapshot::default(),
        }
    }

    /// Serializes the full trace as a JSON object with `steps` and
    /// `switches` arrays (schema documented in DESIGN.md).
    pub fn write_json(&self, j: &mut JsonBuilder) {
        j.begin_object();
        j.key("steps");
        j.begin_array();
        for s in &self.steps {
            j.begin_object();
            j.field_u64("iteration", s.iteration as u64);
            j.field_str("operator", s.operator.name());
            j.field_str("strategy", s.strategy);
            match s.direction {
                Some(d) => j.field_str("direction", d.name()),
                None => j.field_null("direction"),
            }
            j.field_u64("input_len", s.input_len);
            j.field_u64("candidates_len", s.candidates_len);
            j.field_u64("lanes_active", s.lanes_active);
            j.field_u64("output_len", s.output_len);
            j.field_u64("edges_examined", s.edges_examined);
            j.field_f64("duration_ms", s.duration.as_secs_f64() * 1e3);
            j.end_object();
        }
        j.end_array();
        j.key("switches");
        j.begin_array();
        for sw in &self.switches {
            j.begin_object();
            j.field_u64("iteration", sw.iteration as u64);
            j.field_str("from", sw.from.name());
            j.field_str("to", sw.to.name());
            j.field_str("reason", &sw.reason);
            j.end_object();
        }
        j.end_array();
        j.key("recoveries");
        j.begin_array();
        for r in &self.recoveries {
            j.begin_object();
            j.field_u64("iteration", r.iteration as u64);
            j.field_str("operator", r.operator);
            j.field_str("kind", r.kind.name());
            j.field_str("from_strategy", r.from_strategy);
            j.field_str("to_strategy", r.to_strategy);
            j.field_str("reason", &r.reason);
            j.end_object();
        }
        j.end_array();
        j.key("degrades");
        j.begin_array();
        for d in &self.degrades {
            j.begin_object();
            j.field_u64("iteration", d.iteration as u64);
            j.field_str("operator", d.operator);
            j.field_str("from", d.from);
            j.field_str("to", d.to);
            j.field_str("reason", &d.reason);
            j.end_object();
        }
        j.end_array();
        j.end_object();
    }

    /// The trace as a standalone JSON string.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuilder::new();
        self.write_json(&mut j);
        j.finish()
    }
}

/// Flat aggregate of one run's trace: what bench measurements carry and
/// what `BENCH_pr2.json` rows are made of.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunStatsSummary {
    /// Bulk-synchronous iterations observed.
    pub iterations: u32,
    /// Iterations that ran a pull-direction advance.
    pub pull_iterations: u32,
    /// Total edges examined.
    pub edges_examined: u64,
    /// Milliseconds spent in advance steps.
    pub advance_millis: f64,
    /// Milliseconds spent in filter steps.
    pub filter_millis: f64,
    /// Milliseconds spent in compute steps.
    pub compute_millis: f64,
    /// Wall time of the instrumented run itself, when captured via
    /// [`RunStatsSummary::with_wall_clock`] (0 when unknown). The
    /// per-operator millis above are guaranteed to sum to at most this
    /// once it is set — the instrumented run's own clock is the only
    /// wall time the trace can legitimately be compared against (the
    /// separately-averaged uninstrumented timings may be faster).
    pub wall_millis: f64,
    /// Total instrumented operator invocations.
    pub steps: u64,
    /// Direction-optimizer switches recorded.
    pub direction_switches: u64,
    /// Recovery actions (retries, fallbacks, tolerated checkpoint
    /// failures); provably zero on fault-free runs.
    pub recovery_events: u64,
    /// Degradation-ladder rungs taken under memory-budget pressure;
    /// zero on unbudgeted runs.
    pub degrade_events: u64,
    /// Buffer-pool counters of the run's context (zero-allocation
    /// advance telemetry).
    pub pool: PoolStatsSnapshot,
}

impl RunStatsSummary {
    /// Sum of the per-operator durations.
    pub fn operator_sum_millis(&self) -> f64 {
        self.advance_millis + self.filter_millis + self.compute_millis
    }

    /// Stamps the instrumented run's own wall time onto the summary and
    /// clamps the per-operator durations so their sum never exceeds it.
    /// Per-step timers and the outer wall clock are read independently,
    /// so accumulated clock granularity can push the operator sum
    /// slightly past the measured wall time; scaling back proportionally
    /// keeps the attribution while restoring the invariant
    /// `advance + filter + compute <= wall`.
    pub fn with_wall_clock(mut self, wall_millis: f64) -> Self {
        let wall = sanitize_millis(wall_millis);
        self.wall_millis = wall;
        let sum = self.operator_sum_millis();
        if wall > 0.0 && sum > wall {
            let k = wall / sum;
            self.advance_millis *= k;
            self.filter_millis *= k;
            self.compute_millis *= k;
        }
        self
    }

    /// Attaches the context's buffer-pool counters.
    pub fn with_pool(mut self, pool: PoolStatsSnapshot) -> Self {
        self.pool = pool;
        self
    }

    /// Serializes the summary's fields into the currently-open JSON
    /// object (caller owns `begin_object`/`end_object`).
    pub fn write_json_fields(&self, j: &mut JsonBuilder) {
        j.field_u64("iterations", self.iterations as u64);
        j.field_u64("pull_iterations", self.pull_iterations as u64);
        j.field_u64("edges_examined", self.edges_examined);
        j.field_f64("advance_millis", sanitize_millis(self.advance_millis));
        j.field_f64("filter_millis", sanitize_millis(self.filter_millis));
        j.field_f64("compute_millis", sanitize_millis(self.compute_millis));
        j.field_f64("wall_millis", sanitize_millis(self.wall_millis));
        j.field_u64("steps", self.steps);
        j.field_u64("direction_switches", self.direction_switches);
        j.field_u64("recovery_events", self.recovery_events);
        j.field_u64("degrade_events", self.degrade_events);
        j.field_u64("pool_allocations", self.pool.allocations);
        j.field_u64("pool_checkouts", self.pool.checkouts);
        j.field_u64("pool_releases", self.pool.releases);
        j.field_u64("pool_live_high_water", self.pool.live_high_water);
        j.field_u64("pool_bytes_live", self.pool.bytes_live);
        j.field_u64("pool_bytes_high_water", self.pool.bytes_high_water);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = WorkCounters::new();
        c.add_edges(10);
        c.add_edges(5);
        c.add_filtered(3);
        c.add_iteration(false);
        c.add_iteration(true);
        assert_eq!(c.edges(), 15);
        assert_eq!(c.iters(), 2);
        assert_eq!(c.pull_iters(), 1);
        assert_eq!(c.elements_filtered.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn mteps_math() {
        let t = Timing { elapsed: Duration::from_millis(100), edges_examined: 1_000_000 };
        assert!((t.mteps() - 10.0).abs() < 1e-9);
        assert!((t.millis() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_gives_zero_mteps() {
        let t = Timing { elapsed: Duration::ZERO, edges_examined: 5 };
        assert_eq!(t.mteps(), 0.0);
    }

    #[test]
    fn time_with_edges_passes_value_through() {
        let (v, t) = time_with_edges(|| (42u32, 7u64));
        assert_eq!(v, 42);
        assert_eq!(t.edges_examined, 7);
    }

    #[test]
    fn sink_stamps_iterations_and_aggregates() {
        let sink = StatsSink::new();
        sink.record_step(
            OperatorKind::Advance,
            "thread_mapped",
            Some(StepDirection::Push),
            4,
            9,
            20,
            Duration::from_millis(2),
        );
        sink.record_step(
            OperatorKind::Filter,
            "scan_compact",
            None,
            9,
            5,
            0,
            Duration::from_millis(1),
        );
        sink.next_iteration();
        sink.record_step(
            OperatorKind::Advance,
            "pull",
            Some(StepDirection::Pull),
            5,
            3,
            30,
            Duration::from_millis(4),
        );
        sink.record_switch(StepDirection::Push, StepDirection::Pull, "m_f > m_u/alpha".into());

        let stats = sink.snapshot();
        assert_eq!(stats.steps.len(), 3);
        assert_eq!(stats.steps[0].iteration, 0);
        assert_eq!(stats.steps[2].iteration, 1);
        assert_eq!(stats.edges_examined(), 50);
        assert_eq!(stats.iterations(), 2);
        assert_eq!(stats.pull_iterations(), 1);
        assert_eq!(stats.switches.len(), 1);
        assert_eq!(stats.switches[0].iteration, 1);

        let sum = stats.summary();
        assert_eq!(sum.steps, 3);
        assert_eq!(sum.direction_switches, 1);
        assert!((sum.advance_millis - 6.0).abs() < 1e-9);
        assert!((sum.filter_millis - 1.0).abs() < 1e-9);
        assert_eq!(sum.compute_millis, 0.0);
    }

    #[test]
    fn run_stats_json_shape() {
        let sink = StatsSink::new();
        sink.record_step(
            OperatorKind::Advance,
            "auto:load_balanced",
            Some(StepDirection::Push),
            1,
            2,
            3,
            Duration::from_micros(1500),
        );
        let json = sink.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""operator":"advance""#));
        assert!(json.contains(r#""strategy":"auto:load_balanced""#));
        assert!(json.contains(r#""direction":"push""#));
        assert!(json.contains(r#""duration_ms":1.5"#));
        assert!(json.contains(r#""switches":[]"#));
    }

    #[test]
    fn pull_steps_report_candidates_and_population_distinctly() {
        let sink = StatsSink::new();
        // a pull sweep: 5 in-frontier vertices, 90 unvisited candidates
        sink.record_step_with_candidates(
            OperatorKind::Advance,
            "pull_sweep",
            Some(StepDirection::Pull),
            5,
            90,
            12,
            40,
            Duration::from_millis(1),
        );
        // a push step has no candidate set
        sink.record_step(
            OperatorKind::Advance,
            "thread_mapped",
            Some(StepDirection::Push),
            12,
            30,
            80,
            Duration::from_millis(1),
        );
        let stats = sink.snapshot();
        assert_eq!(stats.steps[0].input_len, 5, "in-frontier population, not candidates");
        assert_eq!(stats.steps[0].candidates_len, 90);
        assert_eq!(stats.steps[1].candidates_len, 0);
        let json = stats.to_json();
        assert!(json.contains(r#""candidates_len":90"#), "{json}");
    }

    #[test]
    fn msbfs_steps_report_lanes_active() {
        let sink = StatsSink::new();
        sink.record_step_lanes(
            OperatorKind::Advance,
            "msbfs",
            Some(StepDirection::Push),
            12,
            64,
            30,
            100,
            Duration::from_millis(1),
        );
        // single-source steps carry no lane packing
        sink.record_step(
            OperatorKind::Advance,
            "thread_mapped",
            Some(StepDirection::Push),
            30,
            50,
            200,
            Duration::from_millis(1),
        );
        let stats = sink.snapshot();
        assert_eq!(stats.steps[0].lanes_active, 64);
        assert_eq!(stats.steps[0].strategy, "msbfs");
        assert_eq!(stats.steps[1].lanes_active, 0);
        let json = stats.to_json();
        assert!(json.contains(r#""lanes_active":64"#), "{json}");
    }

    #[test]
    fn empty_trace_is_valid() {
        let stats = StatsSink::new().snapshot();
        assert_eq!(stats.iterations(), 0);
        assert_eq!(stats.summary(), RunStatsSummary::default());
        assert_eq!(
            stats.to_json(),
            r#"{"steps":[],"switches":[],"recoveries":[],"degrades":[]}"#
        );
    }

    #[test]
    fn recoveries_are_stamped_counted_and_exported() {
        let sink = StatsSink::new();
        sink.next_iteration();
        sink.record_recovery(
            "advance",
            RecoveryKind::Retry,
            "load_balanced",
            "load_balanced",
            "injected alloc failure".into(),
        );
        sink.record_recovery(
            "advance",
            RecoveryKind::Fallback,
            "load_balanced",
            "thread_mapped",
            "retries exhausted".into(),
        );
        let stats = sink.snapshot();
        assert_eq!(stats.recoveries.len(), 2);
        assert_eq!(stats.recoveries[0].iteration, 1);
        assert_eq!(stats.recoveries[0].kind, RecoveryKind::Retry);
        assert_eq!(stats.summary().recovery_events, 2);
        let json = stats.to_json();
        assert!(json.contains(r#""kind":"retry""#), "{json}");
        assert!(json.contains(r#""to_strategy":"thread_mapped""#), "{json}");
    }

    #[test]
    fn empty_operator_sums_serialize_as_positive_zero() {
        // Sum over an empty f64 iterator is -0.0; the summary and the
        // JSON export must never leak a "-0" (satellite S1 regression).
        let sink = StatsSink::new();
        sink.record_step(
            OperatorKind::Advance,
            "serial",
            Some(StepDirection::Push),
            1,
            1,
            1,
            Duration::from_millis(1),
        );
        let stats = sink.snapshot();
        // no compute steps recorded: the raw fold would be -0.0
        let compute = stats.operator_millis(OperatorKind::Compute);
        assert!(compute.is_finite() && compute.is_sign_positive());
        let sum = stats.summary();
        for v in [sum.advance_millis, sum.filter_millis, sum.compute_millis, sum.wall_millis] {
            assert!(v.is_finite() && v >= 0.0 && v.is_sign_positive(), "got {v:?}");
        }
        let mut j = JsonBuilder::new();
        j.begin_object();
        sum.write_json_fields(&mut j);
        j.end_object();
        let json = j.finish();
        assert!(!json.contains("-0"), "negative zero leaked into JSON: {json}");
        assert!(json.contains(r#""compute_millis":0"#), "{json}");
    }

    #[test]
    fn sanitize_millis_clamps_everything_unrepresentable() {
        assert_eq!(sanitize_millis(-0.0).to_string(), "0");
        assert_eq!(sanitize_millis(-3.5), 0.0);
        assert_eq!(sanitize_millis(f64::NAN), 0.0);
        assert_eq!(sanitize_millis(f64::INFINITY), 0.0);
        assert_eq!(sanitize_millis(2.25), 2.25);
    }

    #[test]
    fn operator_sum_never_exceeds_wall_time() {
        // the SSSP/roadnet anomaly: per-step timers summed past the
        // run's wall clock; with_wall_clock must scale them back
        let sum = RunStatsSummary {
            advance_millis: 9.11,
            filter_millis: 1.0,
            compute_millis: 0.5,
            ..Default::default()
        }
        .with_wall_clock(8.68);
        assert_eq!(sum.wall_millis, 8.68);
        assert!(sum.operator_sum_millis() <= sum.wall_millis + 1e-9);
        // proportions preserved
        assert!((sum.advance_millis / sum.filter_millis - 9.11).abs() < 1e-9);

        // a sum already under the wall is left untouched
        let ok =
            RunStatsSummary { advance_millis: 2.0, ..Default::default() }.with_wall_clock(10.0);
        assert_eq!(ok.advance_millis, 2.0);
        assert_eq!(ok.wall_millis, 10.0);

        // a negative/invalid wall clock is clamped, not propagated
        let bad =
            RunStatsSummary { advance_millis: 2.0, ..Default::default() }.with_wall_clock(-1.0);
        assert_eq!(bad.wall_millis, 0.0);
        assert_eq!(bad.advance_millis, 2.0);
    }

    #[test]
    fn pool_counters_ride_along_in_the_summary() {
        let pool = PoolStatsSnapshot {
            allocations: 3,
            checkouts: 10,
            releases: 9,
            live: 1,
            live_high_water: 4,
            bytes_live: 512,
            bytes_high_water: 4096,
        };
        let sum = RunStatsSummary::default().with_pool(pool);
        assert_eq!(sum.pool, pool);
        let mut j = JsonBuilder::new();
        j.begin_object();
        sum.write_json_fields(&mut j);
        j.end_object();
        let json = j.finish();
        assert!(json.contains(r#""pool_allocations":3"#), "{json}");
        assert!(json.contains(r#""pool_bytes_high_water":4096"#), "{json}");
    }

    #[test]
    fn failed_outcome_is_partial_and_displays() {
        assert!(RunOutcome::Failed.is_partial());
        assert!(!RunOutcome::Failed.is_converged());
        assert_eq!(RunOutcome::Failed.to_string(), "failed");
    }
}
