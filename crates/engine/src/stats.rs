//! Work counters and timing for the evaluation harness.
//!
//! The paper reports runtime (ms) and edge throughput (MTEPS = millions
//! of traversed edges per second); operators increment these counters so
//! primitives can report both without re-deriving traversal counts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Cumulative work counters for one primitive execution. Cheap enough to
/// update per bulk step (not per element).
#[derive(Debug, Default)]
pub struct WorkCounters {
    /// Edges examined by advance steps (the numerator of MTEPS).
    pub edges_examined: AtomicU64,
    /// Elements processed by filter steps.
    pub elements_filtered: AtomicU64,
    /// Bulk-synchronous iterations executed.
    pub iterations: AtomicU64,
    /// Iterations run in pull (reverse) direction by the
    /// direction-optimized advance.
    pub pull_iterations: AtomicU64,
}

impl WorkCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds to the edge-examination count.
    #[inline]
    pub fn add_edges(&self, n: u64) {
        self.edges_examined.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds to the filtered-element count.
    #[inline]
    pub fn add_filtered(&self, n: u64) {
        self.elements_filtered.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one completed iteration; `pull` marks reverse-direction.
    #[inline]
    pub fn add_iteration(&self, pull: bool) {
        self.iterations.fetch_add(1, Ordering::Relaxed);
        if pull {
            self.pull_iterations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the edge count.
    pub fn edges(&self) -> u64 {
        self.edges_examined.load(Ordering::Relaxed)
    }

    /// Snapshot of the iteration count.
    pub fn iters(&self) -> u64 {
        self.iterations.load(Ordering::Relaxed)
    }

    /// Snapshot of pull-direction iterations.
    pub fn pull_iters(&self) -> u64 {
        self.pull_iterations.load(Ordering::Relaxed)
    }
}

/// How an enact loop ended. Primitives report this alongside their
/// results so callers can tell a converged answer from a best-so-far
/// partial one (graceful degradation under execution guards).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum RunOutcome {
    /// The frontier drained naturally; results are complete.
    #[default]
    Converged,
    /// The iteration cap tripped; results reflect the completed
    /// iterations only.
    IterationCapped,
    /// The wall-clock budget tripped; results are best-so-far.
    TimedOut,
    /// The cancel flag tripped; results are best-so-far.
    Cancelled,
}

impl RunOutcome {
    /// True when the run converged (the only complete outcome).
    pub fn is_converged(self) -> bool {
        self == RunOutcome::Converged
    }

    /// True when a guard tripped and the results are partial.
    pub fn is_partial(self) -> bool {
        !self.is_converged()
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RunOutcome::Converged => "converged",
            RunOutcome::IterationCapped => "iteration-capped",
            RunOutcome::TimedOut => "timed-out",
            RunOutcome::Cancelled => "cancelled",
        })
    }
}

/// Result of timing a primitive: wall time plus derived throughput.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Timing {
    /// Measured wall time.
    pub elapsed: Duration,
    /// Edges examined during the measured interval.
    pub edges_examined: u64,
}

impl Timing {
    /// Runtime in milliseconds.
    pub fn millis(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }

    /// Millions of traversed edges per second, the paper's throughput
    /// metric. Returns 0 for zero-duration runs.
    pub fn mteps(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s == 0.0 {
            0.0
        } else {
            self.edges_examined as f64 / s / 1e6
        }
    }
}

/// Times a closure, pairing its wall time with an edge count supplied by
/// the closure's return value.
pub fn time_with_edges<T>(f: impl FnOnce() -> (T, u64)) -> (T, Timing) {
    let start = Instant::now();
    let (value, edges) = f();
    let elapsed = start.elapsed();
    (value, Timing { elapsed, edges_examined: edges })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = WorkCounters::new();
        c.add_edges(10);
        c.add_edges(5);
        c.add_filtered(3);
        c.add_iteration(false);
        c.add_iteration(true);
        assert_eq!(c.edges(), 15);
        assert_eq!(c.iters(), 2);
        assert_eq!(c.pull_iters(), 1);
        assert_eq!(c.elements_filtered.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn mteps_math() {
        let t = Timing { elapsed: Duration::from_millis(100), edges_examined: 1_000_000 };
        assert!((t.mteps() - 10.0).abs() < 1e-9);
        assert!((t.millis() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_gives_zero_mteps() {
        let t = Timing { elapsed: Duration::ZERO, edges_examined: 5 };
        assert_eq!(t.mteps(), 0.0);
    }

    #[test]
    fn time_with_edges_passes_value_through() {
        let (v, t) = time_with_edges(|| (42u32, 7u64));
        assert_eq!(v, 42);
        assert_eq!(t.edges_examined, 7);
    }
}
