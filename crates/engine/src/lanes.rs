//! Lane-packed multi-source frontier storage (MS-BFS, PAPERS.md).
//!
//! The frontier abstraction amortizes one sweep over many vertices; lane
//! packing amortizes one sweep over many *traversals*. Up to [`LANES`]
//! independent source queries share a single traversal: each vertex `v`
//! carries one `u64` word whose bit `l` means "lane `l`'s traversal has
//! reached `v`". A batched advance then ORs a vertex's whole lane word
//! into each neighbor with a single `fetch_or` — 64 traversals' worth of
//! discovery per atomic — and the newly-discovered lanes at a vertex are
//! `next & !seen`, one AND-NOT per word.
//!
//! Storage discipline mirrors [`crate::bitmap::PooledBitmap`]: words come
//! from a [`BufferPool`] `u64` checkout (counted by pool stats), are
//! viewed as `AtomicU64` via the same layout-preserving transmute, and go
//! back to the pool on release — so steady-state batch iterations
//! allocate nothing. The difference is shape: a bitmap holds one *bit*
//! per vertex (`n/64` words), a lane map holds one *word* per vertex
//! (`n` words, bit = lane).

use crate::bitmap::{into_atomic_words, into_plain_words};
use crate::pool::BufferPool;
use std::sync::atomic::{AtomicU64, Ordering};

/// Traversal lanes per batch: the bit width of a lane word.
pub const LANES: usize = 64;

/// A full-word lane mask for the first `count` lanes (all 64 when
/// `count >= 64`): the `seen`/`frontier` seed for a partially-filled
/// batch, and the retirement test's "every lane done" value.
#[inline]
pub fn lane_mask(count: usize) -> u64 {
    if count >= LANES {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// A pool-backed array of per-vertex lane words: `map[v]` holds one bit
/// per in-flight traversal. Shared (`&self`) accessors are atomic, for
/// the scatter phase where many active vertices OR into one neighbor;
/// exclusive (`&mut self`) word access lets the update sweep partition
/// the words into disjoint chunks and mutate without atomics, exactly
/// like the masked pull sweep.
pub struct LaneMap {
    words: Vec<AtomicU64>,
    len: usize,
}

impl LaneMap {
    /// Checks out a cleared lane map with one word per vertex, drawing
    /// storage from `pool` (counted by pool stats like any other
    /// checkout).
    pub fn take(pool: &BufferPool, len: usize) -> Self {
        let mut words = pool.take_u64(len);
        // resize within pooled capacity: zero-fill only, no reallocation
        words.resize(len, 0);
        LaneMap { words: into_atomic_words(words), len }
    }

    /// Returns the word storage to `pool` for reuse by the next checkout
    /// (lane map, bitmap, or plain buffer). Dropping without releasing
    /// is safe but forfeits the reuse.
    pub fn release(self, pool: &BufferPool) {
        pool.put_u64(into_plain_words(self.words));
    }

    /// Vertex capacity (== word count: one lane word per vertex).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if capacity is zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Loads vertex `v`'s lane word (shared, atomic).
    #[inline]
    pub fn load(&self, v: usize) -> u64 {
        debug_assert!(v < self.len);
        // ORDERING: Relaxed — lane-word RMWs need only atomicity (no lost
        // ORs); cross-phase visibility comes from the caller's join barrier.
        self.words[v].load(Ordering::Relaxed)
    }

    /// Atomically ORs `bits` into vertex `v`'s lane word, returning the
    /// previous word — the one-atomic-per-edge discovery step of the
    /// batched advance (up to 64 traversals served per RMW).
    #[inline]
    pub fn fetch_or(&self, v: usize, bits: u64) -> u64 {
        debug_assert!(v < self.len);
        // ORDERING: Relaxed — lane-word RMWs need only atomicity (no lost
        // ORs); cross-phase visibility comes from the caller's join barrier.
        self.words[v].fetch_or(bits, Ordering::Relaxed)
    }

    /// Sets one lane bit at vertex `v` (shared, atomic) — batch seeding:
    /// lane `lane`'s source is `v`.
    #[inline]
    pub fn set_lane(&self, v: usize, lane: usize) {
        debug_assert!(lane < LANES);
        self.fetch_or(v, 1u64 << lane);
    }

    /// Shared access to the backing words (index = vertex id) for the
    /// scatter phase, where many active vertices OR into one neighbor
    /// concurrently through [`AtomicU64::fetch_or`].
    #[inline]
    pub fn words(&self) -> &[AtomicU64] {
        &self.words
    }

    /// Exclusive access to the backing words (index = vertex id). The
    /// update sweep partitions this slice into disjoint per-task chunks
    /// and mutates through `AtomicU64::get_mut` — plain loads/stores, no
    /// atomic RMWs.
    #[inline]
    pub fn words_mut(&mut self) -> &mut [AtomicU64] {
        &mut self.words
    }

    /// Clears every lane word (exclusive; a word-sweep memset).
    pub fn clear_all(&mut self) {
        for w in self.words.iter_mut() {
            *w.get_mut() = 0;
        }
    }

    /// Number of active vertices: those with at least one live lane bit.
    pub fn count_active(&self) -> usize {
        (0..self.len).filter(|&v| self.load(v) != 0).count()
    }

    /// OR-reduction over every vertex's lane word: bit `l` set means
    /// lane `l` is still live somewhere in this map. Its popcount is the
    /// `lanes_active` figure the `msbfs` StepRecord carries.
    pub fn union_lanes(&self) -> u64 {
        (0..self.len).fold(0u64, |acc, v| acc | self.load(v))
    }

    /// Copies the lane words out into a plain `u64` buffer (checkpoint
    /// sections snapshot lane state through this).
    pub fn snapshot_words(&self) -> Vec<u64> {
        // ALLOC-OK(checkpoint snapshot path, off the steady-state sweep)
        (0..self.len).map(|v| self.load(v)).collect()
    }

    /// Overwrites the lane words from a plain `u64` slice (checkpoint
    /// restore). Panics if the lengths differ — callers validate section
    /// lengths before restoring.
    pub fn restore_words(&mut self, from: &[u64]) {
        assert_eq!(from.len(), self.len, "lane-map restore requires equal length");
        for (w, &src) in self.words.iter_mut().zip(from) {
            *w.get_mut() = src;
        }
    }
}

impl std::fmt::Debug for LaneMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LaneMap({} vertices, {} active, lanes {:#x})",
            self.len,
            self.count_active(),
            self.union_lanes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn lane_mask_fills_low_bits() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(7), 0x7f);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(64), u64::MAX);
        assert_eq!(lane_mask(100), u64::MAX);
    }

    #[test]
    fn take_set_load_release_round_trip() {
        let pool = BufferPool::new();
        let lm = LaneMap::take(&pool, 100);
        assert_eq!(lm.len(), 100);
        assert_eq!(pool.stats().checkouts, 1);
        lm.set_lane(3, 0);
        lm.set_lane(3, 63);
        lm.set_lane(99, 7);
        assert_eq!(lm.load(3), (1 << 63) | 1);
        assert_eq!(lm.load(99), 1 << 7);
        assert_eq!(lm.count_active(), 2);
        assert_eq!(lm.union_lanes(), (1 << 63) | (1 << 7) | 1);
        lm.release(&pool);
        assert_eq!(pool.stats().releases, 1);
        // the next checkout reuses the same words, cleared
        let again = LaneMap::take(&pool, 100);
        assert_eq!(again.count_active(), 0);
        assert_eq!(pool.stats().allocations, 1, "storage reused, not reallocated");
    }

    #[test]
    fn fetch_or_returns_previous_word() {
        let pool = BufferPool::new();
        let lm = LaneMap::take(&pool, 8);
        assert_eq!(lm.fetch_or(2, 0b1010), 0);
        let old = lm.fetch_or(2, 0b0110);
        assert_eq!(old, 0b1010);
        // newly-set lanes are exactly `bits & !old`
        assert_eq!(0b0110 & !old, 0b0100);
        lm.release(&pool);
    }

    #[test]
    fn concurrent_fetch_or_loses_no_lanes() {
        let pool = BufferPool::new();
        let lm = LaneMap::take(&pool, 4);
        (0..64usize).into_par_iter().for_each(|l| {
            lm.set_lane(1, l);
        });
        assert_eq!(lm.load(1), u64::MAX);
        lm.release(&pool);
    }

    #[test]
    fn exclusive_sweep_and_clear() {
        let pool = BufferPool::new();
        let mut lm = LaneMap::take(&pool, 10);
        for w in lm.words_mut().iter_mut() {
            *w.get_mut() = 0xff;
        }
        assert_eq!(lm.count_active(), 10);
        lm.clear_all();
        assert_eq!(lm.count_active(), 0);
        lm.release(&pool);
    }

    #[test]
    fn snapshot_and_restore_round_trip() {
        let pool = BufferPool::new();
        let mut lm = LaneMap::take(&pool, 6);
        lm.set_lane(0, 1);
        lm.set_lane(5, 2);
        let snap = lm.snapshot_words();
        assert_eq!(snap, vec![2, 0, 0, 0, 0, 4]);
        lm.clear_all();
        lm.restore_words(&snap);
        assert_eq!(lm.load(0), 2);
        assert_eq!(lm.load(5), 4);
        lm.release(&pool);
    }

    #[test]
    fn empty_lane_map() {
        let pool = BufferPool::new();
        let lm = LaneMap::take(&pool, 0);
        assert!(lm.is_empty());
        assert_eq!(lm.union_lanes(), 0);
        lm.release(&pool);
    }
}
