//! Sorted search and merge-path partitioning.
//!
//! §4.4: the load-balanced advance "organiz[es] groups of edges into
//! equal-length chunks and assign[s] each chunk to a block. This division
//! requires us to find the starting and ending indices for all the blocks
//! within the frontier. We use an efficient sorted search to map such
//! indices with the scanned edge offset queue. When we start to process
//! [the] neighbor list of a new node, we use binary search to find the
//! node ID for the edges that are going to be processed."

use rayon::prelude::*;

/// Index of the first element in sorted `haystack` strictly greater than
/// `needle` (upper bound).
#[inline]
pub fn upper_bound(haystack: &[u32], needle: u32) -> usize {
    haystack.partition_point(|&x| x <= needle)
}

/// Index of the first element in sorted `haystack` greater than or equal
/// to `needle` (lower bound).
#[inline]
pub fn lower_bound(haystack: &[u32], needle: u32) -> usize {
    haystack.partition_point(|&x| x < needle)
}

/// For each work-item id `w` (an edge rank within the scanned offsets
/// array), find the owning segment: the largest `i` with
/// `scanned_offsets[i] <= w`. `scanned_offsets` is the exclusive scan of
/// segment sizes (so it is sorted ascending). This is the per-edge binary
/// search of the load-balanced advance.
#[inline]
pub fn owning_segment(scanned_offsets: &[u32], work_item: u32) -> usize {
    debug_assert!(!scanned_offsets.is_empty());
    upper_bound(scanned_offsets, work_item) - 1
}

/// Vectorized sorted search: for every needle (sorted ascending), the
/// index of its owning segment in `scanned_offsets`. Equivalent to a
/// merge of the two sorted sequences — the GPU's "sorted search"
/// primitive — implemented with a galloping merge, O(needles + segments).
pub fn sorted_search_owners(scanned_offsets: &[u32], needles: &[u32]) -> Vec<u32> {
    debug_assert!(needles.windows(2).all(|w| w[0] <= w[1]));
    let mut out = Vec::with_capacity(needles.len());
    let mut seg = 0usize;
    for &w in needles {
        while seg + 1 < scanned_offsets.len() && scanned_offsets[seg + 1] <= w {
            seg += 1;
        }
        // CAST: seg indexes scanned_offsets, whose length is a vertex count
        // below u32::MAX.
        out.push(seg as u32);
    }
    out
}

/// Partitions `total_work` items into chunks of `chunk_size`, returning
/// for each chunk the index of the segment owning its first work item.
/// This is the merge-path coarse partition: each parallel block then
/// walks forward from its starting segment, guaranteeing equal work per
/// block regardless of segment-size skew (Davidson et al., Figure 3).
pub fn merge_path_partitions(
    scanned_offsets: &[u32],
    total_work: u32,
    chunk_size: usize,
) -> Vec<u32> {
    let mut out = Vec::new();
    merge_path_partitions_into(scanned_offsets, total_work, chunk_size, &mut out);
    out
}

/// [`merge_path_partitions`] into a caller-supplied buffer (pooled in
/// the zero-allocation advance path): `out` is overwritten with the
/// per-chunk starting segments, reusing its capacity.
pub fn merge_path_partitions_into(
    scanned_offsets: &[u32],
    total_work: u32,
    chunk_size: usize,
    out: &mut Vec<u32>,
) {
    assert!(chunk_size > 0);
    // CAST: total_work widens u32 -> usize; c * chunk_size < total_work + chunk
    // fits u32 because total_work does; segment indices are vertex counts.
    let num_chunks = (total_work as usize).div_ceil(chunk_size);
    (0..num_chunks)
        .into_par_iter()
        .map(|c| owning_segment(scanned_offsets, (c * chunk_size) as u32) as u32)
        .collect_into_vec(out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds() {
        let v = [0u32, 3, 3, 8];
        assert_eq!(lower_bound(&v, 3), 1);
        assert_eq!(upper_bound(&v, 3), 3);
        assert_eq!(lower_bound(&v, 9), 4);
        assert_eq!(upper_bound(&v, 0), 1);
    }

    #[test]
    fn owning_segment_with_empty_segments() {
        // segment sizes [3, 0, 5, 2] -> scanned [0, 3, 3, 8]
        let offsets = [0u32, 3, 3, 8];
        assert_eq!(owning_segment(&offsets, 0), 0);
        assert_eq!(owning_segment(&offsets, 2), 0);
        // work item 3 belongs to segment 2 (segment 1 is empty)
        assert_eq!(owning_segment(&offsets, 3), 2);
        assert_eq!(owning_segment(&offsets, 7), 2);
        assert_eq!(owning_segment(&offsets, 8), 3);
        assert_eq!(owning_segment(&offsets, 9), 3);
    }

    #[test]
    fn sorted_search_matches_pointwise_binary_search() {
        let sizes = [4u32, 0, 0, 7, 1, 0, 3];
        let mut offsets = vec![0u32];
        for &s in &sizes {
            offsets.push(offsets.last().unwrap() + s);
        }
        let total = *offsets.last().unwrap();
        let offsets = &offsets[..offsets.len() - 1];
        let needles: Vec<u32> = (0..total).collect();
        let got = sorted_search_owners(offsets, &needles);
        for (w, &seg) in needles.iter().zip(&got) {
            assert_eq!(seg as usize, owning_segment(offsets, *w));
        }
    }

    #[test]
    fn partitions_cover_all_work_exactly_once() {
        // segment sizes with heavy skew
        let sizes = [1u32, 100, 2, 0, 57, 3];
        let mut offsets = vec![0u32];
        for &s in &sizes {
            offsets.push(offsets.last().unwrap() + s);
        }
        let total = *offsets.last().unwrap();
        let offsets = &offsets[..offsets.len() - 1];
        let chunk = 16usize;
        let starts = merge_path_partitions(offsets, total, chunk);
        assert_eq!(starts.len(), (total as usize).div_ceil(chunk));
        // reconstruct: walking each chunk from its starting segment must
        // visit each work item once with the right owner
        for (c, &seg_start) in starts.iter().enumerate() {
            let w0 = (c * chunk) as u32;
            let w1 = ((c + 1) * chunk).min(total as usize) as u32;
            let mut seg = seg_start as usize;
            for w in w0..w1 {
                while seg + 1 < offsets.len() && offsets[seg + 1] <= w {
                    seg += 1;
                }
                assert_eq!(seg, owning_segment(offsets, w));
            }
        }
    }

    #[test]
    fn partitions_into_matches_allocating_version_and_reuses_capacity() {
        let offsets = [0u32, 1, 101, 103, 103, 160];
        let total = 163u32;
        let mut out = Vec::new();
        merge_path_partitions_into(&offsets, total, 16, &mut out);
        assert_eq!(out, merge_path_partitions(&offsets, total, 16));
        let cap = out.capacity();
        merge_path_partitions_into(&offsets, total, 16, &mut out);
        assert_eq!(out.capacity(), cap, "second fill must reuse the buffer");
    }

    #[test]
    fn single_segment() {
        let offsets = [0u32];
        assert_eq!(owning_segment(&offsets, 0), 0);
        assert_eq!(owning_segment(&offsets, 41), 0);
    }
}
