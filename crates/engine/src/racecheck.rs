//! Shadow-state race detection for [`crate::unsafe_slice::UnsafeSlice`].
//!
//! The engine's scatter kernels (scan downsweep, compact, radix sort,
//! load-balanced advance output) are racy *by construction*: they write
//! through a shared `UnsafeSlice` whose soundness rests on a disjointness
//! contract — **each index is written by at most one task per parallel
//! phase** — argued in `// SAFETY:` comments at every call site. This
//! module turns those comments into a mechanically checked property.
//!
//! Compiled with `--features racecheck`, every `UnsafeSlice` carries a
//! per-index shadow table recording, for the slice's current phase, who
//! last wrote and who last read each index (thread id + `#[track_caller]`
//! call site). Two writes to the same index within one phase, or a
//! write/read overlap, abort the process with *both* call sites in the
//! panic message. Without the feature, everything in this module
//! compiles to nothing.
//!
//! Phase accounting is per-slice: a fresh `UnsafeSlice` starts a fresh
//! phase (the overwhelmingly common pattern — every engine kernel builds
//! its slice immediately before its parallel loop), and a slice that is
//! legitimately reused across *sequential* parallel loops calls
//! [`crate::unsafe_slice::UnsafeSlice::begin_phase`] at the barrier
//! between them. The free function [`begin_phase`] advances a global
//! phase *label* stamped onto newly created slices so reports can tie a
//! violation back to an operator invocation; core's operator entry
//! points (advance, filter, compute, neighbor-reduce) bump it at each
//! kernel launch. Detection itself never depends on the global counter,
//! so concurrently running tests cannot mask or fabricate a race.

#[cfg(feature = "racecheck")]
use std::sync::atomic::{AtomicU64, Ordering};

/// Global phase label. Only used to stamp newly created `UnsafeSlice`
/// instances so panic messages can identify which operator launch a
/// conflicting pair of accesses belongs to.
#[cfg(feature = "racecheck")]
// ORDERING: Relaxed suffices — the label is monotonic bookkeeping with no
// data published under it; detection uses per-slice state only.
static GLOBAL_PHASE: AtomicU64 = AtomicU64::new(0);

/// Marks a bulk-synchronous phase boundary (a "kernel launch").
///
/// Wired into the operator entry points in `gunrock` (core) and into the
/// engine primitives' internal phase transitions. Under `racecheck` this
/// advances the global phase label; otherwise it is a no-op the
/// optimizer erases.
#[inline]
pub fn begin_phase() {
    #[cfg(feature = "racecheck")]
    // ORDERING: Relaxed — relaxed-counter; see GLOBAL_PHASE, the label
    // is diagnostic only.
    GLOBAL_PHASE.fetch_add(1, Ordering::Relaxed);
}

/// Current global phase label (diagnostic).
#[cfg(feature = "racecheck")]
#[inline]
pub(crate) fn global_phase() -> u64 {
    // ORDERING: Relaxed — relaxed-load of a diagnostic label, no
    // synchronization implied.
    GLOBAL_PHASE.load(Ordering::Relaxed)
}

/// Small dense thread ids for racecheck reports (`ThreadId` has no stable
/// numeric form).
#[cfg(feature = "racecheck")]
pub(crate) fn thread_ordinal() -> u64 {
    // ORDERING: Relaxed — relaxed-counter; ids only need uniqueness, not
    // ordering.
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|t| *t)
}

/// The shadow table proper: one lock-protected cell per slice index.
#[cfg(feature = "racecheck")]
pub(crate) mod shadow {
    use super::{global_phase, thread_ordinal};
    use parking_lot::Mutex;
    use std::panic::Location;

    /// One recorded access (who, where, in which slice phase).
    #[derive(Clone, Copy)]
    struct Access {
        phase: u64,
        thread: u64,
        site: &'static Location<'static>,
    }

    #[derive(Default)]
    struct Cell {
        writer: Option<Access>,
        reader: Option<Access>,
    }

    /// Per-slice shadow state: the slice's current phase plus a
    /// last-writer/last-reader record per index. Locking is per-index,
    /// so the checker serializes only genuinely colliding accesses.
    pub(crate) struct Shadow {
        label: u64,
        cells: Vec<Mutex<Cell>>,
    }

    impl Shadow {
        pub(crate) fn new(len: usize) -> Shadow {
            Shadow {
                label: global_phase(),
                cells: (0..len).map(|_| Mutex::new(Cell::default())).collect(),
            }
        }

        /// Records a write in `phase`; panics on a same-phase conflict.
        pub(crate) fn record_write(
            &self,
            index: usize,
            phase: u64,
            site: &'static Location<'static>,
        ) {
            let me = Access { phase, thread: thread_ordinal(), site };
            let mut cell = self.cells[index].lock();
            if let Some(w) = cell.writer {
                if w.phase == phase {
                    // LINT-ALLOW(panic): a detected race is UB in uninstrumented
                    // builds — aborting loudly is this module's entire purpose.
                    panic!(
                        "racecheck: two writes to index {index} in one parallel phase \
                         (slice phase {phase}, global phase {label}): first write at \
                         {first} (thread {ft}), second write at {second} (thread {st})",
                        label = self.label,
                        first = w.site,
                        ft = w.thread,
                        second = me.site,
                        st = me.thread,
                    );
                }
            }
            if let Some(r) = cell.reader {
                if r.phase == phase {
                    // LINT-ALLOW(panic): see above — racecheck aborts by design.
                    panic!(
                        "racecheck: write/read overlap on index {index} in one parallel \
                         phase (slice phase {phase}, global phase {label}): read at \
                         {read} (thread {rt}), write at {write} (thread {wt})",
                        label = self.label,
                        read = r.site,
                        rt = r.thread,
                        write = me.site,
                        wt = me.thread,
                    );
                }
            }
            cell.writer = Some(me);
        }

        /// Records a read in `phase`; panics if the index was written in
        /// the same phase.
        pub(crate) fn record_read(
            &self,
            index: usize,
            phase: u64,
            site: &'static Location<'static>,
        ) {
            let me = Access { phase, thread: thread_ordinal(), site };
            let mut cell = self.cells[index].lock();
            if let Some(w) = cell.writer {
                if w.phase == phase {
                    // LINT-ALLOW(panic): see above — racecheck aborts by design.
                    panic!(
                        "racecheck: write/read overlap on index {index} in one parallel \
                         phase (slice phase {phase}, global phase {label}): write at \
                         {write} (thread {wt}), read at {read} (thread {rt})",
                        label = self.label,
                        write = w.site,
                        wt = w.thread,
                        read = me.site,
                        rt = me.thread,
                    );
                }
            }
            cell.reader = Some(me);
        }
    }
}

#[cfg(all(test, feature = "racecheck"))]
mod tests {
    use super::*;

    #[test]
    fn begin_phase_advances_label() {
        let before = global_phase();
        begin_phase();
        assert!(global_phase() > before);
    }

    #[test]
    fn thread_ordinals_are_stable_per_thread() {
        let a = thread_ordinal();
        let b = thread_ordinal();
        assert_eq!(a, b);
        let other = std::thread::spawn(thread_ordinal)
            .join()
            .unwrap_or_else(|_| panic!("thread ordinal probe panicked"));
        assert_ne!(a, other);
    }
}
