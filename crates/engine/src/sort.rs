//! Least-significant-digit radix sort for 32-bit keys — the GPU-native
//! sorting primitive (CUB/b40c-style) used wherever the engines need
//! key-grouped data: the message combiner of the Medusa-role engine and
//! COO-to-CSR conversions sort by destination/source id.
//!
//! 8-bit digits, four passes, with a parallel per-chunk histogram phase
//! and stable scatter. Falls back to the standard library sort below the
//! sequential cutoff.

use crate::config::SEQUENTIAL_CUTOFF;
use crate::scan::scan_exclusive_usize;
use crate::unsafe_slice::UnsafeSlice;
use rayon::prelude::*;

const RADIX_BITS: usize = 8;
const BUCKETS: usize = 1 << RADIX_BITS;

/// Sorts `items` stably by `key(item)` (a full u32 key), in place.
pub fn radix_sort_by_key<T, K>(items: &mut Vec<T>, key: K)
where
    T: Copy + Send + Sync,
    K: Fn(&T) -> u32 + Send + Sync,
{
    let n = items.len();
    if n < SEQUENTIAL_CUTOFF || rayon::current_num_threads() == 1 {
        items.sort_by_key(|it| key(it));
        return;
    }
    let mut src: Vec<T> = std::mem::take(items);
    let mut dst: Vec<T> = Vec::with_capacity(n);
    // SAFETY: every slot of dst is written by the scatter below before
    // any read; T: Copy has no drop obligations.
    #[allow(clippy::uninit_vec)]
    unsafe {
        dst.set_len(n)
    };
    let chunk = n.div_ceil(rayon::current_num_threads() * 4).max(1);
    for pass in 0..(32 / RADIX_BITS) {
        let shift = pass * RADIX_BITS;
        // CAST: deliberate truncation — the digit is masked to BUCKETS-1 bits.
        let digit = |it: &T| ((key(it) >> shift) as usize) & (BUCKETS - 1);
        // Phase 1: per-chunk digit histograms.
        let histograms: Vec<[usize; BUCKETS]> = src
            .par_chunks(chunk)
            .map(|c| {
                let mut h = [0usize; BUCKETS];
                for it in c {
                    h[digit(it)] += 1;
                }
                h
            })
            .collect();
        // Phase 2: column-major scan gives each (bucket, chunk) its base
        // offset, preserving stability (chunk order within a bucket).
        let num_chunks = histograms.len();
        let mut flat = vec![0usize; BUCKETS * num_chunks];
        for b in 0..BUCKETS {
            for (c, h) in histograms.iter().enumerate() {
                flat[b * num_chunks + c] = h[b];
            }
        }
        let (offsets, _) = scan_exclusive_usize(&flat);
        // Phase 3: stable scatter.
        {
            crate::racecheck::begin_phase();
            let out = UnsafeSlice::new(&mut dst);
            src.par_chunks(chunk).enumerate().for_each(|(c, items)| {
                let mut cursors = [0usize; BUCKETS];
                for (b, cur) in cursors.iter_mut().enumerate() {
                    *cur = offsets[b * num_chunks + c];
                }
                for it in items {
                    let b = digit(it);
                    // SAFETY: cursor ranges are disjoint across (bucket,
                    // chunk) pairs by construction of the scanned offsets.
                    unsafe { out.write(cursors[b], *it) };
                    cursors[b] += 1;
                }
            });
        }
        std::mem::swap(&mut src, &mut dst);
    }
    *items = src;
}

/// Sorts a `u32` vector ascending, in place.
pub fn radix_sort_u32(items: &mut Vec<u32>) {
    radix_sort_by_key(items, |&x| x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_input_uses_fallback_and_sorts() {
        let mut v = vec![5u32, 1, 4, 1, 3];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![1, 1, 3, 4, 5]);
    }

    #[test]
    fn large_input_matches_std_sort() {
        let mut v: Vec<u32> = (0..200_000u32).map(|i| i.wrapping_mul(2_654_435_761)).collect();
        let mut want = v.clone();
        want.sort_unstable();
        radix_sort_u32(&mut v);
        assert_eq!(v, want);
    }

    #[test]
    fn sort_by_key_is_stable() {
        // pairs (key, original index): stability means equal keys keep
        // index order
        let mut v: Vec<(u32, u32)> = (0..100_000u32).map(|i| (i % 16, i)).collect();
        radix_sort_by_key(&mut v, |&(k, _)| k);
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "stability violated: {w:?}");
            }
        }
    }

    #[test]
    fn extreme_keys() {
        let mut v = vec![u32::MAX, 0, u32::MAX - 1, 1, u32::MAX, 0];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![0, 0, 1, u32::MAX - 1, u32::MAX, u32::MAX]);
    }

    #[test]
    fn empty_and_single() {
        let mut v: Vec<u32> = vec![];
        radix_sort_u32(&mut v);
        assert!(v.is_empty());
        let mut v = vec![7u32];
        radix_sort_u32(&mut v);
        assert_eq!(v, vec![7]);
    }
}
