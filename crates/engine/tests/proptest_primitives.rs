//! Property-based tests for the data-parallel primitives: the engine's
//! correctness obligations are algebraic (scan/compact/partition laws),
//! so they are checked against sequential references on arbitrary
//! inputs, including sizes that straddle the sequential/parallel cutoff.

use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_engine::compact::{compact, compact_indices, compact_map};
use gunrock_engine::reduce::{count_if, max_u32, sum_u32};
use gunrock_engine::scan::{scan_exclusive, scan_exclusive_u32, scan_inclusive};
use gunrock_engine::search::{merge_path_partitions, owning_segment, sorted_search_owners};
use proptest::prelude::*;

fn arb_vec() -> impl Strategy<Value = Vec<u32>> {
    // cover both the sequential path (< 4096) and the parallel path
    prop_oneof![
        proptest::collection::vec(0u32..100, 0..64),
        proptest::collection::vec(0u32..100, 4000..9000),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scan_exclusive_matches_reference(v in arb_vec()) {
        let (got, total) = scan_exclusive_u32(&v);
        let mut acc = 0u32;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(got[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn inclusive_is_exclusive_plus_element(v in arb_vec()) {
        let (ex, _) = scan_exclusive_u32(&v);
        let inc = scan_inclusive(&v, 0u32, |a, b| a + b);
        for i in 0..v.len() {
            prop_assert_eq!(inc[i], ex[i] + v[i]);
        }
    }

    #[test]
    fn scan_with_max_operator_is_running_max(v in arb_vec()) {
        let inc = scan_inclusive(&v, 0u32, |a, b| a.max(b));
        let mut m = 0u32;
        for (i, &x) in v.iter().enumerate() {
            m = m.max(x);
            prop_assert_eq!(inc[i], m);
        }
    }

    #[test]
    fn compact_equals_sequential_filter(v in arb_vec()) {
        let got = compact(&v, |&x| x % 3 == 0);
        let want: Vec<u32> = v.iter().copied().filter(|&x| x % 3 == 0).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn compact_map_equals_sequential_filter_map(v in arb_vec()) {
        let got = compact_map(&v, |&x| (x % 2 == 1).then_some(x * 2));
        let want: Vec<u32> = v.iter().filter(|&&x| x % 2 == 1).map(|&x| x * 2).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn compact_indices_point_at_matches(v in arb_vec()) {
        let got = compact_indices(&v, |&x| x > 50);
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(got.len(), v.iter().filter(|&&x| x > 50).count());
        for &i in &got {
            prop_assert!(v[i as usize] > 50);
        }
    }

    #[test]
    fn reductions_match_std(v in arb_vec()) {
        prop_assert_eq!(sum_u32(&v), v.iter().map(|&x| x as u64).sum::<u64>());
        prop_assert_eq!(max_u32(&v), v.iter().copied().max());
        prop_assert_eq!(count_if(&v, |&x| x < 10), v.iter().filter(|&&x| x < 10).count());
    }

    #[test]
    fn merge_path_covers_every_work_item(sizes in proptest::collection::vec(0u32..40, 1..50)) {
        let (offsets, total) = scan_exclusive(&sizes, 0u32, |a, b| a + b);
        prop_assume!(total > 0);
        for chunk in [1usize, 7, 64] {
            let starts = merge_path_partitions(&offsets, total, chunk);
            prop_assert_eq!(starts.len(), (total as usize).div_ceil(chunk));
            for (c, &s) in starts.iter().enumerate() {
                prop_assert_eq!(s as usize, owning_segment(&offsets, (c * chunk) as u32));
            }
        }
    }

    #[test]
    fn sorted_search_agrees_with_binary_search(sizes in proptest::collection::vec(0u32..20, 1..40)) {
        let (offsets, total) = scan_exclusive(&sizes, 0u32, |a, b| a + b);
        prop_assume!(total > 0);
        let needles: Vec<u32> = (0..total).collect();
        let owners = sorted_search_owners(&offsets, &needles);
        for (w, &seg) in needles.iter().zip(&owners) {
            prop_assert_eq!(seg as usize, owning_segment(&offsets, *w));
        }
    }

    #[test]
    fn bitmap_matches_hashset(ops in proptest::collection::vec((0usize..500, any::<bool>()), 0..300)) {
        let bm = AtomicBitmap::new(500);
        let mut set = std::collections::HashSet::new();
        for (i, add) in ops {
            if add {
                bm.set(i);
                set.insert(i);
            } else {
                bm.clear(i);
                set.remove(&i);
            }
        }
        prop_assert_eq!(bm.count_ones(), set.len());
        let mut want: Vec<usize> = set.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(bm.iter_ones().collect::<Vec<_>>(), want);
    }
}
