//! The data-centric abstraction's frontier-type flexibility (§4.1):
//! vertex and edge frontiers interconvert freely through advance, up to
//! the 2-hop edge-frontier traversal the paper highlights ("pull values
//! from all vertices 2 hops away by starting from an edge frontier").

use gunrock::prelude::*;
use gunrock_graph::{Coo, Csr, GraphBuilder};

fn line_graph() -> Csr {
    // 0 -> 1 -> 2 -> 3 -> 4 (directed path)
    GraphBuilder::new().directed().build(Coo::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]))
}

fn sorted(f: Frontier) -> Vec<u32> {
    let mut v = f.into_vec();
    v.sort_unstable();
    v
}

#[test]
fn v2e_then_e2v_is_a_two_hop_traversal() {
    let g = line_graph();
    let ctx = Context::new(&g);
    // hop 1: vertex 0 -> its out-edge ids
    let edges = advance::advance(&ctx, &Frontier::single(0), AdvanceSpec::v2e(), &AcceptAll);
    assert_eq!(edges.len(), 1);
    // hop 2: those edges expand from their far endpoints
    let two_hop = advance::advance(&ctx, &edges, AdvanceSpec::e2v(), &AcceptAll);
    assert_eq!(sorted(two_hop), vec![2]); // vertex 2 is exactly 2 hops away
}

#[test]
fn e2e_chains_edge_frontiers() {
    let g = line_graph();
    let ctx = Context::new(&g);
    let e0 = advance::advance(&ctx, &Frontier::single(0), AdvanceSpec::v2e(), &AcceptAll);
    let spec = AdvanceSpec {
        input: InputKind::Edges,
        output: OutputKind::Edges,
        ..Default::default()
    };
    let e1 = advance::advance(&ctx, &e0, spec, &AcceptAll);
    // edge (0->1) expands to edge (1->2)
    assert_eq!(e1.len(), 1);
    assert_eq!(g.edge_source(e1.as_slice()[0]), 1);
    assert_eq!(g.edge_dest(e1.as_slice()[0]), 2);
}

#[test]
fn repeated_v2v_reaches_the_whole_path() {
    let g = line_graph();
    let ctx = Context::new(&g);
    let mut f = Frontier::single(0);
    let mut reached = vec![0u32];
    while !f.is_empty() {
        f = advance::advance(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
        reached.extend(f.as_slice());
    }
    assert_eq!(reached, vec![0, 1, 2, 3, 4]);
}

#[test]
fn functor_sees_consistent_src_dst_eid_in_all_kinds() {
    use std::sync::atomic::{AtomicBool, Ordering};
    struct Check<'a> {
        g: &'a Csr,
        ok: &'a AtomicBool,
    }
    impl AdvanceFunctor for Check<'_> {
        fn cond_edge(&self, src: u32, dst: u32, e: u32) -> bool {
            // (src, dst) must be exactly the endpoints of edge e
            if self.g.edge_source(e) != src || self.g.edge_dest(e) != dst {
                self.ok.store(false, Ordering::Relaxed);
            }
            true
        }
    }
    let g = GraphBuilder::new()
        .build(Coo::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 4), (3, 5), (1, 4)]));
    let ctx = Context::new(&g);
    let ok = AtomicBool::new(true);
    let check = Check { g: &g, ok: &ok };
    let all: Frontier = Frontier::full(g.num_vertices());
    for mode in [AdvanceMode::ThreadMapped, AdvanceMode::Twc, AdvanceMode::LoadBalanced] {
        let _ = advance::advance(&ctx, &all, AdvanceSpec::v2v().with_mode(mode), &check);
        let _ = advance::advance(&ctx, &all, AdvanceSpec::v2e().with_mode(mode), &check);
    }
    assert!(ok.load(Ordering::Relaxed), "functor saw inconsistent edge data");
}

#[test]
fn neighbor_reduce_agrees_with_advance_counting() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let g = GraphBuilder::new().build(Coo::from_edges(
        8,
        &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 5), (5, 6), (6, 7), (0, 7)],
    ));
    let ctx = Context::new(&g);
    let f = Frontier::full(g.num_vertices());
    // neighbor_reduce degree sum == total edges advance visits
    let degs = neighbor_reduce(&ctx, &f, 0u64, |_v, _u, _e| 1u64, |a, b| a + b);
    let total: u64 = degs.iter().sum();
    let visited = AtomicU64::new(0);
    let counter = EdgeCond(|_s: u32, _d: u32, _e: u32| {
        visited.fetch_add(1, Ordering::Relaxed);
        false
    });
    let _ = advance::advance(&ctx, &f, AdvanceSpec::for_effect(), &counter);
    assert_eq!(total, visited.load(Ordering::Relaxed));
    assert_eq!(total, g.num_edges() as u64);
}

#[test]
fn sampled_frontier_advances_like_a_sub_frontier() {
    let g = GraphBuilder::new().build(Coo::from_edges(
        10,
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7), (7, 8), (8, 9)],
    ));
    let ctx = Context::new(&g);
    let full = Frontier::full(10);
    let half = sample(&full, 0.5, 3);
    let out_full = sorted(advance::advance(&ctx, &full, AdvanceSpec::v2v(), &AcceptAll));
    let out_half = sorted(advance::advance(&ctx, &half, AdvanceSpec::v2v(), &AcceptAll));
    // a sample's expansion is a sub-multiset of the full expansion
    assert!(out_half.len() <= out_full.len());
    for v in &out_half {
        assert!(out_full.contains(v));
    }
}
