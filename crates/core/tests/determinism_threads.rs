//! Thread-count determinism: every push strategy and the pull kernel
//! must produce the same frontier (as a multiset) and examine the same
//! number of edges regardless of how many rayon workers execute them.
//! Chunked expansion plus order-preserving concatenation makes the push
//! outputs literally identical; pull admits each candidate at most once,
//! so its output is a set either way.

use gunrock::prelude::*;
use gunrock_graph::generators::rmat::{rmat, RmatParams};
use gunrock_graph::{Csr, GraphBuilder};

fn test_graph() -> Csr {
    GraphBuilder::new().build(rmat(9, 8, RmatParams::social(), 42))
}

/// Runs `f` inside a dedicated rayon pool of `threads` workers.
fn in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool").install(f)
}

fn sorted(f: Frontier) -> Vec<u32> {
    let mut v = f.into_vec();
    v.sort_unstable();
    v
}

/// A frontier with hubs and leaves mixed, so every TWC bucket and every
/// load-balance partition boundary is exercised.
fn mixed_frontier(g: &Csr) -> Frontier {
    let mut items: Vec<u32> = (0..g.num_vertices() as u32).step_by(3).collect();
    // repeat the highest-degree vertex so skew lands in one chunk
    let hub = (0..g.num_vertices() as u32).max_by_key(|&v| g.out_degree(v)).unwrap();
    items.extend([hub; 4]);
    Frontier::from_vec(items)
}

#[test]
fn push_strategies_are_thread_count_invariant() {
    let g = test_graph();
    let input = mixed_frontier(&g);
    type Strat = fn(&Context<'_>, &Frontier, AdvanceSpec, &AcceptAll) -> Frontier;
    let strategies: [(&str, Strat); 3] = [
        ("thread_mapped", advance::push::thread_mapped),
        ("twc", advance::push::twc),
        ("load_balanced", advance::push::load_balanced),
    ];
    for (name, strat) in strategies {
        let mut baseline: Option<(Vec<u32>, u64)> = None;
        for threads in [1usize, 2, 8] {
            let (out, edges) = in_pool(threads, || {
                let ctx = Context::new(&g);
                let out = strat(&ctx, &input, AdvanceSpec::v2v(), &AcceptAll);
                (sorted(out), ctx.counters.edges())
            });
            match &baseline {
                None => baseline = Some((out, edges)),
                Some((b_out, b_edges)) => {
                    assert_eq!(&out, b_out, "{name}: output differs at {threads} threads");
                    assert_eq!(
                        edges, *b_edges,
                        "{name}: edges_examined differs at {threads} threads"
                    );
                }
            }
        }
    }
}

#[test]
fn pull_sweep_is_thread_count_invariant() {
    let g = test_graph();
    let input = mixed_frontier(&g);
    let n = g.num_vertices();
    let mut baseline: Option<(Vec<u32>, Vec<u32>, u64)> = None;
    for threads in [1usize, 2, 8] {
        let (out, remaining, edges) = in_pool(threads, || {
            let ctx = Context::new(&g).with_reverse(&g);
            let in_frontier = advance::pull::frontier_bitmap(&ctx, &input);
            let mut candidates = PooledBitmap::take(ctx.pool(), n);
            // all vertices are candidates
            for v in 0..n as u32 {
                candidates.set(v as usize);
            }
            let mut out = PooledBitmap::take(ctx.pool(), n);
            advance::pull::advance_pull_sweep(
                &ctx,
                &mut candidates,
                &in_frontier,
                &mut out,
                &AcceptAll,
            );
            let discovered: Vec<u32> = out.iter_ones().map(|i| i as u32).collect();
            let remaining: Vec<u32> = candidates.iter_ones().map(|i| i as u32).collect();
            let edges = ctx.counters.edges();
            in_frontier.release(ctx.pool());
            candidates.release(ctx.pool());
            out.release(ctx.pool());
            (discovered, remaining, edges)
        });
        match &baseline {
            None => baseline = Some((out, remaining, edges)),
            Some((b_out, b_rem, b_edges)) => {
                assert_eq!(&out, b_out, "sweep: discovered set differs at {threads} threads");
                assert_eq!(
                    &remaining, b_rem,
                    "sweep: surviving candidates differ at {threads} threads"
                );
                assert_eq!(
                    edges, *b_edges,
                    "sweep: edges_examined differs at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn pull_advance_is_thread_count_invariant() {
    let g = test_graph();
    let input = mixed_frontier(&g);
    let candidates: Vec<u32> = (0..g.num_vertices() as u32).collect();
    let mut baseline: Option<(Vec<u32>, u64)> = None;
    for threads in [1usize, 2, 8] {
        let (out, edges) = in_pool(threads, || {
            let ctx = Context::new(&g).with_reverse(&g);
            let bm = advance::pull::frontier_bitmap(&ctx, &input);
            let out = advance::pull::advance_pull(&ctx, &candidates, &bm, &AcceptAll);
            bm.release(ctx.pool());
            (sorted(out), ctx.counters.edges())
        });
        match &baseline {
            None => baseline = Some((out, edges)),
            Some((b_out, b_edges)) => {
                assert_eq!(&out, b_out, "pull: output differs at {threads} threads");
                assert_eq!(
                    edges, *b_edges,
                    "pull: edges_examined differs at {threads} threads"
                );
            }
        }
    }
}
