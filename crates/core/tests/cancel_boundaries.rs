//! Regression tests for the cancellation contract.
//!
//! Push-direction advance completes its in-flight launch under cancel —
//! its per-edge functor effects are applied as it goes, so a full launch
//! keeps label state consistent — and the cancel lands at the next
//! operator boundary. The wall-clock budget is additionally honored
//! *between batches* inside a split load-balanced advance. The
//! pull advance and culling filter go further: their chunk loops poll
//! [`Context::abort_mid_operator`] and truncate on cancel or deadline
//! (their partial frontiers are discarded by the guard at the next
//! boundary) — see the regression tests in `advance::pull` and
//! `filter::culling`. When a checkpoint policy is active the truncation
//! is suppressed and every operator runs to completion, so snapshot
//! boundaries stay consistent and a drained run resumes losslessly.

use gunrock::prelude::*;
use gunrock_graph::{Coo, GraphBuilder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn hub_graph(deg: u32) -> gunrock_graph::Csr {
    let edges: Vec<(u32, u32)> = (1..=deg).map(|d| (0, d)).collect();
    GraphBuilder::new().directed().build(Coo::from_edges(deg as usize + 1, &edges))
}

#[test]
fn cancel_mid_operator_completes_the_operator() {
    let g = hub_graph(100);
    let flag = Arc::new(AtomicBool::new(false));
    let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
    let guard = ctx.guard();

    // Cancel *during* the advance, from inside a functor call: the
    // operator must still complete and deliver its full output.
    let cancel_from_functor = EdgeCond(move |_s: u32, _d: u32, _e: u32| {
        flag.store(true, Ordering::Release);
        true
    });
    let out =
        advance::advance(&ctx, &Frontier::single(0), AdvanceSpec::v2v(), &cancel_from_functor);
    assert_eq!(out.len(), 100, "cancel must not truncate an in-flight operator");

    // ...but the next operator-boundary check observes it.
    assert_eq!(guard.check(1), Some(RunOutcome::Cancelled));
}

#[test]
fn cancel_set_before_the_loop_stops_at_the_first_boundary() {
    let g = hub_graph(10);
    let flag = Arc::new(AtomicBool::new(true));
    let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
    let guard = ctx.guard();
    assert_eq!(guard.check(0), Some(RunOutcome::Cancelled));
}

#[test]
fn cancel_does_not_trip_the_inter_batch_deadline() {
    // The inter-batch check inside a split load-balanced *push* advance
    // honors the wall-clock budget only; a set cancel flag must NOT stop
    // this operator mid-way (push functor effects land per edge, so a
    // completed launch keeps label state consistent; cancel is picked up
    // at the next operator boundary instead).
    let g = hub_graph(100);
    let flag = Arc::new(AtomicBool::new(true));
    let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
    let _guard = ctx.guard();
    assert!(!ctx.deadline_exceeded(), "cancel must not masquerade as a deadline");
    let out = advance::advance(
        &ctx,
        &Frontier::from_vec(vec![0; 50]),
        AdvanceSpec::v2v().with_mode(AdvanceMode::LoadBalanced),
        &AcceptAll,
    );
    assert_eq!(out.len(), 5000, "cancelled run still finishes the in-flight advance");
}

#[test]
fn expired_budget_is_seen_between_batches() {
    // Contrast case: the wall-clock budget IS checked between batches,
    // so a run whose budget expired stops promptly even inside one
    // gigantic advance — but only via the split path; this exercises the
    // public advance entry point end to end.
    let g = hub_graph(100);
    let ctx =
        Context::new(&g).with_policy(RunPolicy::unbounded().wall_clock_budget(Duration::ZERO));
    let guard = ctx.guard();
    assert_eq!(guard.check(0), Some(RunOutcome::TimedOut));
    assert!(ctx.deadline_exceeded());
}
