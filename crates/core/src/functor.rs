//! User-defined computation: the `cond`/`apply` functor API of Figure 1.
//!
//! §4.3: hardwired GPU primitives win by *fusing* computation into the
//! irregular advance/filter kernels instead of launching separate passes.
//! Gunrock exposes computation as functors that the operators call inline
//! — the same fusion, expressed as static dispatch: the functor methods
//! are monomorphized into each operator's loops, so a Gunrock "kernel"
//! compiles to one fused loop exactly like the CUDA template instantiation
//! in the original.
//!
//! Functors receive shared references and use interior mutability
//! (atomics) for updates, mirroring device functors operating on global
//! memory. All methods take `&self`; implementations must be thread-safe.

use gunrock_graph::{EdgeId, VertexId};

/// Per-edge functor for [advance](crate::advance): called once per
/// traversed edge `(src, dst, eid)`.
///
/// Semantics follow the paper's API: `cond_edge` decides whether the edge
/// is valid (for SSSP this is where the `atomicMin` relaxation happens);
/// if valid, `apply_edge` runs the per-edge computation (e.g. set the
/// predecessor) and the destination (or the edge) joins the output
/// frontier.
pub trait AdvanceFunctor: Sync {
    /// Returns true if this edge's traversal succeeds (destination should
    /// enter the output frontier).
    fn cond_edge(&self, src: VertexId, dst: VertexId, eid: EdgeId) -> bool;

    /// Computation applied to edges that passed `cond_edge`.
    #[inline]
    fn apply_edge(&self, src: VertexId, dst: VertexId, eid: EdgeId) {
        let _ = (src, dst, eid);
    }
}

/// Per-element functor for [filter](crate::filter): called once per
/// frontier element.
pub trait FilterFunctor: Sync {
    /// Returns true if the element survives the filter.
    fn cond(&self, id: u32) -> bool;

    /// Computation applied to surviving elements.
    #[inline]
    fn apply(&self, id: u32) {
        let _ = id;
    }
}

/// Blanket adapter: use a plain closure as an advance functor when no
/// `apply` step is needed.
pub struct EdgeCond<F>(pub F);

impl<F> AdvanceFunctor for EdgeCond<F>
where
    F: Fn(VertexId, VertexId, EdgeId) -> bool + Sync,
{
    #[inline]
    fn cond_edge(&self, src: VertexId, dst: VertexId, eid: EdgeId) -> bool {
        (self.0)(src, dst, eid)
    }
}

/// Blanket adapter: use a plain closure as a filter functor.
pub struct VertexCond<F>(pub F);

impl<F> FilterFunctor for VertexCond<F>
where
    F: Fn(u32) -> bool + Sync,
{
    #[inline]
    fn cond(&self, id: u32) -> bool {
        (self.0)(id)
    }
}

/// An advance functor that accepts every edge — used by the *unfused*
/// execution path (ablation A3 in DESIGN.md) and by plain neighborhood
/// expansion.
pub struct AcceptAll;

impl AdvanceFunctor for AcceptAll {
    #[inline]
    fn cond_edge(&self, _: VertexId, _: VertexId, _: EdgeId) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn closure_adapters() {
        let f = EdgeCond(|s: VertexId, d: VertexId, _e: EdgeId| s < d);
        assert!(f.cond_edge(1, 2, 0));
        assert!(!f.cond_edge(2, 1, 0));
        let g = VertexCond(|v: u32| v.is_multiple_of(2));
        assert!(g.cond(4));
        assert!(!g.cond(5));
    }

    #[test]
    fn apply_default_is_noop_and_overridable() {
        struct Counting(AtomicU32);
        impl AdvanceFunctor for Counting {
            fn cond_edge(&self, _: VertexId, _: VertexId, _: EdgeId) -> bool {
                true
            }
            fn apply_edge(&self, _: VertexId, _: VertexId, _: EdgeId) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let c = Counting(AtomicU32::new(0));
        assert!(c.cond_edge(0, 1, 0));
        c.apply_edge(0, 1, 0);
        assert_eq!(c.0.load(Ordering::Relaxed), 1);
        // default apply compiles and does nothing
        AcceptAll.apply_edge(0, 1, 0);
    }
}
