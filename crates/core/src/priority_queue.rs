//! Two-level priority queue (§4.1.1): Gunrock's generalization of
//! Davidson et al.'s near-far worklists.
//!
//! "Allowing user-defined priority functions to organize an output
//! frontier into 'near' and 'far' slices. [...] Gunrock then considers
//! only the near slice in the next processing steps, adding any new
//! elements that do not pass the near criterion into the far slice, until
//! the near slice is exhausted. We then update the priority function and
//! operate on the far slice."
//!
//! The split itself is a frontier manipulation (two scan-compacts) —
//! precisely the operation the paper argues GAS abstractions cannot
//! express.

use gunrock_engine::compact::compact;
use gunrock_engine::frontier::Frontier;

/// A near-far pile with a sliding priority window of width `delta`
/// (delta-stepping when priorities are tentative distances).
#[derive(Clone, Debug)]
pub struct NearFarQueue {
    far: Vec<u32>,
    delta: u32,
    /// Elements with priority < `pivot` are near.
    pivot: u32,
}

impl NearFarQueue {
    /// Creates a queue whose first near window is `[0, delta)`.
    pub fn new(delta: u32) -> Self {
        assert!(delta > 0, "delta must be positive");
        NearFarQueue { far: Vec::new(), delta, pivot: delta }
    }

    /// Current near/far boundary.
    pub fn pivot(&self) -> u32 {
        self.pivot
    }

    /// The window width the queue was created with.
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// The parked far-pile elements in insertion order (checkpointing).
    pub fn far_slice(&self) -> &[u32] {
        &self.far
    }

    /// Rebuilds a queue from checkpointed state: the window width, the
    /// pivot at snapshot time, and the parked far pile.
    pub fn restore(delta: u32, pivot: u32, far: Vec<u32>) -> Self {
        assert!(delta > 0, "delta must be positive");
        NearFarQueue { far, delta, pivot }
    }

    /// Number of elements parked in the far pile.
    pub fn far_len(&self) -> usize {
        self.far.len()
    }

    /// Splits a frontier by the priority function: elements with
    /// `priority < pivot` are returned as the near frontier; the rest are
    /// appended to the far pile.
    pub fn split<P>(&mut self, frontier: Frontier, priority: P) -> Frontier
    where
        P: Fn(u32) -> u32 + Sync,
    {
        let items = frontier.as_slice();
        let near = compact(items, |&v| priority(v) < self.pivot);
        let mut far = compact(items, |&v| priority(v) >= self.pivot);
        self.far.append(&mut far);
        Frontier::from_vec(near)
    }

    /// Called when the near slice is exhausted: advances the priority
    /// window until some far elements qualify, returning them as the new
    /// near frontier. Elements whose priority has meanwhile dropped below
    /// the *old* pivot are stale (the relaxation that lowered them also
    /// re-enqueued them) and are dropped. Returns an empty frontier when
    /// the far pile is exhausted too — convergence.
    pub fn refill<P>(&mut self, priority: P) -> Frontier
    where
        P: Fn(u32) -> u32 + Sync,
    {
        while !self.far.is_empty() {
            let old_pivot = self.pivot;
            self.pivot = self.pivot.saturating_add(self.delta);
            let near = compact(&self.far, |&v| {
                let p = priority(v);
                p >= old_pivot && p < self.pivot
            });
            self.far = compact(&self.far, |&v| priority(v) >= self.pivot);
            if !near.is_empty() {
                return Frontier::from_vec(near);
            }
            if self.pivot == u32::MAX {
                // priorities saturated: everything left is unreachable
                self.far.clear();
                break;
            }
        }
        Frontier::new()
    }

    /// True when both piles are empty and no refill can produce work.
    pub fn is_exhausted(&self) -> bool {
        self.far.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_partitions_by_pivot() {
        let mut q = NearFarQueue::new(10);
        let f = Frontier::from_vec(vec![1, 2, 3, 4]);
        // priorities: v * 4 -> [4, 8, 12, 16]; pivot 10
        let near = q.split(f, |v| v * 4);
        assert_eq!(near.as_slice(), &[1, 2]);
        assert_eq!(q.far_len(), 2);
    }

    #[test]
    fn refill_advances_window_and_drops_stale() {
        let mut q = NearFarQueue::new(10);
        let f = Frontier::from_vec(vec![1, 2, 3]);
        // priorities: 100, 15, 3 — only v=3 near initially
        let prios = [0u32, 100, 15, 3];
        let near = q.split(f, |v| prios[v as usize]);
        assert_eq!(near.as_slice(), &[3]);
        // refill: window becomes [10, 20): v=2 qualifies
        let near = q.refill(|v| prios[v as usize]);
        assert_eq!(near.as_slice(), &[2]);
        // pretend v=1's priority dropped to 5 (stale): refill must drop it
        let updated = [0u32, 5, 15, 3];
        let near = q.refill(|v| updated[v as usize]);
        assert!(near.is_empty());
        assert!(q.is_exhausted());
    }

    #[test]
    fn refill_skips_empty_windows() {
        let mut q = NearFarQueue::new(5);
        let f = Frontier::from_vec(vec![0]);
        let near = q.split(f, |_| 23);
        assert!(near.is_empty());
        // windows [5,10), [10,15), [15,20) are empty; [20,25) catches it
        let near = q.refill(|_| 23);
        assert_eq!(near.as_slice(), &[0]);
    }

    #[test]
    fn saturated_priorities_terminate() {
        let mut q = NearFarQueue::new(u32::MAX / 2);
        let f = Frontier::from_vec(vec![0, 1]);
        let near = q.split(f, |_| u32::MAX);
        assert!(near.is_empty());
        let near = q.refill(|_| u32::MAX);
        assert!(near.is_empty());
        assert!(q.is_exhausted());
    }

    #[test]
    #[should_panic]
    fn zero_delta_rejected() {
        NearFarQueue::new(0);
    }
}
