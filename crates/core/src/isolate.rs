//! Panic isolation for operator entry points.
//!
//! A panic inside a user functor (or an injected fault) must not abort
//! the process: each operator family's entry point runs its body under
//! `catch_unwind`, converts a panic into
//! [`GunrockError::OperatorPanic`], poisons the context, and returns an
//! empty result. The enact loop observes the poison at its next guard
//! check and ends the run with `RunOutcome::Failed`.

use crate::context::Context;
use crate::error::{panic_payload_string, GunrockError};
use gunrock_engine::budget::BudgetDenied;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs one operator step under `catch_unwind`.
///
/// Returns `None` — without running `body` — when the context is
/// already poisoned (a failed run must not keep executing functors on
/// inconsistent state), and `None` after poisoning the context when
/// `body` panics. The `AssertUnwindSafe` is sound here because a
/// poisoned context is never read as a result: the enact loop discards
/// all state the moment the guard reports `Failed`.
pub(crate) fn isolated<T>(
    ctx: &Context<'_>,
    operator: &'static str,
    body: impl FnOnce() -> T,
) -> Option<T> {
    if ctx.is_poisoned() {
        return None;
    }
    // Operator entry doubles as a watchdog heartbeat: a job making any
    // bulk-synchronous progress keeps ticking even between iterations.
    ctx.tick_heartbeat();
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(out) => Some(out),
        Err(payload) => {
            // A pool checkout denied by the memory budget unwinds as a
            // typed `BudgetDenied` payload (`panic_any` in `take_*`);
            // surfacing it here as a structured `BudgetExceeded` spares
            // all 80-odd take/put call sites from Result plumbing while
            // the caller still sees *budget*, not "some panic".
            let iteration = current_iteration(ctx);
            let err = match payload.downcast_ref::<BudgetDenied>() {
                Some(denied) => GunrockError::BudgetExceeded {
                    operator,
                    iteration,
                    requested: denied.requested,
                    reserved: denied.reserved,
                    limit: denied.limit,
                },
                None => GunrockError::OperatorPanic {
                    operator,
                    iteration,
                    payload: panic_payload_string(payload.as_ref()),
                },
            };
            ctx.poison(err);
            None
        }
    }
}

/// The iteration an error should be stamped with: the sink's stamp when
/// instrumented, the global iteration counter otherwise.
pub(crate) fn current_iteration(ctx: &Context<'_>) -> u32 {
    match ctx.sink() {
        Some(sink) => sink.current_iteration(),
        None => ctx.counters.iters() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::{Coo, GraphBuilder};

    fn quiet<T>(f: impl FnOnce() -> T) -> T {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = f();
        std::panic::set_hook(prev);
        out
    }

    #[test]
    fn panics_poison_and_preserve_payload() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        let out: Option<u32> = quiet(|| isolated(&ctx, "advance", || panic!("functor bug")));
        assert_eq!(out, None);
        assert!(ctx.is_poisoned());
        match ctx.take_failure() {
            Some(GunrockError::OperatorPanic { operator, payload, .. }) => {
                assert_eq!(operator, "advance");
                assert_eq!(payload, "functor bug");
            }
            other => panic!("unexpected failure {other:?}"),
        }
    }

    #[test]
    fn poisoned_context_skips_the_body() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        quiet(|| isolated(&ctx, "filter", || panic!("first")));
        let ran = std::cell::Cell::new(false);
        let out = isolated(&ctx, "compute", || ran.set(true));
        assert_eq!(out, None);
        assert!(!ran.get(), "poisoned context must not run further operators");
    }

    #[test]
    fn budget_denials_surface_as_budget_exceeded_not_operator_panic() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        let denied = BudgetDenied { requested: 4096, reserved: 512, limit: 1024 };
        let out: Option<()> =
            quiet(|| isolated(&ctx, "advance", || std::panic::panic_any(denied)));
        assert_eq!(out, None);
        match ctx.take_failure() {
            Some(GunrockError::BudgetExceeded {
                operator, requested, reserved, limit, ..
            }) => {
                assert_eq!(operator, "advance");
                assert_eq!((requested, reserved, limit), (4096, 512, 1024));
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn success_passes_through() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        assert_eq!(isolated(&ctx, "compute", || 42), Some(42));
        assert!(!ctx.is_poisoned());
    }
}
