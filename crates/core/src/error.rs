//! Structured failures for the execution layer.
//!
//! PR 1 gave the *input* side typed errors ([`GraphError`]); this module
//! does the same for the *execution* side. A panic inside an operator's
//! functor loop, a (simulated) allocation failure that outlived its
//! retries, or a broken checkpoint file all surface as a
//! [`GunrockError`] instead of aborting the process, and the poisoned
//! `Context` guarantees partial state is never read as a complete
//! result.

use gunrock_engine::checkpoint::CheckpointError;
use gunrock_graph::GraphError;
use std::fmt;

/// Why a primitive execution failed.
#[derive(Debug)]
pub enum GunrockError {
    /// An operator step panicked (a bug in a functor, or an injected
    /// fault). The enclosing run is poisoned: its results are
    /// meaningless and its outcome is `RunOutcome::Failed`.
    OperatorPanic {
        /// Operator family that panicked (`"advance"`, `"filter"`,
        /// `"compute"`).
        operator: &'static str,
        /// Bulk-synchronous iteration the panic happened in.
        iteration: u32,
        /// The panic payload, stringified.
        payload: String,
    },
    /// An operator's workspace allocation failed and the configured
    /// retries (and the thread-mapped fallback, when applicable) were
    /// exhausted.
    AllocFailed {
        /// Operator family that could not allocate.
        operator: &'static str,
        /// Bulk-synchronous iteration of the failure.
        iteration: u32,
    },
    /// A buffer checkout would have pushed outstanding pool bytes past
    /// the configured memory budget and no cheaper degradation rung was
    /// available. Unlike a real OOM this is a *structured* failure: the
    /// process survives, the run is poisoned, and the caller learns
    /// exactly how far over the line the request was.
    BudgetExceeded {
        /// Operator family (or admission point) that hit the budget.
        operator: &'static str,
        /// Bulk-synchronous iteration of the denial.
        iteration: u32,
        /// Bytes the denied checkout asked for.
        requested: u64,
        /// Bytes already reserved when the request arrived.
        reserved: u64,
        /// The configured budget limit in bytes.
        limit: u64,
    },
    /// A checkpoint could not be written, read, or decoded.
    Checkpoint(CheckpointError),
    /// A graph input error (loading a dataset for resume, etc.).
    Graph(GraphError),
}

impl fmt::Display for GunrockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GunrockError::OperatorPanic { operator, iteration, payload } => {
                write!(f, "operator {operator} panicked in iteration {iteration}: {payload}")
            }
            GunrockError::AllocFailed { operator, iteration } => write!(
                f,
                "operator {operator} allocation failed in iteration {iteration} \
                 (retries exhausted)"
            ),
            GunrockError::BudgetExceeded {
                operator,
                iteration,
                requested,
                reserved,
                limit,
            } => {
                write!(
                    f,
                    "operator {operator} exceeded the memory budget in iteration {iteration}: \
                     requested {requested} bytes with {reserved} of {limit} reserved"
                )
            }
            GunrockError::Checkpoint(e) => write!(f, "{e}"),
            GunrockError::Graph(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for GunrockError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GunrockError::Checkpoint(e) => Some(e),
            GunrockError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for GunrockError {
    fn from(e: CheckpointError) -> Self {
        GunrockError::Checkpoint(e)
    }
}

impl From<GraphError> for GunrockError {
    fn from(e: GraphError) -> Self {
        GunrockError::Graph(e)
    }
}

/// Stringifies a `catch_unwind` payload: `&str` and `String` payloads
/// (what `panic!` produces) pass through, anything else is labeled
/// opaquely.
pub fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_operator_and_iteration() {
        let e = GunrockError::OperatorPanic {
            operator: "advance",
            iteration: 3,
            payload: "boom".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("advance") && msg.contains("3") && msg.contains("boom"), "{msg}");
        let e = GunrockError::AllocFailed { operator: "advance", iteration: 1 };
        assert!(e.to_string().contains("allocation failed"));
        let e = GunrockError::BudgetExceeded {
            operator: "advance",
            iteration: 2,
            requested: 4096,
            reserved: 1024,
            limit: 2048,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("memory budget")
                && msg.contains("4096")
                && msg.contains("1024 of 2048"),
            "{msg}"
        );
    }

    #[test]
    fn conversions_wrap_sources() {
        let g: GunrockError = GraphError::header("x").into();
        assert!(matches!(g, GunrockError::Graph(_)));
        assert!(std::error::Error::source(&g).is_some());
        let c: GunrockError = CheckpointError::BadMagic.into();
        assert!(matches!(c, GunrockError::Checkpoint(_)));
    }

    #[test]
    fn payloads_stringify() {
        let caught = std::panic::catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_payload_string(caught.as_ref()), "static str");
        let caught = std::panic::catch_unwind(|| panic!("fmt {}", 7)).unwrap_err();
        assert_eq!(panic_payload_string(caught.as_ref()), "fmt 7");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(42u32)).unwrap_err();
        assert_eq!(panic_payload_string(caught.as_ref()), "non-string panic payload");
    }
}
