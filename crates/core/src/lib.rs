//! # gunrock
//!
//! A Rust reproduction of **Gunrock: A High-Performance Graph Processing
//! Library on the GPU** (Wang et al., PPoPP 2015) — the data-centric,
//! frontier-focused bulk-synchronous programming model, with the paper's
//! GPU kernels realized over a multicore data-parallel engine
//! ([`gunrock_engine`]; see DESIGN.md for the substitution rationale).
//!
//! ## The abstraction
//!
//! Graph primitives are iterative convergent processes over a
//! **frontier** — the subset of vertices or edges currently of interest —
//! assembled from three bulk-synchronous steps:
//!
//! * [`advance`](crate::advance) — visit frontier neighbors, producing a
//!   new frontier (push or pull, under several load-balance strategies);
//! * [`filter`](crate::filter) — select a frontier subset (exact
//!   scan-compact or heuristic culling);
//! * [`compute`](crate::compute) — regular per-element work, normally
//!   *fused* into advance/filter via the [`functor`] API.
//!
//! Plus the [`priority_queue`] near-far split generalizing delta-stepping.
//!
//! ## Example: two BFS levels by hand
//!
//! ```
//! use gunrock::prelude::*;
//! use gunrock_graph::{Coo, GraphBuilder};
//!
//! let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
//! let ctx = Context::new(&g);
//! let level1 = advance::advance(&ctx, &Frontier::single(0), AdvanceSpec::v2v(), &AcceptAll);
//! assert_eq!(level1.as_slice(), &[1]);
//! let level2 = advance::advance(&ctx, &level1, AdvanceSpec::v2v(), &AcceptAll);
//! let mut v = level2.into_vec();
//! v.sort_unstable();
//! assert_eq!(v, vec![0, 2]); // undirected: includes the parent
//! ```

#![warn(missing_docs)]

pub mod advance;
pub mod compute;
pub mod context;
pub mod enactor;
pub mod error;
pub mod filter;
pub mod functor;
pub(crate) mod isolate;
pub mod neighbor_reduce;
pub mod partition;
pub mod policy;
pub mod priority_queue;
pub mod problem;
pub mod sample;
pub(crate) mod util;

/// Commonly used items for writing primitives.
pub mod prelude {
    pub use crate::advance::{
        self,
        fused::advance_filter_fused,
        msbfs::{advance_msbfs, MsbfsSweep},
        policy::{DirectionPolicy, TraversalDirection},
        pull::{advance_pull, advance_pull_sweep, frontier_bitmap},
        AdvanceMode, AdvanceSpec, InputKind, OutputKind,
    };
    pub use crate::compute;
    pub use crate::context::{Context, ContextGuard};
    pub use crate::enactor::{Enactor, IterationRecord};
    pub use crate::error::GunrockError;
    pub use crate::filter::{
        self,
        culling::{filter_with_culling_bitmap, CullingConfig},
    };
    pub use crate::functor::{AcceptAll, AdvanceFunctor, EdgeCond, FilterFunctor, VertexCond};
    pub use crate::neighbor_reduce::neighbor_reduce;
    pub use crate::partition::{partitioned_advance, ExchangeStats, VertexPartition};
    pub use crate::policy::{CheckpointPolicy, RetryPolicy, RunGuard, RunPolicy};
    pub use crate::priority_queue::NearFarQueue;
    pub use crate::problem::{enact, EnactStats, Primitive};
    pub use crate::sample::{sample, sample_k};
    pub use gunrock_engine::bitmap::{AtomicBitmap, BitSet, PooledBitmap};
    pub use gunrock_engine::checkpoint::{Checkpoint, CheckpointError};
    pub use gunrock_engine::faults::{FaultInjector, FaultKind, FaultPlan};
    pub use gunrock_engine::frontier::{Frontier, FrontierPair};
    pub use gunrock_engine::lanes::{lane_mask, LaneMap, LANES};
    pub use gunrock_engine::stats::{
        OperatorKind, RecoveryEvent, RecoveryKind, RunOutcome, RunStats, RunStatsSummary,
        StatsSink, StepDirection, StepRecord, Timing, WorkCounters,
    };
    pub use gunrock_engine::EngineConfig;
}

pub use context::{Context, ContextGuard};
pub use enactor::Enactor;
pub use error::GunrockError;
pub use functor::{AdvanceFunctor, FilterFunctor};
pub use gunrock_engine::checkpoint::{Checkpoint, CheckpointError};
pub use gunrock_engine::faults::{FaultInjector, FaultKind, FaultPlan};
pub use gunrock_engine::stats::RunOutcome;
pub use policy::{CheckpointPolicy, RetryPolicy, RunGuard, RunPolicy};
