//! The three-part Gunrock program structure (§4.3): "Gunrock programs
//! specify three components: the *Problem*, which provides graph
//! topology data and an algorithm-specific data management interface;
//! the *functors*, which contain user-defined computation code; and an
//! *enactor*, which serves as the entry point of the graph algorithm and
//! specifies the computation as a series of advance and/or filter kernel
//! calls."
//!
//! [`Primitive`] is that contract as a trait: implement `init` (problem
//! data + starting frontier), `iteration` (one bulk-synchronous step of
//! advance/filter/compute calls with your functors), and `extract`
//! (harvest results); [`enact`] is the generic entry-point loop with
//! convergence handling and statistics.

use crate::context::Context;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::{RunOutcome, Timing};

/// A graph primitive expressed as an iterative convergent process over a
/// frontier.
pub trait Primitive {
    /// The result harvested after convergence.
    type Output;

    /// Allocates problem data and returns the initial frontier.
    fn init(&mut self, ctx: &Context<'_>) -> Frontier;

    /// Runs one bulk-synchronous iteration (a sequence of operator
    /// calls), returning the next frontier.
    fn iteration(&mut self, ctx: &Context<'_>, frontier: Frontier, iter: u32) -> Frontier;

    /// Convergence test; the default is the paper's usual criterion
    /// ("convergence ... usually equates to an empty frontier").
    /// Primitives may override with iteration caps or flag checks.
    fn converged(&self, frontier: &Frontier, iter: u32) -> bool {
        let _ = iter;
        frontier.is_empty()
    }

    /// Harvests the output from the problem data.
    fn extract(self) -> Self::Output;
}

/// Statistics from one enactment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnactStats {
    /// Bulk-synchronous iterations executed.
    pub iterations: u32,
    /// Wall time plus edges examined.
    pub timing: Timing,
    /// How the loop ended: converged, or which guard tripped. Partial
    /// outcomes still carry the primitive's best-so-far output.
    pub outcome: RunOutcome,
}

/// Runs a primitive to convergence — or until the context's
/// [`RunPolicy`](crate::policy::RunPolicy) trips — returning the
/// (possibly partial) output and how the loop ended.
pub fn enact<P: Primitive>(ctx: &Context<'_>, mut primitive: P) -> (P::Output, EnactStats) {
    let start = std::time::Instant::now();
    let guard = ctx.guard();
    let mut frontier = primitive.init(ctx);
    let mut iter = 0u32;
    let mut outcome = RunOutcome::Converged;
    while !primitive.converged(&frontier, iter) {
        if let Some(tripped) = guard.check(iter) {
            outcome = tripped;
            break;
        }
        frontier = primitive.iteration(ctx, frontier, iter);
        iter += 1;
        ctx.end_iteration(false);
    }
    let stats = EnactStats {
        iterations: iter,
        timing: Timing { elapsed: start.elapsed(), edges_examined: ctx.counters.edges() },
        outcome,
    };
    (primitive.extract(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advance::{self, AdvanceSpec};
    use crate::functor::AdvanceFunctor;
    use gunrock_engine::atomics::{atomic_u32_vec, unwrap_atomic_u32};
    use gunrock_graph::{Coo, GraphBuilder, INFINITY};
    use std::sync::atomic::{AtomicU32, Ordering};

    /// BFS as a [`Primitive`]: the structure the paper's Figure 1 API
    /// implies, in ~30 lines.
    struct BfsPrimitive {
        src: u32,
        labels: Vec<AtomicU32>,
        level: u32,
    }

    struct Discover<'a> {
        labels: &'a [AtomicU32],
        level: u32,
    }

    impl AdvanceFunctor for Discover<'_> {
        fn cond_edge(&self, _s: u32, d: u32, _e: u32) -> bool {
            self.labels[d as usize]
                .compare_exchange(INFINITY, self.level, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        }
    }

    impl Primitive for BfsPrimitive {
        type Output = Vec<u32>;

        fn init(&mut self, ctx: &Context<'_>) -> Frontier {
            self.labels = atomic_u32_vec(ctx.num_vertices(), INFINITY);
            self.labels[self.src as usize].store(0, Ordering::Relaxed);
            Frontier::single(self.src)
        }

        fn iteration(&mut self, ctx: &Context<'_>, frontier: Frontier, _iter: u32) -> Frontier {
            self.level += 1;
            let f = Discover { labels: &self.labels, level: self.level };
            advance::advance(ctx, &frontier, AdvanceSpec::v2v(), &f)
        }

        fn extract(self) -> Vec<u32> {
            unwrap_atomic_u32(&self.labels)
        }
    }

    #[test]
    fn bfs_as_a_primitive_matches_expected_depths() {
        let g = GraphBuilder::new()
            .build(Coo::from_edges(6, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]));
        let ctx = Context::new(&g);
        let (labels, stats) =
            enact(&ctx, BfsPrimitive { src: 0, labels: Vec::new(), level: 0 });
        assert_eq!(labels, vec![0, 1, 2, 2, 1, INFINITY]);
        assert_eq!(stats.iterations, 3); // levels 1, 2, then empty
        assert!(stats.timing.edges_examined > 0);
    }

    /// A single-compute-step primitive (§4.1: "many simple graph
    /// primitives (e.g., computing the degree distribution of a graph)
    /// can be expressed as a single computation step").
    struct MaxDegree {
        max: std::sync::atomic::AtomicU32,
        done: bool,
    }

    impl Primitive for MaxDegree {
        type Output = u32;
        fn init(&mut self, ctx: &Context<'_>) -> Frontier {
            Frontier::full(ctx.num_vertices())
        }
        fn iteration(&mut self, ctx: &Context<'_>, frontier: Frontier, _iter: u32) -> Frontier {
            crate::compute::for_each(&frontier, |v| {
                self.max.fetch_max(ctx.graph.out_degree(v), Ordering::Relaxed);
            });
            self.done = true;
            Frontier::new()
        }
        fn converged(&self, _f: &Frontier, _iter: u32) -> bool {
            self.done
        }
        fn extract(self) -> u32 {
            self.max.into_inner()
        }
    }

    #[test]
    fn single_compute_step_primitive() {
        let g =
            GraphBuilder::new().build(Coo::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2)]));
        let ctx = Context::new(&g);
        let (max, stats) = enact(&ctx, MaxDegree { max: 0.into(), done: false });
        assert_eq!(max, g.max_degree());
        assert_eq!(stats.iterations, 1);
        assert_eq!(stats.outcome, gunrock_engine::stats::RunOutcome::Converged);
    }

    #[test]
    fn iteration_cap_yields_partial_labels() {
        use crate::policy::RunPolicy;
        use gunrock_engine::stats::RunOutcome;
        // path graph: full BFS needs 5 levels; cap at 1
        let g = GraphBuilder::new()
            .build(Coo::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(1));
        let (labels, stats) =
            enact(&ctx, BfsPrimitive { src: 0, labels: Vec::new(), level: 0 });
        assert_eq!(stats.outcome, RunOutcome::IterationCapped);
        assert_eq!(stats.iterations, 1);
        // partial but consistent: the one completed level is labeled,
        // everything further is untouched
        assert_eq!(&labels[..2], &[0, 1]);
        assert!(labels[2..].iter().all(|&l| l == INFINITY));
    }

    #[test]
    fn pre_tripped_cancel_returns_init_state() {
        use crate::policy::RunPolicy;
        use gunrock_engine::stats::RunOutcome;
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
        let flag = Arc::new(AtomicBool::new(true));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag));
        let (labels, stats) =
            enact(&ctx, BfsPrimitive { src: 0, labels: Vec::new(), level: 0 });
        assert_eq!(stats.outcome, RunOutcome::Cancelled);
        assert_eq!(stats.iterations, 0);
        assert_eq!(labels[0], 0);
        assert!(labels[1..].iter().all(|&l| l == INFINITY));
    }
}
