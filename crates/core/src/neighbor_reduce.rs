//! Neighborhood gather-reduce — the operator the paper names as future
//! work (§7): "we believe a new gather-reduce operator on neighborhoods
//! associated with vertices in the current frontier both fits nicely
//! into Gunrock's abstraction and will significantly improve performance
//! on this operation."
//!
//! Per-vertex reductions over neighbor lists normally require atomics in
//! a push advance; this operator instead assigns each frontier vertex's
//! whole neighborhood to one reduction (a segmented reduction over the
//! CSR segments), giving an atomic-free path for ops like "sum of
//! neighbor ranks" or "min neighbor label".

use crate::context::Context;
use gunrock_engine::frontier::Frontier;
use gunrock_graph::{EdgeId, VertexId};
use rayon::prelude::*;

/// For every frontier vertex `v`, computes
/// `reduce(init, map(v, u, e) for each out-edge (v, u, e))` without
/// atomics. Returns one value per frontier element, in frontier order.
pub fn neighbor_reduce<T, M, R>(
    ctx: &Context<'_>,
    frontier: &Frontier,
    init: T,
    map: M,
    reduce: R,
) -> Vec<T>
where
    T: Copy + Send + Sync,
    M: Fn(VertexId, VertexId, EdgeId) -> T + Send + Sync,
    R: Fn(T, T) -> T + Send + Sync,
{
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let g = ctx.graph;
    let mut edges = 0u64;
    let out: Vec<T> = if frontier.len() < 1024 {
        frontier
            .as_slice()
            .iter()
            .map(|&v| {
                edges += g.out_degree(v) as u64;
                reduce_one(g, v, init, &map, &reduce)
            })
            .collect()
    } else {
        let out = frontier
            .as_slice()
            .par_iter()
            .map(|&v| reduce_one(g, v, init, &map, &reduce))
            .collect();
        edges = frontier.as_slice().par_iter().map(|&v| g.out_degree(v) as u64).sum();
        out
    };
    ctx.counters.add_edges(edges);
    out
}

#[inline]
fn reduce_one<T, M, R>(g: &gunrock_graph::Csr, v: VertexId, init: T, map: &M, reduce: &R) -> T
where
    T: Copy,
    M: Fn(VertexId, VertexId, EdgeId) -> T,
    R: Fn(T, T) -> T,
{
    let mut acc = init;
    for e in g.edge_range(v) {
        let u = g.col_indices()[e];
        acc = reduce(acc, map(v, u, e as EdgeId));
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::{Coo, GraphBuilder};

    fn weighted_star() -> gunrock_graph::Csr {
        GraphBuilder::new()
            .directed()
            .build(Coo::from_weighted_edges(5, &[(0, 1, 10), (0, 2, 20), (0, 3, 5), (4, 0, 7)]))
    }

    #[test]
    fn sums_neighbor_weights_without_atomics() {
        let g = weighted_star();
        let ctx = Context::new(&g);
        let f = Frontier::from_vec(vec![0, 4, 1]);
        let sums = neighbor_reduce(&ctx, &f, 0u32, |_v, _u, e| g.weight(e), |a, b| a + b);
        assert_eq!(sums, vec![35, 7, 0]);
        assert_eq!(ctx.counters.edges(), 4);
    }

    #[test]
    fn min_neighbor_id() {
        let g = weighted_star();
        let ctx = Context::new(&g);
        let f = Frontier::from_vec(vec![0]);
        let mins = neighbor_reduce(&ctx, &f, u32::MAX, |_v, u, _e| u, |a, b| a.min(b));
        assert_eq!(mins, vec![1]);
    }

    #[test]
    fn large_frontier_parallel_path_matches_serial() {
        use gunrock_graph::generators::rmat;
        let g = GraphBuilder::new().build(rmat(9, 8, Default::default(), 3));
        let ctx = Context::new(&g);
        let f = Frontier::full(g.num_vertices());
        let got = neighbor_reduce(&ctx, &f, 0u64, |_v, u, _e| u as u64, |a, b| a + b);
        for (i, &v) in f.as_slice().iter().enumerate() {
            let want: u64 = g.neighbors(v).iter().map(|&u| u as u64).sum();
            assert_eq!(got[i], want, "vertex {v}");
        }
    }
}
