//! Internal parallel utilities shared by operators.

use gunrock_engine::scan::scan_exclusive_usize;
use gunrock_engine::unsafe_slice::UnsafeSlice;
use rayon::prelude::*;

/// Concatenates per-task output vectors into one contiguous vector with a
/// parallel scatter (scan of sizes + disjoint copies). Preserves chunk
/// order, which keeps operators deterministic.
pub fn concat_chunks(chunks: Vec<Vec<u32>>) -> Vec<u32> {
    let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
    let (offsets, total) = scan_exclusive_usize(&sizes);
    let mut out = vec![0u32; total];
    {
        gunrock_engine::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut out);
        chunks.par_iter().zip(offsets.par_iter()).for_each(|(chunk, &base)| {
            for (i, &v) in chunk.iter().enumerate() {
                // SAFETY: chunks write disjoint ranges [base, base+len).
                unsafe { out_ref.write(base + i, v) };
            }
        });
    }
    out
}

/// Splits `len` items into per-task grains: enough chunks to keep every
/// worker busy without oversubscribing tiny inputs.
pub fn grain_size(len: usize) -> usize {
    let tasks = rayon::current_num_threads() * 8;
    len.div_ceil(tasks).max(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_preserves_order() {
        let chunks = vec![vec![1, 2], vec![], vec![3], vec![4, 5, 6]];
        assert_eq!(concat_chunks(chunks), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn concat_empty() {
        assert!(concat_chunks(vec![]).is_empty());
        assert!(concat_chunks(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn grain_bounds() {
        assert!(grain_size(0) >= 1);
        assert!(grain_size(1_000_000) >= 64);
    }
}
