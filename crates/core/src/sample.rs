//! Frontier sampling — the second operator the paper names as future
//! work (§7): "we also expect to explore a 'sample' step that can take a
//! random subsample of a frontier, which we can use to compute a rough
//! or seeded solution that may allow faster convergence on a full
//! graph."
//!
//! Sampling is deterministic given a seed (a per-element hash decides
//! membership), so sampled runs are reproducible and the sample of a
//! fixed frontier is stable across calls.

use gunrock_engine::compact::compact;
use gunrock_engine::frontier::Frontier;

#[inline]
fn mix(seed: u64, v: u32) -> u64 {
    let mut x = seed ^ ((v as u64) << 1 | 1);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Keeps each frontier element independently with probability
/// `fraction` (deterministic per `(seed, element)`); order preserved.
pub fn sample(frontier: &Frontier, fraction: f64, seed: u64) -> Frontier {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    if fraction >= 1.0 {
        return frontier.clone();
    }
    let threshold = (fraction * u64::MAX as f64) as u64;
    Frontier::from_vec(compact(frontier.as_slice(), |&v| mix(seed, v) < threshold))
}

/// Keeps approximately `k` elements (exactly `min(k, len)` when `k`
/// small relative to the frontier): the `k` elements with the smallest
/// per-element hash, i.e. a uniform random subset without replacement.
pub fn sample_k(frontier: &Frontier, k: usize, seed: u64) -> Frontier {
    if k >= frontier.len() {
        return frontier.clone();
    }
    let mut keyed: Vec<(u64, u32)> =
        frontier.as_slice().iter().map(|&v| (mix(seed, v), v)).collect();
    keyed.select_nth_unstable(k);
    let mut out: Vec<u32> = keyed[..k].iter().map(|&(_, v)| v).collect();
    out.sort_unstable();
    Frontier::from_vec(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extreme_fractions() {
        let f = Frontier::from_vec((0..100).collect());
        assert_eq!(sample(&f, 1.0, 1).len(), 100);
        assert_eq!(sample(&f, 0.0, 1).len(), 0);
    }

    #[test]
    fn fraction_is_approximately_respected() {
        let f = Frontier::from_vec((0..100_000).collect());
        let s = sample(&f, 0.25, 7);
        let frac = s.len() as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn deterministic_and_order_preserving() {
        let f = Frontier::from_vec((0..10_000).collect());
        let a = sample(&f, 0.5, 42);
        let b = sample(&f, 0.5, 42);
        assert_eq!(a, b);
        assert!(a.as_slice().windows(2).all(|w| w[0] < w[1]));
        let c = sample(&f, 0.5, 43);
        assert_ne!(a, c, "different seed, different sample");
    }

    #[test]
    fn sample_k_exact_size_and_subset() {
        let f = Frontier::from_vec((0..1000).map(|x| x * 3).collect());
        let s = sample_k(&f, 50, 9);
        assert_eq!(s.len(), 50);
        assert!(s.as_slice().iter().all(|&v| v % 3 == 0));
        assert_eq!(sample_k(&f, 5000, 9).len(), 1000); // k >= len: all
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_fraction_rejected() {
        sample(&Frontier::new(), 1.5, 0);
    }
}
