//! The **compute** operator (§4.1): "a programmer-specified computation
//! step defines an operation on all elements in the current frontier;
//! Gunrock then performs that operation in parallel across all elements."
//!
//! Standalone compute exists mainly for primitives that are a single
//! regular pass (degree distributions, value initialization) and for the
//! *unfused* ablation path — in normal primitives the computation is
//! fused into advance/filter via the functor API (§4.3).

use crate::context::Context;
use crate::isolate::isolated;
use gunrock_engine::config::SEQUENTIAL_CUTOFF;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::OperatorKind;
use rayon::prelude::*;
use std::time::Instant;

/// Applies `op` to every element of the frontier in parallel.
pub fn for_each<F>(input: &Frontier, op: F)
where
    F: Fn(u32) + Send + Sync,
{
    if input.len() < SEQUENTIAL_CUTOFF {
        for v in input {
            op(v);
        }
    } else {
        input.as_slice().par_iter().for_each(|&v| op(v));
    }
}

/// Applies `op` to every id in `0..n` (an implicit full frontier, e.g.
/// PageRank initialization) in parallel.
pub fn for_each_id<F>(n: usize, op: F)
where
    F: Fn(u32) + Send + Sync,
{
    if n < SEQUENTIAL_CUTOFF {
        for v in 0..n as u32 {
            op(v);
        }
    } else {
        (0..n as u32).into_par_iter().for_each(op);
    }
}

/// [`for_each`] with instrumentation: records a compute `StepRecord` on
/// the context's stats sink when one is installed. Primitives running
/// standalone compute steps should prefer this entry point so the trace
/// covers all three operator families.
pub fn for_each_ctx<F>(ctx: &Context<'_>, input: &Frontier, op: F)
where
    F: Fn(u32) + Send + Sync,
{
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| Instant::now());
    let result = isolated(ctx, "compute", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("compute");
        }
        for_each(input, op);
    });
    if result.is_none() {
        return;
    }
    if let (Some(start), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Compute,
            "for_each",
            None,
            input.len() as u64,
            input.len() as u64,
            0,
            start.elapsed(),
        );
    }
}

/// Parallel map over a frontier collecting results (used by primitives
/// that derive per-element values, e.g. priorities for the near-far
/// split).
pub fn map<T, F>(input: &Frontier, op: F) -> Vec<T>
where
    T: Send,
    F: Fn(u32) -> T + Send + Sync,
{
    if input.len() < SEQUENTIAL_CUTOFF {
        input.as_slice().iter().map(|&v| op(v)).collect()
    } else {
        input.as_slice().par_iter().map(|&v| op(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn for_each_touches_every_element_small_and_large() {
        for n in [100u32, 50_000] {
            let acc = AtomicU64::new(0);
            let f = Frontier::from_vec((0..n).collect());
            for_each(&f, |v| {
                acc.fetch_add(v as u64, Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
        }
    }

    #[test]
    fn for_each_id_covers_range() {
        let acc = AtomicU64::new(0);
        for_each_id(10_000, |_| {
            acc.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn map_preserves_order() {
        let f = Frontier::from_vec(vec![3, 1, 2]);
        assert_eq!(map(&f, |v| v * 10), vec![30, 10, 20]);
        let big = Frontier::from_vec((0..20_000).collect());
        let mapped = map(&big, |v| v + 1);
        assert!(mapped.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }
}
