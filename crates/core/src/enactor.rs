//! The **enactor**: "the entry point of the graph algorithm", wrapping
//! the execution context and exposing the operator set of Figure 1 plus
//! per-iteration instrumentation.
//!
//! Primitives (crate `gunrock-algos`) are written against this type: an
//! enactor owns the frontier loop, launching advance/filter/compute
//! "kernels" with user functors fused in, until convergence (usually an
//! empty frontier).

use crate::advance::{self, policy::TraversalDirection, AdvanceSpec};
use crate::compute;
use crate::context::{Context, ContextGuard};
use crate::filter::{self, culling::CullingConfig};
use crate::functor::{AdvanceFunctor, FilterFunctor};
use gunrock_engine::bitmap::{BitSet, PooledBitmap};
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::{RunOutcome, Timing};

/// One bulk-synchronous iteration's record, for the instrumentation the
/// evaluation harness and ablations read.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IterationRecord {
    /// Zero-based iteration index.
    pub iteration: u32,
    /// Input frontier size.
    pub input_len: usize,
    /// Output frontier size.
    pub output_len: usize,
    /// Traversal direction this iteration ran in.
    pub direction: TraversalDirection,
}

/// Runs operator sequences over one graph with shared counters and an
/// iteration log.
pub struct Enactor<'g> {
    /// The execution context the operators run against.
    pub ctx: Context<'g>,
    log: Vec<IterationRecord>,
    iteration: u32,
}

impl<'g> Enactor<'g> {
    /// Creates an enactor over a prepared context.
    pub fn new(ctx: Context<'g>) -> Self {
        Enactor { ctx, log: Vec::new(), iteration: 0 }
    }

    /// Push-direction advance with fused functor.
    pub fn advance<F: AdvanceFunctor>(
        &self,
        input: &Frontier,
        spec: AdvanceSpec,
        functor: &F,
    ) -> Frontier {
        advance::advance(&self.ctx, input, spec, functor)
    }

    /// Pull-direction advance over `candidates` against the frontier
    /// bitmap (see [`advance::pull`]).
    pub fn advance_pull<F: AdvanceFunctor, B: BitSet>(
        &self,
        candidates: &[u32],
        in_frontier: &B,
        functor: &F,
    ) -> Frontier {
        advance::pull::advance_pull(&self.ctx, candidates, in_frontier, functor)
    }

    /// Masked word-sweep pull advance: all-bitmap operands, discovered
    /// candidates cleared in place (see [`advance::pull::advance_pull_sweep`]).
    pub fn advance_pull_sweep<F: AdvanceFunctor>(
        &self,
        candidates: &mut PooledBitmap,
        in_frontier: &PooledBitmap,
        out: &mut PooledBitmap,
        functor: &F,
    ) -> u64 {
        advance::pull::advance_pull_sweep(&self.ctx, candidates, in_frontier, out, functor)
    }

    /// Exact scan-compact filter.
    pub fn filter<F: FilterFunctor>(&self, input: &Frontier, functor: &F) -> Frontier {
        filter::filter(&self.ctx, input, functor)
    }

    /// Heuristic culling filter for idempotent traversal.
    pub fn filter_with_culling<F: FilterFunctor, B: BitSet>(
        &self,
        input: &Frontier,
        visited: &B,
        functor: &F,
        cfg: CullingConfig,
    ) -> Frontier {
        filter::culling::filter_with_culling(&self.ctx, input, visited, functor, cfg)
    }

    /// Bitmap-shaped culling filter: merges a pull sweep's output bitmap
    /// into `visited` word-wise and extracts the next list frontier (see
    /// [`filter::culling::filter_with_culling_bitmap`]).
    pub fn filter_with_culling_bitmap<F: FilterFunctor, B: BitSet>(
        &self,
        input: &PooledBitmap,
        visited: &B,
        functor: &F,
        cfg: CullingConfig,
    ) -> Frontier {
        filter::culling::filter_with_culling_bitmap(&self.ctx, input, visited, functor, cfg)
    }

    /// Parallel per-element computation (instrumented when the context
    /// carries a stats sink).
    pub fn compute<F: Fn(u32) + Send + Sync>(&self, input: &Frontier, op: F) {
        compute::for_each_ctx(&self.ctx, input, op)
    }

    /// Arms the context's execution guard for this enactment. Check the
    /// returned guard at the top of every bulk-synchronous step (see
    /// [`Enactor::check_guard`] for the loop-shaped convenience).
    pub fn guard(&self) -> ContextGuard<'_> {
        self.ctx.guard()
    }

    /// Checks an armed guard against the iterations recorded so far,
    /// returning the outcome that should end the loop, if any.
    pub fn check_guard(&self, guard: &ContextGuard<'_>) -> Option<RunOutcome> {
        guard.check(self.iteration)
    }

    /// Records one completed iteration for the log and counters.
    pub fn record_iteration(
        &mut self,
        input_len: usize,
        output_len: usize,
        direction: TraversalDirection,
    ) {
        self.ctx.end_iteration(direction == TraversalDirection::Pull);
        self.log.push(IterationRecord {
            iteration: self.iteration,
            input_len,
            output_len,
            direction,
        });
        self.iteration += 1;
    }

    /// Per-iteration records accumulated so far.
    pub fn log(&self) -> &[IterationRecord] {
        &self.log
    }

    /// Number of iterations recorded.
    pub fn iterations(&self) -> u32 {
        self.iteration
    }

    /// Packages the counters into a [`Timing`] given a measured duration
    /// (primitives time their own enact loop).
    pub fn timing(&self, elapsed: std::time::Duration) -> Timing {
        Timing { elapsed, edges_examined: self.ctx.counters.edges() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::AcceptAll;
    use gunrock_engine::bitmap::AtomicBitmap;
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    fn enactor_runs_a_simple_bfs_like_loop() {
        // path 0-1-2-3-4
        let g =
            GraphBuilder::new().build(Coo::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]));
        let ctx = Context::new(&g);
        let mut enactor = Enactor::new(ctx);
        let visited = AtomicBitmap::new(5);
        visited.set(0);
        let mut frontier = Frontier::single(0);
        while !frontier.is_empty() {
            let raw = enactor.advance(&frontier, AdvanceSpec::v2v(), &AcceptAll);
            let next = enactor.filter_with_culling(
                &raw,
                &visited,
                &crate::functor::VertexCond(|_| true),
                CullingConfig::default(),
            );
            enactor.record_iteration(frontier.len(), next.len(), TraversalDirection::Push);
            frontier = next;
        }
        assert_eq!(visited.count_ones(), 5);
        assert_eq!(enactor.iterations(), 5); // 4 discovery levels + final empty
        assert_eq!(enactor.log()[0].output_len, 1);
        assert!(enactor.ctx.counters.edges() > 0);
    }
}
