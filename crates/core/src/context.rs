//! Execution context shared by all operators: graph views, engine
//! configuration, and work counters. The analog of Gunrock's per-problem
//! `GraphSlice` + kernel launch settings.

use crate::error::GunrockError;
use crate::policy::{CheckpointPolicy, RetryPolicy, RunGuard, RunPolicy};
use gunrock_engine::budget::MemoryBudget;
use gunrock_engine::checkpoint::Checkpoint;
use gunrock_engine::config::EngineConfig;
use gunrock_engine::faults::{FaultInjector, FaultKind};
use gunrock_engine::frontier::Frontier;
use gunrock_engine::pool::BufferPool;
use gunrock_engine::stats::{RecoveryKind, RunOutcome, RunStats, StatsSink, WorkCounters};
use gunrock_engine::watchdog::Heartbeat;
use gunrock_graph::Csr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Everything an operator needs to run: the forward CSR, an optional
/// reverse CSR (CSC) for pull-based traversal, engine knobs, and
/// counters.
pub struct Context<'g> {
    /// Forward graph (out-edges).
    pub graph: &'g Csr,
    /// Reverse graph (in-edges); required for pull advance on directed
    /// graphs. For undirected (symmetric) graphs, pass the forward graph.
    pub reverse: Option<&'g Csr>,
    /// Engine configuration (warp/CTA sizes, LB threshold).
    pub config: EngineConfig,
    /// Work counters accumulated across all operators.
    pub counters: WorkCounters,
    /// Execution bounds every enact loop honors (default: unbounded).
    pub policy: RunPolicy,
    /// Retry bounds for recoverable operator failures (default: fall
    /// back immediately, no retries).
    pub retry: RetryPolicy,
    /// Optional per-operator instrumentation sink. `None` (the default)
    /// keeps operators on the fast path: one `Option` check, no timers.
    sink: Option<StatsSink>,
    /// Size-classed scratch/frontier buffer pool (the zero-allocation
    /// advance path): operators check out degree/offset/output buffers
    /// here instead of allocating per iteration, and enact loops recycle
    /// retired frontiers through [`Context::recycle`]. Behind an `Arc`
    /// so a serving layer can share one pool across many per-request
    /// contexts ([`Context::with_shared_pool`]); single-run contexts own
    /// a private pool.
    pool: Arc<BufferPool>,
    /// Optional iteration-boundary checkpointing.
    checkpoints: Option<CheckpointPolicy>,
    /// Optional deterministic fault injector (chaos testing).
    injector: Option<Arc<FaultInjector>>,
    /// Optional watchdog heartbeat: ticked at every operator entry and
    /// iteration boundary so an external reaper can tell a slow job from
    /// a wedged one.
    heartbeat: Option<Arc<Heartbeat>>,
    /// Degradation-ladder rungs taken this run. Counted even without a
    /// stats sink so a serving layer can cheaply bump its `degraded`
    /// metric; the full per-event trace additionally lands in the sink
    /// when one is installed.
    degrades: AtomicU64,
    /// Set when an operator failed; once poisoned, every guard check
    /// returns [`RunOutcome::Failed`] so the enact loop stops at the
    /// next operator boundary and the partial state is never read as a
    /// complete result.
    poisoned: AtomicBool,
    /// The first failure that poisoned the run.
    failure: Mutex<Option<GunrockError>>,
    /// Wall-clock deadline armed by [`Context::guard`], checked by
    /// long-running operators *between batches* together with the cancel
    /// flag via [`Context::abort_requested`]. An aborted operator
    /// returns a truncated (partial) output; the enact loop's next guard
    /// check reports the trip and discards it, so frontier state handed
    /// to the caller is never half-updated.
    deadline: Mutex<Option<Instant>>,
}

impl<'g> Context<'g> {
    /// Context over a forward graph with default configuration.
    pub fn new(graph: &'g Csr) -> Self {
        Context {
            graph,
            reverse: None,
            config: EngineConfig::default(),
            counters: WorkCounters::new(),
            policy: RunPolicy::default(),
            retry: RetryPolicy::default(),
            sink: None,
            pool: Arc::new(BufferPool::new()),
            checkpoints: None,
            injector: None,
            heartbeat: None,
            degrades: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            failure: Mutex::new(None),
            deadline: Mutex::new(None),
        }
    }

    /// Attaches a reverse graph enabling pull traversal. For symmetric
    /// graphs the forward graph doubles as its own reverse.
    pub fn with_reverse(mut self, reverse: &'g Csr) -> Self {
        self.reverse = Some(reverse);
        self
    }

    /// Overrides engine configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches execution bounds (iteration cap, wall-clock budget,
    /// cancel flag) that every primitive's enact loop will honor.
    pub fn with_policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a [`StatsSink`]: every subsequent operator call records a
    /// timed `StepRecord`, retrievable with [`Context::run_stats`].
    pub fn with_stats(mut self) -> Self {
        self.sink = Some(StatsSink::new());
        self
    }

    /// Sets the retry bounds for recoverable operator failures.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables iteration-boundary checkpointing per `policy`.
    pub fn with_checkpoints(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoints = Some(policy);
        self
    }

    /// Installs a deterministic fault injector: operators will consult
    /// it for injected panics and simulated allocation failures. The
    /// context's *private* pool also picks it up for the `pool:alloc`
    /// site; a pool installed later via [`Self::with_shared_pool`]
    /// carries (or omits) its own injector.
    pub fn with_faults(mut self, injector: Arc<FaultInjector>) -> Self {
        if let Some(pool) = Arc::get_mut(&mut self.pool) {
            pool.install_injector(Arc::clone(&injector));
        }
        self.injector = Some(injector);
        self
    }

    /// Caps outstanding pool bytes at `budget`'s limit. Installs onto
    /// the context's *private* pool: a denied checkout surfaces as a
    /// structured [`GunrockError::BudgetExceeded`] instead of an
    /// allocator abort, and enact loops probe the budget's headroom to
    /// degrade to leaner strategies before hitting the wall. A pool
    /// installed later via [`Self::with_shared_pool`] carries its own
    /// budget (built with `BufferPool::with_budget`).
    pub fn with_budget(mut self, budget: Arc<MemoryBudget>) -> Self {
        if let Some(pool) = Arc::get_mut(&mut self.pool) {
            pool.install_budget(budget);
        }
        self
    }

    /// Attaches a watchdog heartbeat: the context ticks it at every
    /// operator entry and iteration boundary, and honors its kill flag
    /// as an abort request.
    pub fn with_heartbeat(mut self, heartbeat: Arc<Heartbeat>) -> Self {
        self.heartbeat = Some(heartbeat);
        self
    }

    /// Shares an existing buffer pool instead of owning a private one.
    /// A long-lived service builds one pool at startup and hands it to
    /// every per-request context, so steady-state requests recycle each
    /// other's buffers instead of growing fresh pools.
    pub fn with_shared_pool(mut self, pool: Arc<BufferPool>) -> Self {
        self.pool = pool;
        self
    }

    /// The instrumentation sink, if one is installed.
    #[inline]
    pub fn sink(&self) -> Option<&StatsSink> {
        self.sink.as_ref()
    }

    /// The context's buffer pool. Operators use it for scratch and
    /// output buffers; benchmarks read its stats.
    #[inline]
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// The memory budget charged by this context's pool, if any.
    #[inline]
    pub fn budget(&self) -> Option<&Arc<MemoryBudget>> {
        self.pool.budget()
    }

    /// The watchdog heartbeat, if one is attached.
    #[inline]
    pub fn heartbeat(&self) -> Option<&Arc<Heartbeat>> {
        self.heartbeat.as_ref()
    }

    /// Ticks the watchdog heartbeat (no-op without one). Called at
    /// operator entry and iteration boundaries; operators with long
    /// internal chunk loops may also tick between batches.
    #[inline]
    pub fn tick_heartbeat(&self) {
        if let Some(hb) = &self.heartbeat {
            hb.tick();
        }
    }

    /// True once the watchdog has escalated this job from stalled to
    /// killed. Folded into [`Self::abort_requested`].
    #[inline]
    pub fn watchdog_killed(&self) -> bool {
        self.heartbeat.as_ref().is_some_and(|hb| hb.is_killed())
    }

    /// Records one degradation-ladder rung: bumps the always-on degrade
    /// counter and, when instrumented, appends the full
    /// [`gunrock_engine::stats::DegradeEvent`] to the trace.
    pub fn record_degrade(
        &self,
        operator: &'static str,
        from: &'static str,
        to: &'static str,
        reason: String,
    ) {
        // ORDERING: Relaxed — monotonic telemetry counter.
        self.degrades.fetch_add(1, Ordering::Relaxed);
        if let Some(sink) = &self.sink {
            sink.record_degrade(operator, from, to, reason);
        }
    }

    /// Degradation-ladder rungs taken so far this run (counted with or
    /// without a stats sink).
    #[inline]
    pub fn degrade_count(&self) -> u64 {
        // ORDERING: Relaxed — monotonic telemetry counter.
        self.degrades.load(Ordering::Relaxed)
    }

    /// Returns a retired frontier's storage to the pool so the next
    /// advance reuses it (ping-pong double buffering in enact loops):
    /// `ctx.recycle(std::mem::replace(&mut frontier, next))`.
    #[inline]
    pub fn recycle(&self, f: Frontier) {
        self.pool.put_u32(f.into_vec());
    }

    /// Marks the end of one bulk-synchronous iteration: bumps the global
    /// iteration counters and (when instrumented) the sink's iteration
    /// stamp. Operators call this instead of touching the counters
    /// directly so the trace and the counters can't drift apart.
    #[inline]
    pub fn end_iteration(&self, pull: bool) {
        self.counters.add_iteration(pull);
        self.tick_heartbeat();
        if let Some(sink) = &self.sink {
            sink.next_iteration();
        }
    }

    /// Snapshot of the recorded trace; empty when no sink is installed.
    pub fn run_stats(&self) -> RunStats {
        self.sink.as_ref().map(StatsSink::snapshot).unwrap_or_default()
    }

    /// Arms a guard for one enactment, starting its wall clock.
    /// Primitives call this once before their loop and check the guard
    /// at the top of every bulk-synchronous step. The returned
    /// [`ContextGuard`] layers poison detection over the plain
    /// [`RunGuard`]: once an operator has failed, every check returns
    /// [`RunOutcome::Failed`].
    ///
    /// Arming also publishes the wall-clock deadline so long-running
    /// operators can honor the budget *between batches* via
    /// [`Context::deadline_exceeded`], not just at iteration tops.
    pub fn guard(&self) -> ContextGuard<'_> {
        let inner = self.policy.guard();
        if let Ok(mut slot) = self.deadline.lock() {
            *slot = self.policy.wall_clock_budget.map(|budget| Instant::now() + budget);
        }
        ContextGuard { inner, poisoned: &self.poisoned }
    }

    /// True when the wall-clock budget armed by the current enactment
    /// has been exceeded. Checked by the load-balanced advance between
    /// batches so one huge advance cannot blow far past `--timeout-ms`.
    pub fn deadline_exceeded(&self) -> bool {
        match self.deadline.lock() {
            Ok(slot) => slot.map(|d| Instant::now() >= d).unwrap_or(false),
            Err(_) => false,
        }
    }

    /// True when the policy's cooperative cancel flag has been raised.
    pub fn cancel_requested(&self) -> bool {
        // ORDERING: Acquire — pairs with the canceller's Release store; any
        // state it published before raising the flag is visible here.
        self.policy.cancel.as_ref().map(|f| f.load(Ordering::Acquire)).unwrap_or(false)
    }

    /// True when the current enactment should stop as soon as possible:
    /// the cancel flag is raised or the armed deadline has passed.
    /// Long-running operators poll this inside their chunk loops (pull
    /// advance, culling filter, load-balanced push batches) and bail out
    /// with a truncated output; the operator's partial result is then
    /// discarded when the enact loop's guard reports `Cancelled` /
    /// `TimedOut` at the next boundary. Without these mid-operator
    /// checks, an abort on a bulk graph could overshoot by a whole
    /// operator launch.
    #[inline]
    pub fn abort_requested(&self) -> bool {
        self.cancel_requested() || self.deadline_exceeded() || self.watchdog_killed()
    }

    /// True when an operator may *truncate* its output in response to
    /// [`Self::abort_requested`]. Truncation drops frontier items on the
    /// floor, which is fine for a run that is about to throw its state
    /// away — but a run with a checkpoint policy has promised resumable
    /// iteration-boundary snapshots, and a truncated operator would make
    /// every later boundary inconsistent (the dropped items exist in no
    /// frontier, so a resumed run would silently never visit them).
    /// With checkpointing active, operators run to completion and the
    /// abort lands at the next boundary instead: drain latency is traded
    /// for snapshot soundness.
    #[inline]
    pub fn abort_mid_operator(&self) -> bool {
        self.checkpoints.is_none() && self.abort_requested()
    }

    /// The fault injector, if one is installed.
    #[inline]
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_deref()
    }

    /// The checkpoint policy, if checkpointing is enabled.
    pub fn checkpoint_policy(&self) -> Option<&CheckpointPolicy> {
        self.checkpoints.as_ref()
    }

    /// True when a periodic checkpoint is due after `completed`
    /// iterations. One branch when checkpointing is disabled.
    #[inline]
    pub fn checkpoint_due(&self, completed: u32) -> bool {
        self.checkpoints.as_ref().map(|p| p.due(completed)).unwrap_or(false)
    }

    /// Writes `ckpt` into the checkpoint directory (created on demand)
    /// as `<primitive>.ckpt`, atomically. A write failure never kills
    /// the run: it is recorded as a `checkpoint-failed` RecoveryEvent
    /// (when instrumented) and the enactment continues.
    ///
    /// With an io fault plan installed, the injector site
    /// `checkpoint:rename` simulates a process crash *between* the
    /// tmp-file fsync and the atomic rename — the window the tmp+rename
    /// protocol exists for. The previous snapshot survives untouched,
    /// so resumability is never lost to a crashed save.
    pub fn save_checkpoint(&self, ckpt: &Checkpoint) {
        let Some(policy) = &self.checkpoints else { return };
        let path = policy.path(ckpt.primitive());
        let crash_at_rename = self
            .injector()
            .is_some_and(|inj| inj.should_fail(FaultKind::Io, "checkpoint:rename"));
        let result = std::fs::create_dir_all(&policy.dir)
            .map_err(gunrock_engine::checkpoint::CheckpointError::Io)
            .and_then(|()| {
                if crash_at_rename {
                    ckpt.save_crash_before_rename(&path)
                } else {
                    ckpt.save(&path)
                }
            });
        if let Err(e) = result {
            if let Some(sink) = self.sink() {
                sink.record_recovery(
                    "checkpoint",
                    RecoveryKind::CheckpointFailed,
                    "checkpoint",
                    "none",
                    format!("checkpoint write to {} failed: {e}", path.display()),
                );
            }
        }
    }

    /// Poisons the run with `err`: the first failure wins, subsequent
    /// ones are dropped. Every later guard check returns
    /// [`RunOutcome::Failed`].
    pub fn poison(&self, err: GunrockError) {
        if let Ok(mut slot) = self.failure.lock() {
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        // ORDERING: Release — publishes the failure slot written above to any
        // thread that Acquire-loads the flag (is_poisoned / guard checks).
        self.poisoned.store(true, Ordering::Release);
    }

    /// Runs an enact-loop *setup* step — pooled checkouts that happen
    /// between operators, like rebuilding a visited bitmap or
    /// densifying a pull frontier — under the same panic isolation as
    /// operator entry points. A pool denial (a real budget denial or an
    /// injected `pool-alloc` fault) poisons the context and returns
    /// `None`; the caller skips the dependent work and the run ends
    /// `Failed` instead of the panic escaping the enactor.
    pub fn isolated_setup<T>(
        &self,
        operator: &'static str,
        body: impl FnOnce() -> T,
    ) -> Option<T> {
        crate::isolate::isolated(self, operator, body)
    }

    /// True once an operator failure has poisoned this context.
    #[inline]
    pub fn is_poisoned(&self) -> bool {
        // ORDERING: Acquire — pairs with the Release store in poison(); observing
        // the flag guarantees the failure slot write is visible too.
        self.poisoned.load(Ordering::Acquire)
    }

    /// Removes and returns the failure that poisoned the run, if any.
    /// The poisoned flag stays set: the partial state is still invalid.
    pub fn take_failure(&self) -> Option<GunrockError> {
        match self.failure.lock() {
            Ok(mut slot) => slot.take(),
            Err(poisoned) => poisoned.into_inner().take(),
        }
    }

    /// The reverse graph, panicking with a clear message if missing.
    pub fn reverse_graph(&self) -> &'g Csr {
        // LINT-ALLOW(panic): documented API contract — calling a pull-direction
        // operator without with_reverse() is a programming error, not a
        // recoverable condition.
        self.reverse.expect("pull advance requires a reverse graph: call Context::with_reverse")
    }

    /// Number of vertices in the forward graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of directed edges in the forward graph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

/// One enactment's armed guard: the plain [`RunGuard`] bounds plus the
/// context's poison flag. Once an operator has failed, every check
/// returns [`RunOutcome::Failed`] — ahead of cancel/timeout/cap — so the
/// enact loop stops at the next operator boundary.
pub struct ContextGuard<'c> {
    inner: RunGuard<'c>,
    poisoned: &'c AtomicBool,
}

impl ContextGuard<'_> {
    /// Returns the outcome that should end the loop, if any. Priority:
    /// `Failed` > `Cancelled` > `TimedOut` > `IterationCapped`.
    pub fn check(&self, completed_iterations: u32) -> Option<RunOutcome> {
        // ORDERING: Acquire — pairs with poison()'s Release store so a guard that
        // sees the flag also sees the failure slot it protects.
        if self.poisoned.load(Ordering::Acquire) {
            return Some(RunOutcome::Failed);
        }
        self.inner.check(completed_iterations)
    }

    /// Wall time since the guard was armed.
    pub fn elapsed(&self) -> std::time::Duration {
        self.inner.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    fn context_builders() {
        let g = GraphBuilder::new().build(Coo::from_edges(3, &[(0, 1), (1, 2)]));
        let ctx = Context::new(&g).with_reverse(&g);
        assert_eq!(ctx.num_vertices(), 3);
        assert_eq!(ctx.num_edges(), 4);
        assert_eq!(ctx.reverse_graph().num_edges(), 4);
    }

    #[test]
    #[should_panic(expected = "reverse graph")]
    fn missing_reverse_panics_clearly() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        ctx.reverse_graph();
    }

    #[test]
    fn recycled_frontier_storage_comes_back_from_the_pool() {
        let g = GraphBuilder::new().build(Coo::from_edges(3, &[(0, 1), (1, 2)]));
        let ctx = Context::new(&g);
        let mut f = Frontier::from_vec(ctx.pool.take_u32(100));
        f.push(7);
        let cap = f.as_slice().as_ptr() as usize;
        ctx.recycle(f);
        let back = ctx.pool.take_u32(100);
        assert_eq!(back.as_ptr() as usize, cap, "same storage reused");
        assert!(back.is_empty(), "recycled frontiers come back cleared");
        assert_eq!(ctx.pool.stats().allocations, 1);
    }

    #[test]
    fn poison_trumps_other_guards_and_is_first_error_wins() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g).with_policy(RunPolicy::unbounded().max_iterations(0));
        let guard = ctx.guard();
        assert_eq!(guard.check(5), Some(RunOutcome::IterationCapped));
        ctx.poison(GunrockError::OperatorPanic {
            operator: "advance",
            iteration: 2,
            payload: "first".into(),
        });
        ctx.poison(GunrockError::AllocFailed { operator: "filter", iteration: 3 });
        assert!(ctx.is_poisoned());
        assert_eq!(guard.check(5), Some(RunOutcome::Failed));
        match ctx.take_failure() {
            Some(GunrockError::OperatorPanic { payload, .. }) => assert_eq!(payload, "first"),
            other => panic!("expected the first error to win, got {other:?}"),
        }
        // taking the failure does not clear the poison
        assert!(ctx.is_poisoned());
        assert!(ctx.take_failure().is_none());
    }

    #[test]
    fn deadline_tracks_wall_clock_budget_only() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        let _guard = ctx.guard();
        assert!(!ctx.deadline_exceeded(), "no budget: never exceeded");

        let flag = Arc::new(AtomicBool::new(true));
        let ctx = Context::new(&g).with_policy(
            RunPolicy::unbounded()
                .wall_clock_budget(std::time::Duration::ZERO)
                .cancel_flag(flag),
        );
        assert!(!ctx.deadline_exceeded(), "deadline is armed only by guard()");
        let _guard = ctx.guard();
        assert!(ctx.deadline_exceeded(), "zero budget exceeded immediately");
    }

    #[test]
    fn abort_reflects_cancel_flag_and_deadline() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let flag = Arc::new(AtomicBool::new(false));
        let ctx =
            Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
        assert!(!ctx.abort_requested());
        flag.store(true, Ordering::Release);
        assert!(ctx.cancel_requested());
        assert!(ctx.abort_requested(), "cancel raises abort even with no deadline armed");
        assert!(!ctx.deadline_exceeded(), "deadline side stays independent of cancel");

        let ctx = Context::new(&g)
            .with_policy(RunPolicy::unbounded().wall_clock_budget(std::time::Duration::ZERO));
        assert!(!ctx.abort_requested(), "deadline arms only once guard() runs");
        let _guard = ctx.guard();
        assert!(ctx.abort_requested(), "expired deadline raises abort");
        assert!(!ctx.cancel_requested());
    }

    #[test]
    fn shared_pool_is_visible_across_contexts() {
        let g = GraphBuilder::new().build(Coo::from_edges(3, &[(0, 1), (1, 2)]));
        let pool = Arc::new(gunrock_engine::pool::BufferPool::new());
        let a = Context::new(&g).with_shared_pool(Arc::clone(&pool));
        let b = Context::new(&g).with_shared_pool(Arc::clone(&pool));
        let buf = a.pool().take_u32(64);
        let ptr = buf.as_ptr() as usize;
        a.pool().put_u32(buf);
        // the second context draws the very storage the first released
        let again = b.pool().take_u32(64);
        assert_eq!(again.as_ptr() as usize, ptr);
        assert_eq!(pool.stats().allocations, 1, "one allocation served both contexts");
    }

    #[test]
    fn budget_installs_on_the_private_pool() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let budget = Arc::new(MemoryBudget::new(64 * 4));
        let ctx = Context::new(&g).with_budget(Arc::clone(&budget));
        assert!(ctx.budget().is_some());
        assert!(ctx.pool().can_reserve(64 * 4));
        let buf = ctx.pool().take_u32(64);
        assert!(!ctx.pool().can_reserve(1), "budget saturated by the checkout");
        assert_eq!(budget.reserved(), 64 * 4);
        ctx.pool().put_u32(buf);
        assert_eq!(budget.reserved(), 0, "release refunds the budget");
    }

    #[test]
    fn heartbeat_ticks_at_boundaries_and_kill_raises_abort() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let hb = Arc::new(gunrock_engine::watchdog::Heartbeat::default());
        let ctx = Context::new(&g).with_heartbeat(Arc::clone(&hb));
        assert_eq!(hb.ticks(), 0);
        ctx.end_iteration(false);
        ctx.tick_heartbeat();
        assert_eq!(hb.ticks(), 2);
        assert!(!ctx.abort_requested());
        hb.kill();
        assert!(ctx.watchdog_killed());
        assert!(ctx.abort_requested(), "a watchdog kill is an abort request");
    }

    #[test]
    fn degrades_are_counted_without_a_sink_and_traced_with_one() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        ctx.record_degrade("advance", "load_balanced", "thread_mapped", "no headroom".into());
        assert_eq!(ctx.degrade_count(), 1);
        assert!(ctx.run_stats().degrades.is_empty(), "no sink, no trace");

        let ctx = Context::new(&g).with_stats();
        ctx.record_degrade("advance", "pull", "push", "bitmaps over budget".into());
        assert_eq!(ctx.degrade_count(), 1);
        let stats = ctx.run_stats();
        assert_eq!(stats.degrades.len(), 1);
        assert_eq!(stats.degrades[0].from, "pull");
        assert_eq!(stats.degrades[0].to, "push");
    }

    #[test]
    fn checkpoint_due_and_save_without_policy_are_noops() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        assert!(!ctx.checkpoint_due(4));
        assert!(ctx.checkpoint_policy().is_none());
        // no policy: save is a no-op, nothing written anywhere
        ctx.save_checkpoint(&Checkpoint::new("bfs", 1));

        let dir = std::env::temp_dir().join(format!("gunrock-ctx-ckpt-{}", std::process::id()));
        let ctx =
            Context::new(&g).with_checkpoints(crate::policy::CheckpointPolicy::new(2, &dir));
        assert!(!ctx.checkpoint_due(1));
        assert!(ctx.checkpoint_due(2));
        let mut ckpt = Checkpoint::new("bfs", 2);
        ckpt.push_u32("labels", vec![0, 1]);
        ctx.save_checkpoint(&ckpt);
        let loaded = Checkpoint::load(&dir.join("bfs.ckpt")).expect("saved checkpoint loads");
        assert_eq!(loaded.iteration(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_checkpoint_write_records_recovery_and_keeps_running() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        // A file (not a directory) as the checkpoint dir forces the write
        // to fail while create_dir_all/save stay on normal code paths.
        let bogus =
            std::env::temp_dir().join(format!("gunrock-ctx-ckpt-file-{}", std::process::id()));
        std::fs::write(&bogus, b"not a directory").expect("temp file");
        let ctx = Context::new(&g)
            .with_stats()
            .with_checkpoints(crate::policy::CheckpointPolicy::new(1, &bogus));
        ctx.save_checkpoint(&Checkpoint::new("bfs", 1));
        assert!(!ctx.is_poisoned(), "checkpoint failure must not poison the run");
        let stats = ctx.run_stats();
        assert_eq!(stats.recoveries.len(), 1);
        assert_eq!(stats.recoveries[0].kind, RecoveryKind::CheckpointFailed);
        let _ = std::fs::remove_file(&bogus);
    }
}
