//! Execution context shared by all operators: graph views, engine
//! configuration, and work counters. The analog of Gunrock's per-problem
//! `GraphSlice` + kernel launch settings.

use crate::policy::{RunGuard, RunPolicy};
use gunrock_engine::config::EngineConfig;
use gunrock_engine::stats::{RunStats, StatsSink, WorkCounters};
use gunrock_graph::Csr;

/// Everything an operator needs to run: the forward CSR, an optional
/// reverse CSR (CSC) for pull-based traversal, engine knobs, and
/// counters.
pub struct Context<'g> {
    /// Forward graph (out-edges).
    pub graph: &'g Csr,
    /// Reverse graph (in-edges); required for pull advance on directed
    /// graphs. For undirected (symmetric) graphs, pass the forward graph.
    pub reverse: Option<&'g Csr>,
    /// Engine configuration (warp/CTA sizes, LB threshold).
    pub config: EngineConfig,
    /// Work counters accumulated across all operators.
    pub counters: WorkCounters,
    /// Execution bounds every enact loop honors (default: unbounded).
    pub policy: RunPolicy,
    /// Optional per-operator instrumentation sink. `None` (the default)
    /// keeps operators on the fast path: one `Option` check, no timers.
    sink: Option<StatsSink>,
}

impl<'g> Context<'g> {
    /// Context over a forward graph with default configuration.
    pub fn new(graph: &'g Csr) -> Self {
        Context {
            graph,
            reverse: None,
            config: EngineConfig::default(),
            counters: WorkCounters::new(),
            policy: RunPolicy::default(),
            sink: None,
        }
    }

    /// Attaches a reverse graph enabling pull traversal. For symmetric
    /// graphs the forward graph doubles as its own reverse.
    pub fn with_reverse(mut self, reverse: &'g Csr) -> Self {
        self.reverse = Some(reverse);
        self
    }

    /// Overrides engine configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches execution bounds (iteration cap, wall-clock budget,
    /// cancel flag) that every primitive's enact loop will honor.
    pub fn with_policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Installs a [`StatsSink`]: every subsequent operator call records a
    /// timed `StepRecord`, retrievable with [`Context::run_stats`].
    pub fn with_stats(mut self) -> Self {
        self.sink = Some(StatsSink::new());
        self
    }

    /// The instrumentation sink, if one is installed.
    #[inline]
    pub fn sink(&self) -> Option<&StatsSink> {
        self.sink.as_ref()
    }

    /// Marks the end of one bulk-synchronous iteration: bumps the global
    /// iteration counters and (when instrumented) the sink's iteration
    /// stamp. Operators call this instead of touching the counters
    /// directly so the trace and the counters can't drift apart.
    #[inline]
    pub fn end_iteration(&self, pull: bool) {
        self.counters.add_iteration(pull);
        if let Some(sink) = &self.sink {
            sink.next_iteration();
        }
    }

    /// Snapshot of the recorded trace; empty when no sink is installed.
    pub fn run_stats(&self) -> RunStats {
        self.sink.as_ref().map(StatsSink::snapshot).unwrap_or_default()
    }

    /// Arms a [`RunGuard`] for one enactment, starting its wall clock.
    /// Primitives call this once before their loop and check the guard
    /// at the top of every bulk-synchronous step.
    pub fn guard(&self) -> RunGuard<'_> {
        self.policy.guard()
    }

    /// The reverse graph, panicking with a clear message if missing.
    pub fn reverse_graph(&self) -> &'g Csr {
        self.reverse.expect("pull advance requires a reverse graph: call Context::with_reverse")
    }

    /// Number of vertices in the forward graph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of directed edges in the forward graph.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    fn context_builders() {
        let g = GraphBuilder::new().build(Coo::from_edges(3, &[(0, 1), (1, 2)]));
        let ctx = Context::new(&g).with_reverse(&g);
        assert_eq!(ctx.num_vertices(), 3);
        assert_eq!(ctx.num_edges(), 4);
        assert_eq!(ctx.reverse_graph().num_edges(), 4);
    }

    #[test]
    #[should_panic(expected = "reverse graph")]
    fn missing_reverse_panics_clearly() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        ctx.reverse_graph();
    }
}
