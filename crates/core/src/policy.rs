//! Execution guards for enact loops.
//!
//! The paper defines a primitive as iterating "until convergence" — fine
//! for a benchmark harness, unacceptable for a served system where a
//! malformed graph, a divergent PageRank, or a stuck partition must not
//! stall the process. A [`RunPolicy`] carried by the
//! [`Context`](crate::context::Context) bounds every enact loop three
//! ways — an iteration cap, a wall-clock budget, and a cooperative
//! cancel flag — and each primitive reports which guard (if any) ended
//! its run as a [`RunOutcome`] alongside best-so-far results.

use gunrock_engine::stats::RunOutcome;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bounds on operator-level retries when a recoverable failure (a
/// pre-side-effect allocation/scan failure in a `load_balanced` advance)
/// is hit: retry the same strategy up to `max_retries` times with
/// `backoff` between attempts, then fall back to the always-safe
/// `thread_mapped` strategy. The default retries zero times (fall back
/// immediately).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Same-strategy retry attempts before falling back.
    pub max_retries: u32,
    /// Sleep between attempts (simulating allocator pressure relief).
    pub backoff: Duration,
}

impl RetryPolicy {
    /// Retry `max_retries` times with no backoff.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy { max_retries, backoff: Duration::ZERO }
    }

    /// Sets the inter-attempt backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// Iteration-boundary checkpointing: every `every` completed iterations
/// the enact loop snapshots frontier + problem state into
/// `dir/<primitive>.ckpt` (atomically, `gunrock-ckpt/v1`). A guard trip
/// (timeout, cancel, iteration cap) also snapshots on the way out, so an
/// interrupted run always leaves a resumable checkpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Checkpoint period in completed iterations (0 disables periodic
    /// snapshots; the exit snapshot still happens).
    pub every: u32,
    /// Directory checkpoints are written into (created on demand).
    pub dir: PathBuf,
}

impl CheckpointPolicy {
    /// Checkpoint every `every` iterations into `dir`.
    pub fn new(every: u32, dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { every, dir: dir.into() }
    }

    /// True when a periodic snapshot is due after `completed` iterations.
    pub fn due(&self, completed: u32) -> bool {
        self.every > 0 && completed > 0 && completed.is_multiple_of(self.every)
    }

    /// The checkpoint file path for one primitive.
    pub fn path(&self, primitive: &str) -> PathBuf {
        self.dir.join(format!("{primitive}.ckpt"))
    }
}

/// Bounds on a primitive's enact loop. The default is unbounded (the
/// paper's run-to-convergence semantics); each bound is independent and
/// the tightest one wins.
#[derive(Clone, Debug, Default)]
pub struct RunPolicy {
    /// Maximum bulk-synchronous iterations to execute.
    pub max_iterations: Option<u32>,
    /// Maximum wall-clock time for the whole enactment.
    pub wall_clock_budget: Option<Duration>,
    /// Cooperative cancellation: set from another thread (a signal
    /// handler, a request timeout) to stop the run at the next step.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl RunPolicy {
    /// The unbounded policy (run to convergence).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Caps the number of bulk-synchronous iterations.
    pub fn max_iterations(mut self, cap: u32) -> Self {
        self.max_iterations = Some(cap);
        self
    }

    /// Bounds total wall-clock time.
    pub fn wall_clock_budget(mut self, budget: Duration) -> Self {
        self.wall_clock_budget = Some(budget);
        self
    }

    /// Attaches a cancellation flag checked each step.
    pub fn cancel_flag(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when no bound is set (the guard can never trip).
    pub fn is_unbounded(&self) -> bool {
        self.max_iterations.is_none()
            && self.wall_clock_budget.is_none()
            && self.cancel.is_none()
    }

    /// Arms a guard for one enactment, starting the wall clock now.
    pub fn guard(&self) -> RunGuard<'_> {
        RunGuard { policy: self, start: Instant::now() }
    }
}

/// One enactment's armed guard: a [`RunPolicy`] plus the loop's start
/// time. Check it at the top of every bulk-synchronous step.
pub struct RunGuard<'p> {
    policy: &'p RunPolicy,
    start: Instant,
}

impl RunGuard<'_> {
    /// Returns the outcome that should end the loop, if any guard has
    /// tripped after `completed_iterations` steps. Priority when several
    /// trip at once: `Cancelled` > `TimedOut` > `IterationCapped` (the
    /// most externally-driven signal wins).
    pub fn check(&self, completed_iterations: u32) -> Option<RunOutcome> {
        if let Some(flag) = &self.policy.cancel {
            // ORDERING: Acquire — the canceller may publish state before raising the
            // flag; Acquire makes that state visible to the cancelled loop.
            if flag.load(Ordering::Acquire) {
                return Some(RunOutcome::Cancelled);
            }
        }
        if let Some(budget) = self.policy.wall_clock_budget {
            if self.start.elapsed() >= budget {
                return Some(RunOutcome::TimedOut);
            }
        }
        if let Some(cap) = self.policy.max_iterations {
            if completed_iterations >= cap {
                return Some(RunOutcome::IterationCapped);
            }
        }
        None
    }

    /// Wall time since the guard was armed.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_trips() {
        let policy = RunPolicy::unbounded();
        assert!(policy.is_unbounded());
        let guard = policy.guard();
        assert_eq!(guard.check(0), None);
        assert_eq!(guard.check(u32::MAX), None);
    }

    #[test]
    fn iteration_cap_trips_at_cap() {
        let policy = RunPolicy::unbounded().max_iterations(3);
        let guard = policy.guard();
        assert_eq!(guard.check(2), None);
        assert_eq!(guard.check(3), Some(RunOutcome::IterationCapped));
        assert_eq!(guard.check(10), Some(RunOutcome::IterationCapped));
    }

    #[test]
    fn zero_budget_times_out_immediately() {
        let policy = RunPolicy::unbounded().wall_clock_budget(Duration::ZERO);
        let guard = policy.guard();
        assert_eq!(guard.check(0), Some(RunOutcome::TimedOut));
    }

    #[test]
    fn retry_policy_builders() {
        let p = RetryPolicy::retries(3).with_backoff(Duration::from_millis(2));
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.backoff, Duration::from_millis(2));
        assert_eq!(RetryPolicy::default().max_retries, 0);
    }

    #[test]
    fn checkpoint_policy_period_and_paths() {
        let p = CheckpointPolicy::new(3, "/tmp/ckpts");
        assert!(!p.due(0), "iteration 0 is the initial state, not progress");
        assert!(!p.due(2));
        assert!(p.due(3));
        assert!(p.due(6));
        assert_eq!(p.path("bfs"), PathBuf::from("/tmp/ckpts/bfs.ckpt"));
        let off = CheckpointPolicy::new(0, "/tmp/ckpts");
        assert!(!off.due(5), "every=0 disables periodic snapshots");
    }

    #[test]
    fn cancel_flag_trips_and_outranks_other_guards() {
        let flag = Arc::new(AtomicBool::new(false));
        let policy = RunPolicy::unbounded()
            .cancel_flag(flag.clone())
            .max_iterations(0)
            .wall_clock_budget(Duration::ZERO);
        let guard = policy.guard();
        // cancel not set: time budget outranks the iteration cap
        assert_eq!(guard.check(5), Some(RunOutcome::TimedOut));
        flag.store(true, Ordering::Release);
        assert_eq!(guard.check(5), Some(RunOutcome::Cancelled));
    }
}
