//! Direction-optimizing traversal policy (Beamer et al., adopted by
//! Gunrock in §4.1.1).
//!
//! Push is cheap while the frontier is small; once the frontier's
//! outgoing edge count rivals the edges left to the unvisited set, pull
//! wins because most pushes would land on already-visited vertices. The
//! classic two-threshold hysteresis: switch push -> pull when
//! `m_f > m_u / alpha`, and pull -> push when `n_f < n / beta`.
//!
//! The paper reports this optimization gives a geomean speedup of 1.52 on
//! scale-free graphs and 1.28 on road-like graphs (reproduced by the
//! `fig_pushpull` bench binary).

/// Current traversal direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraversalDirection {
    /// Expand frontier out-edges ("scatter").
    Push,
    /// Unvisited vertices scan in-edges against the frontier ("gather").
    Pull,
}

/// Tunable direction-switch policy with Beamer's default thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DirectionPolicy {
    /// Push -> pull when frontier edges exceed `unvisited_edges / alpha`.
    pub alpha: f64,
    /// Pull -> push when frontier vertices drop below `n / beta`.
    pub beta: f64,
}

impl Default for DirectionPolicy {
    fn default() -> Self {
        DirectionPolicy { alpha: 15.0, beta: 18.0 }
    }
}

impl DirectionPolicy {
    /// Policy that never leaves push (forced-push baseline for the
    /// push-pull ablation).
    pub fn push_only() -> Self {
        DirectionPolicy { alpha: f64::INFINITY, beta: 0.0 }
    }

    /// Decides the next iteration's direction from the current state.
    ///
    /// * `frontier_edges` — out-edges of the current frontier (`m_f`)
    /// * `unvisited_edges` — out-edges of still-unvisited vertices (`m_u`)
    /// * `frontier_vertices` — current frontier size (`n_f`)
    /// * `num_vertices` — total vertices (`n`)
    pub fn decide(
        &self,
        current: TraversalDirection,
        frontier_edges: u64,
        unvisited_edges: u64,
        frontier_vertices: usize,
        num_vertices: usize,
    ) -> TraversalDirection {
        match current {
            TraversalDirection::Push => {
                // Entering pull requires both triggers: the frontier's
                // edges rival the unvisited edges (Beamer's alpha test)
                // AND the frontier is big enough that it would not bounce
                // straight back under the beta test. Without the second
                // condition, high-diameter graphs whose unvisited set
                // drains slowly re-enter pull at every tail level and pay
                // the full unvisited scan repeatedly for one level of
                // discovery.
                if self.alpha.is_finite()
                    && (frontier_edges as f64) > (unvisited_edges as f64) / self.alpha
                    && (frontier_vertices as f64) >= (num_vertices as f64) / self.beta
                {
                    TraversalDirection::Pull
                } else {
                    TraversalDirection::Push
                }
            }
            TraversalDirection::Pull => {
                if (frontier_vertices as f64) < (num_vertices as f64) / self.beta {
                    TraversalDirection::Push
                } else {
                    TraversalDirection::Pull
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TraversalDirection::{Pull, Push};

    #[test]
    fn stays_push_while_frontier_is_small() {
        let p = DirectionPolicy::default();
        assert_eq!(p.decide(Push, 10, 1_000_000, 5, 1000), Push);
    }

    #[test]
    fn switches_to_pull_when_frontier_edges_dominate() {
        let p = DirectionPolicy::default();
        // m_f = 200_000 > 1_000_000 / 15, and n_f = 5000 >= 10_000 / 18
        assert_eq!(p.decide(Push, 200_000, 1_000_000, 5000, 10_000), Pull);
    }

    #[test]
    fn small_frontier_never_enters_pull_even_with_edge_trigger() {
        // the tail of a high-diameter traversal: unvisited edges tiny,
        // so the alpha test fires, but the frontier itself is tiny too
        let p = DirectionPolicy::default();
        assert_eq!(p.decide(Push, 100, 200, 30, 10_000), Push);
    }

    #[test]
    fn switches_back_to_push_when_frontier_shrinks() {
        let p = DirectionPolicy::default();
        assert_eq!(p.decide(Pull, 10, 10, 10, 10_000), Push);
        // still big: stay pull
        assert_eq!(p.decide(Pull, 10, 10, 5_000, 10_000), Pull);
    }

    #[test]
    fn push_only_policy_never_pulls() {
        let p = DirectionPolicy::push_only();
        assert_eq!(p.decide(Push, u64::MAX / 2, 1, usize::MAX / 2, 1), Push);
    }
}
