//! The **advance** operator (§4.1): "generates a new frontier from the
//! current frontier by visiting the neighbors of the current frontier."
//!
//! Advance is the irregular heart of the system; this module generalizes
//! the workload-mapping strategies of §4.4 behind one entry point:
//!
//! * [`AdvanceMode::ThreadMapped`] — per-thread fine-grained: one frontier
//!   element's whole neighbor list per task. Best on large-diameter,
//!   even-degree graphs.
//! * [`AdvanceMode::Twc`] — Merrill et al.'s per-warp/per-CTA
//!   coarse-grained three-bucket specialization for skewed degrees.
//! * [`AdvanceMode::LoadBalanced`] — Davidson et al.'s equal-width edge
//!   chunks located by sorted/binary search over the scanned degree
//!   array; balanced both within and across blocks.
//! * [`AdvanceMode::Auto`] — the paper's shipped hybrid: LB when the
//!   frontier's neighbor count exceeds the runtime threshold (4096),
//!   thread-mapped otherwise.
//!
//! Pull-direction advance (§4.1.1) lives in [`pull`]; the push/pull
//! switching policy in [`policy`].

pub mod fused;
pub mod msbfs;
pub mod policy;
pub mod pull;
pub mod push;

use crate::context::Context;
use crate::functor::AdvanceFunctor;
use crate::isolate::isolated;
use gunrock_engine::budget::advance_workspace_bytes;
use gunrock_engine::faults::{FaultInjector, FaultKind};
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::{OperatorKind, RecoveryKind, StepDirection};
use gunrock_graph::VertexId;
use std::time::{Duration, Instant};

/// Emergency release for an injected stall running without a watchdog:
/// keeps a misconfigured chaos test from hanging a suite forever.
const STALL_HARD_CAP: Duration = Duration::from_secs(60);

/// Workload-mapping strategy for push advance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AdvanceMode {
    /// One frontier element per task; the element's neighbor list is
    /// processed serially by that task.
    ThreadMapped,
    /// Three degree buckets (sub-warp, warp..CTA, super-CTA) processed
    /// with per-thread, per-warp, and per-CTA cooperation respectively.
    Twc,
    /// Equal-length edge chunks over the scanned degree array.
    LoadBalanced,
    /// Hybrid: LB above `EngineConfig::lb_threshold` total neighbors,
    /// thread-mapped below (the paper's default, threshold 4096).
    #[default]
    Auto,
}

/// What the input frontier's ids denote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputKind {
    /// Frontier of vertex ids; each vertex expands its out-neighbors.
    Vertices,
    /// Frontier of edge ids; each edge expands the out-neighbors of its
    /// destination (the far endpoint), enabling the paper's 2-hop
    /// edge-frontier traversals.
    Edges,
}

/// What the output frontier's ids denote.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputKind {
    /// Collect destination vertices of successful traversals.
    Vertices,
    /// Collect edge ids of successful traversals.
    Edges,
    /// Discard output (advance run only for its functor side effects,
    /// e.g. PageRank accumulation).
    None,
}

/// Full specification of one advance step.
#[derive(Clone, Copy, Debug)]
pub struct AdvanceSpec {
    /// Workload-mapping strategy.
    pub mode: AdvanceMode,
    /// What the input frontier's ids denote.
    pub input: InputKind,
    /// What the output frontier should contain.
    pub output: OutputKind,
}

impl Default for AdvanceSpec {
    fn default() -> Self {
        AdvanceSpec {
            mode: AdvanceMode::Auto,
            input: InputKind::Vertices,
            output: OutputKind::Vertices,
        }
    }
}

impl AdvanceSpec {
    /// Vertex-to-vertex advance with the default hybrid strategy.
    pub fn v2v() -> Self {
        Self::default()
    }

    /// Vertex-to-edge advance.
    pub fn v2e() -> Self {
        AdvanceSpec { output: OutputKind::Edges, ..Self::default() }
    }

    /// Edge-to-vertex advance.
    pub fn e2v() -> Self {
        AdvanceSpec { input: InputKind::Edges, ..Self::default() }
    }

    /// Side-effect-only advance (no output frontier).
    pub fn for_effect() -> Self {
        AdvanceSpec { output: OutputKind::None, ..Self::default() }
    }

    /// Overrides the workload-mapping mode.
    pub fn with_mode(mut self, mode: AdvanceMode) -> Self {
        self.mode = mode;
        self
    }
}

/// Maps a frontier item to the vertex whose neighbor list it expands.
#[inline]
pub(crate) fn expansion_vertex(ctx: &Context<'_>, input: InputKind, item: u32) -> VertexId {
    match input {
        InputKind::Vertices => item,
        InputKind::Edges => ctx.graph.edge_dest(item),
    }
}

/// Runs one push-direction advance step: visits every out-edge of the
/// input frontier, calls the functor's `cond`/`apply` on each (fused),
/// and returns the output frontier per `spec.output`.
///
/// The step runs panic-isolated: a functor panic (or injected fault)
/// poisons the context and returns an empty frontier instead of
/// aborting; the enact loop's next guard check reports `Failed`.
pub fn advance<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    if input.is_empty() {
        return Frontier::new();
    }
    // Kernel-launch boundary for the racecheck phase ledger (no-op
    // without the feature).
    gunrock_engine::racecheck::begin_phase();
    // Near-zero-cost instrumentation: one Option check on the fast path;
    // the timer only exists when a sink is installed.
    let timer = ctx.sink().map(|_| (Instant::now(), ctx.counters.edges()));
    let result = isolated(ctx, "advance", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("advance");
            stall_if_injected(ctx, inj);
        }
        dispatch(ctx, input, spec, functor)
    });
    let Some((out, strategy)) = result else { return Frontier::new() };
    if let (Some((start, edges0)), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Advance,
            strategy,
            Some(StepDirection::Push),
            input.len() as u64,
            out.len() as u64,
            ctx.counters.edges() - edges0,
            start.elapsed(),
        );
    }
    out
}

/// The frontier's total neighbor count when it qualifies for the
/// single-threaded fast path: both the frontier length and the work
/// estimate at or below `EngineConfig::serial_threshold` (0 disables).
/// The length gate is checked first so large frontiers never pay the
/// degree-sum pass just to be told no.
fn serial_eligible(ctx: &Context<'_>, input: &Frontier, spec: AdvanceSpec) -> Option<u64> {
    let t = ctx.config.serial_threshold;
    if t == 0 || input.len() > t {
        return None;
    }
    let work = push::frontier_neighbor_count(ctx, input, spec.input);
    // CAST: u64 -> usize is lossless on 64-bit targets; threshold compare only.
    (work as usize <= t).then_some(work)
}

/// Strategy dispatch. Load-balanced selections route through the
/// retry-with-fallback guard; the other strategies run directly. The
/// ThreadMapped and Auto branches divert tiny frontiers to the serial
/// fast path — deliberately NOT ahead of the match, so an explicit
/// LoadBalanced selection still consults the fault injector and keeps
/// seeded chaos schedules stable, and Twc keeps its bucket order.
fn dispatch<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> (Frontier, &'static str) {
    match spec.mode {
        AdvanceMode::ThreadMapped => {
            if let Some(work) = serial_eligible(ctx, input, spec) {
                (push::serial(ctx, input, spec, functor, work), "serial")
            } else {
                (push::thread_mapped(ctx, input, spec, functor), "thread_mapped")
            }
        }
        AdvanceMode::Twc => (push::twc(ctx, input, spec, functor), "twc"),
        AdvanceMode::LoadBalanced => {
            run_load_balanced(ctx, input, spec, functor, "load_balanced")
        }
        AdvanceMode::Auto => {
            let work = push::frontier_neighbor_count(ctx, input, spec.input);
            // CAST: u64 -> usize is lossless on 64-bit targets; threshold compare only.
            if work as usize > ctx.config.lb_threshold {
                run_load_balanced(ctx, input, spec, functor, "auto:load_balanced")
            } else {
                let t = ctx.config.serial_threshold;
                if t > 0 && input.len() <= t && work as usize <= t {
                    (push::serial(ctx, input, spec, functor, work), "auto:serial")
                } else {
                    (push::thread_mapped(ctx, input, spec, functor), "auto:thread_mapped")
                }
            }
        }
    }
}

/// The `advance:stall` chaos site: a fault here simulates the failure
/// mode the watchdog exists for — an operator that stops making
/// progress AND is deaf to cooperative cancellation (so the cancel flag
/// the watchdog raises in its first escalation is deliberately
/// ignored). The stall releases only when the watchdog escalates to a
/// kill, or at a hard cap that keeps watchdog-less runs from hanging a
/// test suite forever. Either way it ends in a panic so the run poisons
/// and reports instead of returning fabricated output.
fn stall_if_injected(ctx: &Context<'_>, inj: &FaultInjector) {
    if !inj.should_fail(FaultKind::Stall, "advance:stall") {
        return;
    }
    let start = Instant::now();
    while !ctx.watchdog_killed() && start.elapsed() < STALL_HARD_CAP {
        std::thread::sleep(Duration::from_millis(1));
    }
    // LINT-ALLOW(panic): the injected stall must not return a fabricated
    // result; panicking here routes through panic isolation so the run
    // ends as a structured failure.
    panic!("injected stall released after {:?}", start.elapsed());
}

/// Load-balanced advance behind the retry-with-fallback guard.
///
/// The only *recoverable* failure is the (simulated) workspace
/// allocation failure, consulted here — **before** the functor has run
/// on any edge, so no side effects can be duplicated by a retry. The
/// strategy is retried up to `ctx.retry.max_retries` times (with the
/// policy's backoff), then abandoned for the always-safe
/// `thread_mapped` strategy, which needs no scan workspace. Every retry
/// and fallback is recorded as a [`RecoveryKind`] event when a stats
/// sink is installed. Failures *inside* the functor loop are not
/// retryable (side effects have escaped) and go through panic isolation
/// instead.
fn run_load_balanced<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
    label: &'static str,
) -> (Frontier, &'static str) {
    if let Some(inj) = ctx.injector() {
        let mut attempt = 0u32;
        while inj.should_fail(FaultKind::Alloc, "advance:load_balanced") {
            if attempt >= ctx.retry.max_retries {
                if let Some(sink) = ctx.sink() {
                    sink.record_recovery(
                        "advance",
                        RecoveryKind::Fallback,
                        "load_balanced",
                        "thread_mapped",
                        format!("workspace allocation failed after {attempt} retries"),
                    );
                }
                return (
                    push::thread_mapped(ctx, input, spec, functor),
                    "fallback:thread_mapped",
                );
            }
            attempt += 1;
            if let Some(sink) = ctx.sink() {
                sink.record_recovery(
                    "advance",
                    RecoveryKind::Retry,
                    "load_balanced",
                    "load_balanced",
                    format!("workspace allocation failed, retry {attempt}"),
                );
            }
            if !ctx.retry.backoff.is_zero() {
                std::thread::sleep(ctx.retry.backoff);
            }
        }
    }
    // Degradation rung (budgeted pools only): the load-balanced
    // strategy's scan/partition workspace is its price; when the
    // budget's headroom can't cover it, take the leaner thread-mapped
    // path instead of running into a mid-operator denial. Checked —
    // like the alloc-fault guard above — before the functor has touched
    // any edge, so no side effects are duplicated.
    if let Some(budget) = ctx.budget() {
        let neighbors = push::frontier_neighbor_count(ctx, input, spec.input);
        let need = advance_workspace_bytes(input.len() as u64, neighbors, "load_balanced");
        if !budget.can_fit(need) {
            ctx.record_degrade(
                "advance",
                "load_balanced",
                "thread_mapped",
                format!(
                    "lb workspace needs {need} bytes, budget headroom {}",
                    budget.headroom()
                ),
            );
            return (push::thread_mapped(ctx, input, spec, functor), "degraded:thread_mapped");
        }
    }
    (push::load_balanced(ctx, input, spec, functor), label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::AcceptAll;
    use gunrock_graph::{Coo, GraphBuilder};
    use std::sync::Arc;

    fn star_plus_path() -> gunrock_graph::Csr {
        // vertex 0 is a hub to 1..=5; 5 -> 6 -> 7 path
        GraphBuilder::new().directed().build(Coo::from_edges(
            8,
            &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5), (5, 6), (6, 7)],
        ))
    }

    #[test]
    fn all_modes_agree_on_v2v_output_as_sets() {
        let g = star_plus_path();
        let ctx = Context::new(&g);
        let input = Frontier::from_vec(vec![0, 5]);
        let mut results = Vec::new();
        for mode in [
            AdvanceMode::ThreadMapped,
            AdvanceMode::Twc,
            AdvanceMode::LoadBalanced,
            AdvanceMode::Auto,
        ] {
            let out = advance(&ctx, &input, AdvanceSpec::v2v().with_mode(mode), &AcceptAll);
            let mut v = out.into_vec();
            v.sort_unstable();
            results.push(v);
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
        assert_eq!(results[0], vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn v2e_collects_edge_ids() {
        let g = star_plus_path();
        let ctx = Context::new(&g);
        let out = advance(&ctx, &Frontier::single(0), AdvanceSpec::v2e(), &AcceptAll);
        let mut ids = out.into_vec();
        ids.sort_unstable();
        // vertex 0 owns the first 5 edge slots in CSR order
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn e2v_expands_from_edge_destinations() {
        let g = star_plus_path();
        let ctx = Context::new(&g);
        // edge (0 -> 5) has destination 5, which expands to 6
        let e05 = g.edge_range(0).clone().find(|&e| g.edge_dest(e as u32) == 5).unwrap();
        let out = advance(&ctx, &Frontier::single(e05 as u32), AdvanceSpec::e2v(), &AcceptAll);
        assert_eq!(out.as_slice(), &[6]);
    }

    #[test]
    fn effect_only_advance_returns_empty() {
        let g = star_plus_path();
        let ctx = Context::new(&g);
        let out = advance(&ctx, &Frontier::single(0), AdvanceSpec::for_effect(), &AcceptAll);
        assert!(out.is_empty());
        assert_eq!(ctx.counters.edges(), 5);
    }

    #[test]
    fn tight_budget_degrades_lb_to_thread_mapped() {
        let g = star_plus_path();
        let input = Frontier::from_vec(vec![0, 5]);
        // {0, 5} expands 6 neighbors; a budget one byte short of the lb
        // workspace forces the rung without starving thread_mapped.
        let need = advance_workspace_bytes(2, 6, "load_balanced");
        let budget = Arc::new(gunrock_engine::budget::MemoryBudget::new(need - 1));
        let ctx = Context::new(&g).with_stats().with_budget(budget);
        let spec = AdvanceSpec::v2v().with_mode(AdvanceMode::LoadBalanced);
        let out = advance(&ctx, &input, spec, &AcceptAll);
        let mut v = out.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![1, 2, 3, 4, 5, 6], "degraded advance is still correct");
        assert!(!ctx.is_poisoned(), "degrading is not a failure");
        assert_eq!(ctx.degrade_count(), 1);
        let stats = ctx.run_stats();
        assert_eq!(stats.degrades.len(), 1);
        assert_eq!(stats.degrades[0].from, "load_balanced");
        assert_eq!(stats.degrades[0].to, "thread_mapped");
        assert_eq!(stats.steps[0].strategy, "degraded:thread_mapped");
    }

    #[test]
    fn injected_stall_ignores_cancel_and_releases_on_watchdog_kill() {
        use gunrock_engine::faults::{FaultInjector, FaultPlan};
        use gunrock_engine::watchdog::Heartbeat;
        let g = star_plus_path();
        let plan = FaultPlan::none(11).with_rate(FaultKind::Stall, 1.0);
        let hb = Arc::new(Heartbeat::default());
        let ctx = Context::new(&g)
            .with_heartbeat(Arc::clone(&hb))
            .with_faults(Arc::new(FaultInjector::new(plan)));
        let killer = {
            let hb = Arc::clone(&hb);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                hb.kill();
            })
        };
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let start = Instant::now();
        let out = advance(&ctx, &Frontier::single(0), AdvanceSpec::v2v(), &AcceptAll);
        std::panic::set_hook(prev);
        killer.join().unwrap();
        assert!(out.is_empty());
        assert!(ctx.is_poisoned(), "a reaped stall poisons the run");
        assert!(start.elapsed() < Duration::from_secs(10), "kill released the stall");
        match ctx.take_failure() {
            Some(crate::error::GunrockError::OperatorPanic { payload, .. }) => {
                assert!(payload.contains("stall"), "{payload}");
            }
            other => panic!("expected a stall panic, got {other:?}"),
        }
    }

    #[test]
    fn empty_input_short_circuits() {
        let g = star_plus_path();
        let ctx = Context::new(&g);
        let out = advance(&ctx, &Frontier::new(), AdvanceSpec::v2v(), &AcceptAll);
        assert!(out.is_empty());
        assert_eq!(ctx.counters.edges(), 0);
    }
}
