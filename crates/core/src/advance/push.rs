//! Push-direction advance strategies (§4.4).
//!
//! All three strategies call the functor inline per edge (kernel fusion)
//! and produce a compacted output frontier. `load_balanced` is
//! deterministic down to output order (output slot = global edge rank);
//! the chunked strategies are deterministic given a fixed chunk grain.

use super::{expansion_vertex, AdvanceSpec, InputKind, OutputKind};
use crate::context::Context;
use crate::functor::AdvanceFunctor;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::compact::compact;
use gunrock_engine::config::FRONTIER_SEQ_CUTOFF;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::scan::scan_exclusive_u32;
use gunrock_engine::search::merge_path_partitions;
use gunrock_engine::unsafe_slice::UnsafeSlice;
use gunrock_graph::{EdgeId, VertexId};
use rayon::prelude::*;

/// Marks an edge rank whose `cond` failed in the load-balanced output
/// slot array. Collision with a real vertex/edge id is impossible because
/// `Csr::validate`/`GraphBuilder` reject graphs with `num_vertices` or
/// `num_edges` at `u32::MAX` — every legal id is strictly smaller.
const INVALID_SLOT: u32 = u32::MAX;

/// Total neighbor count of the frontier — the workload size an advance
/// will generate, used by the Auto strategy switch and the
/// direction-optimizing policy.
pub fn frontier_neighbor_count(ctx: &Context<'_>, input: &Frontier, kind: InputKind) -> u64 {
    let g = ctx.graph;
    if input.len() < FRONTIER_SEQ_CUTOFF {
        input
            .as_slice()
            .iter()
            .map(|&it| g.out_degree(expansion_vertex(ctx, kind, it)) as u64)
            .sum()
    } else {
        input
            .as_slice()
            .par_iter()
            .map(|&it| g.out_degree(expansion_vertex(ctx, kind, it)) as u64)
            .sum()
    }
}

/// Expands one item's neighbor list serially, appending successful
/// traversals to `out`. Returns edges examined.
#[inline]
fn expand_serial<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    functor: &F,
    spec: AdvanceSpec,
    item: u32,
    out: &mut Vec<u32>,
) -> u64 {
    let g = ctx.graph;
    let src = expansion_vertex(ctx, spec.input, item);
    let range = g.edge_range(src);
    let examined = range.len() as u64;
    let cols = g.col_indices();
    for e in range {
        let dst = cols[e];
        if functor.cond_edge(src, dst, e as EdgeId) {
            functor.apply_edge(src, dst, e as EdgeId);
            match spec.output {
                OutputKind::Vertices => out.push(dst),
                OutputKind::Edges => out.push(e as EdgeId),
                OutputKind::None => {}
            }
        }
    }
    examined
}

/// Per-thread fine-grained strategy: each task owns a grain of frontier
/// items and walks each item's neighbor list serially. Balanced within a
/// task group, "but not across CTAs" — skewed degrees serialize on the
/// task owning the hub.
pub fn thread_mapped<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    let grain = grain_size(input.len());
    let per_chunk: Vec<(Vec<u32>, u64)> = input
        .as_slice()
        .par_chunks(grain)
        .map(|chunk| {
            let mut local = Vec::new();
            let mut edges = 0u64;
            for &item in chunk {
                edges += expand_serial(ctx, functor, spec, item, &mut local);
            }
            (local, edges)
        })
        .collect();
    let edges: u64 = per_chunk.iter().map(|(_, e)| e).sum();
    ctx.counters.add_edges(edges);
    let chunks: Vec<Vec<u32>> = per_chunk.into_iter().map(|(v, _)| v).collect();
    Frontier::from_vec(concat_chunks(chunks))
}

/// Splits the frontier into the three TWC degree classes — `(small,
/// medium, large)` = (≤ warp, warp..=cta, > cta) — in ONE pass over the
/// frontier, reading each item's degree exactly once. Relative order
/// within each bucket matches frontier order.
fn classify_degrees(
    ctx: &Context<'_>,
    items: &[u32],
    input: InputKind,
    warp: u32,
    cta: u32,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let g = ctx.graph;
    let place = |item: u32, buckets: &mut (Vec<u32>, Vec<u32>, Vec<u32>)| {
        let d = g.out_degree(expansion_vertex(ctx, input, item));
        if d <= warp {
            buckets.0.push(item);
        } else if d <= cta {
            buckets.1.push(item);
        } else {
            buckets.2.push(item);
        }
    };
    if items.len() < FRONTIER_SEQ_CUTOFF {
        let mut buckets = (Vec::new(), Vec::new(), Vec::new());
        for &item in items {
            place(item, &mut buckets);
        }
        return buckets;
    }
    let per_chunk: Vec<(Vec<u32>, Vec<u32>, Vec<u32>)> = items
        .par_chunks(grain_size(items.len()))
        .map(|chunk| {
            let mut buckets = (Vec::new(), Vec::new(), Vec::new());
            for &item in chunk {
                place(item, &mut buckets);
            }
            buckets
        })
        .collect();
    let mut smalls = Vec::with_capacity(per_chunk.len());
    let mut mediums = Vec::with_capacity(per_chunk.len());
    let mut larges = Vec::with_capacity(per_chunk.len());
    for (s, m, l) in per_chunk {
        smalls.push(s);
        mediums.push(m);
        larges.push(l);
    }
    (concat_chunks(smalls), concat_chunks(mediums), concat_chunks(larges))
}

/// Per-warp / per-CTA coarse-grained strategy (Merrill et al.): the
/// frontier is split into three degree classes, each processed with a
/// cooperation width matched to its size — whole "CTA" chunks for huge
/// lists, per-"warp" tasks for medium lists, per-thread grains for small
/// lists. Higher throughput on high-variance frontiers, at the cost of
/// one classification pass.
pub fn twc<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    let g = ctx.graph;
    // CAST: warp/cta sizes are small powers of two (EngineConfig validates
    // them), far below u32::MAX.
    let warp = ctx.config.warp_size as u32;
    let cta = ctx.config.cta_size as u32;
    let (small, medium, large) = classify_degrees(ctx, input.as_slice(), spec.input, warp, cta);

    // Small lists: fine-grained grains of items.
    let small_out = thread_mapped(ctx, &Frontier::from_vec(small), spec, functor);

    // Medium lists: one task per item (a "warp" cooperates on one list).
    let medium_chunks: Vec<(Vec<u32>, u64)> = medium
        .par_iter()
        .map(|&item| {
            let mut local = Vec::new();
            let edges = expand_serial(ctx, functor, spec, item, &mut local);
            (local, edges)
        })
        .collect();
    ctx.counters.add_edges(medium_chunks.iter().map(|(_, e)| e).sum());
    let medium_out = concat_chunks(medium_chunks.into_iter().map(|(v, _)| v).collect());

    // Large lists: the whole "CTA" cooperates on one neighbor list,
    // processing it in cta-sized slices in parallel.
    let mut large_parts: Vec<Vec<u32>> = Vec::new();
    let mut large_edges = 0u64;
    for &item in &large {
        let src = expansion_vertex(ctx, spec.input, item);
        let range = g.edge_range(src);
        large_edges += range.len() as u64;
        let cols = &g.col_indices()[range.clone()];
        let base = range.start;
        let mut parts: Vec<Vec<u32>> = cols
            .par_chunks(ctx.config.cta_size)
            .enumerate()
            .map(|(ci, slice)| {
                let mut local = Vec::new();
                let start = base + ci * ctx.config.cta_size;
                for (i, &dst) in slice.iter().enumerate() {
                    let e = (start + i) as EdgeId;
                    if functor.cond_edge(src, dst, e) {
                        functor.apply_edge(src, dst, e);
                        match spec.output {
                            OutputKind::Vertices => local.push(dst),
                            OutputKind::Edges => local.push(e),
                            OutputKind::None => {}
                        }
                    }
                }
                local
            })
            .collect();
        large_parts.append(&mut parts);
    }
    ctx.counters.add_edges(large_edges);
    let large_out = concat_chunks(large_parts);

    let merged = concat_chunks(vec![small_out.into_vec(), medium_out, large_out]);
    Frontier::from_vec(merged)
}

/// Load-balanced strategy (Davidson et al.): scan frontier degrees into a
/// global edge ranking, split the ranking into equal-width chunks, locate
/// each chunk's first source by binary search over the scanned offsets
/// (merge-path), then walk. Every task touches exactly `cta_size` edges
/// regardless of degree skew: balanced within and across blocks.
pub fn load_balanced<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    load_balanced_with_limit(ctx, input, spec, functor, u32::MAX as u64)
}

/// Load-balanced advance with an explicit cap on how many edge ranks one
/// merge-path batch may hold. The ranking is scanned in `u32`, so a
/// frontier whose total neighbor count reaches `u32::MAX` would silently
/// wrap and corrupt the partition; when the total reaches `limit` the
/// frontier is split into consecutive batches each below it, preserving
/// the strategy's edge-rank output order across batches. A single item
/// whose own degree reaches the limit is expanded via [`thread_mapped`]
/// (its output for one item is also in edge order).
///
/// `limit` is `u32::MAX` in production ([`load_balanced`]); tests inject
/// small limits to exercise the guard without building 4-billion-edge
/// frontiers.
pub(crate) fn load_balanced_with_limit<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
    limit: u64,
) -> Frontier {
    let g = ctx.graph;
    let items = input.as_slice();
    // Phase 1: per-item degrees (u64 total so overflow is detected, not
    // wrapped).
    let degrees: Vec<u32> = if items.len() < FRONTIER_SEQ_CUTOFF {
        items.iter().map(|&it| g.out_degree(expansion_vertex(ctx, spec.input, it))).collect()
    } else {
        items
            .par_iter()
            .map(|&it| g.out_degree(expansion_vertex(ctx, spec.input, it)))
            .collect()
    };
    let total: u64 = if degrees.len() < FRONTIER_SEQ_CUTOFF {
        degrees.iter().map(|&d| d as u64).sum()
    } else {
        degrees.par_iter().map(|&d| d as u64).sum()
    };
    if total == 0 {
        return Frontier::new();
    }
    if total < limit {
        ctx.counters.add_edges(total);
        // CAST: guarded — this branch requires total < limit <= u32::MAX.
        return Frontier::from_vec(lb_batch(ctx, items, &degrees, total as u32, spec, functor));
    }
    // Guard path: the ranking would overflow u32. Split the frontier into
    // consecutive batches, each with a sub-limit rank total; batch outputs
    // concatenate in frontier order, so the overall output stays in
    // global edge-rank order.
    let mut out: Vec<u32> = Vec::new();
    let mut start = 0usize;
    while start < items.len() {
        // One huge split advance must still honor the enactment's
        // wall-clock budget: check between batches (never mid-batch, so
        // each batch's functor effects stay complete). The enact loop's
        // next guard check reports TimedOut.
        if ctx.deadline_exceeded() {
            break;
        }
        let mut end = start;
        let mut batch_total = 0u64;
        while end < items.len() {
            let d = degrees[end] as u64;
            if d >= limit || batch_total + d >= limit {
                break;
            }
            batch_total += d;
            end += 1;
        }
        if end == start {
            // One item's own degree reaches the limit; merge-path can't
            // rank it, so expand just that item thread-mapped (which
            // counts its own edges).
            let part = thread_mapped(ctx, &Frontier::single(items[start]), spec, functor);
            out.extend_from_slice(part.as_slice());
            start += 1;
        } else {
            if batch_total > 0 {
                ctx.counters.add_edges(batch_total);
                out.extend(lb_batch(
                    ctx,
                    &items[start..end],
                    &degrees[start..end],
                    // CAST: the batching loop caps batch_total below the u32 limit.
                    batch_total as u32,
                    spec,
                    functor,
                ));
            }
            start = end;
        }
    }
    Frontier::from_vec(out)
}

/// One merge-path batch: scan `degrees` into a `u32` edge ranking
/// (caller guarantees `total < u32::MAX`), partition it into equal-width
/// chunks, walk each chunk. Output slot w belongs to edge rank w, making
/// output order deterministic. Returns the compacted output (empty for
/// for-effect specs). Does NOT touch `ctx.counters` — the caller
/// attributes edges.
fn lb_batch<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    items: &[u32],
    degrees: &[u32],
    total: u32,
    spec: AdvanceSpec,
    functor: &F,
) -> Vec<u32> {
    let g = ctx.graph;
    let (scanned, _) = scan_exclusive_u32(degrees);
    let chunk = ctx.config.cta_size;
    // Phase 2: merge-path partition of the edge ranking.
    let starts = merge_path_partitions(&scanned, total, chunk);
    // Phase 3: walk each chunk; slot w of the output belongs to edge rank
    // w, making output order deterministic.
    let collect_output = spec.output != OutputKind::None;
    let mut slots: Vec<u32> =
        // CAST: lb_batch's contract is total < u32::MAX (callers guard), so edge
        // ranks, chunk bounds, and row starts all fit u32; id widenings are lossless.
        if collect_output { vec![INVALID_SLOT; total as usize] } else { Vec::new() };
    {
        gunrock_engine::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut slots);
        starts.par_iter().enumerate().for_each(|(ci, &seg_start)| {
            let w0 = (ci * chunk) as u32;
            let w1 = (((ci + 1) * chunk) as u32).min(total);
            let mut seg = seg_start as usize;
            // cache the current segment's expansion data
            let mut src: VertexId = expansion_vertex(ctx, spec.input, items[seg]);
            let mut seg_base = scanned[seg];
            let mut row_start = g.edge_range(src).start as u32;
            let cols = g.col_indices();
            for w in w0..w1 {
                // advance to the segment owning rank w (skips empty lists)
                while seg + 1 < items.len() && scanned[seg + 1] <= w {
                    seg += 1;
                    src = expansion_vertex(ctx, spec.input, items[seg]);
                    seg_base = scanned[seg];
                    row_start = g.edge_range(src).start as u32;
                }
                let e = row_start + (w - seg_base);
                let dst = cols[e as usize];
                if functor.cond_edge(src, dst, e) {
                    functor.apply_edge(src, dst, e);
                    if collect_output {
                        let v = match spec.output {
                            OutputKind::Vertices => dst,
                            OutputKind::Edges => e,
                            OutputKind::None => unreachable!(),
                        };
                        // SAFETY: each rank w written by exactly one chunk.
                        unsafe { out_ref.write(w as usize, v) };
                    }
                }
            }
        });
    }
    if !collect_output {
        return Vec::new();
    }
    compact(&slots, |&v| v != INVALID_SLOT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::{AcceptAll, EdgeCond};
    use gunrock_graph::generators::rmat;
    use gunrock_graph::{Coo, GraphBuilder};

    fn skewed_graph() -> gunrock_graph::Csr {
        GraphBuilder::new().build(rmat(9, 16, Default::default(), 5))
    }

    fn modes_output(
        g: &gunrock_graph::Csr,
        input: Vec<u32>,
        spec: AdvanceSpec,
    ) -> Vec<Vec<u32>> {
        let ctx = Context::new(g);
        let f = Frontier::from_vec(input);
        [
            thread_mapped(&ctx, &f, spec, &AcceptAll),
            twc(&ctx, &f, spec, &AcceptAll),
            load_balanced(&ctx, &f, spec, &AcceptAll),
        ]
        .into_iter()
        .map(|fr| {
            let mut v = fr.into_vec();
            v.sort_unstable();
            v
        })
        .collect()
    }

    #[test]
    fn strategies_agree_on_skewed_graph() {
        let g = skewed_graph();
        let input: Vec<u32> = (0..g.num_vertices() as u32).step_by(3).collect();
        let outs = modes_output(&g, input, AdvanceSpec::v2v());
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
        assert!(!outs[0].is_empty());
    }

    #[test]
    fn strategies_agree_on_edge_output() {
        let g = skewed_graph();
        let input: Vec<u32> = (0..g.num_vertices() as u32).step_by(7).collect();
        let outs = modes_output(&g, input, AdvanceSpec::v2e());
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
    }

    #[test]
    fn load_balanced_output_is_in_edge_rank_order() {
        let g = GraphBuilder::new()
            .directed()
            .build(Coo::from_edges(4, &[(0, 3), (0, 1), (2, 0), (2, 3)]));
        let ctx = Context::new(&g);
        let out = load_balanced(
            &ctx,
            &Frontier::from_vec(vec![0, 2]),
            AdvanceSpec::v2v(),
            &AcceptAll,
        );
        // CSR sorts (0->1),(0->3),(2->0),(2->3); frontier order [0, 2]
        assert_eq!(out.as_slice(), &[1, 3, 0, 3]);
    }

    #[test]
    fn cond_false_edges_are_culled_everywhere() {
        let g = skewed_graph();
        let keep_even = EdgeCond(|_s: u32, d: u32, _e: u32| d.is_multiple_of(2));
        let ctx = Context::new(&g);
        let input = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        for out in [
            thread_mapped(&ctx, &input, AdvanceSpec::v2v(), &keep_even),
            twc(&ctx, &input, AdvanceSpec::v2v(), &keep_even),
            load_balanced(&ctx, &input, AdvanceSpec::v2v(), &keep_even),
        ] {
            assert!(out.as_slice().iter().all(|&v| v % 2 == 0));
        }
    }

    #[test]
    fn edge_counters_count_full_neighbor_lists() {
        let g = skewed_graph();
        let input = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        let expect = g.num_edges() as u64;
        for mode in [AdvanceMode::ThreadMapped, AdvanceMode::Twc, AdvanceMode::LoadBalanced] {
            let ctx = Context::new(&g);
            let _ = super::super::advance(
                &ctx,
                &input,
                AdvanceSpec::v2v().with_mode(mode),
                &AcceptAll,
            );
            assert_eq!(ctx.counters.edges(), expect, "mode {mode:?}");
        }
    }

    /// Three-compact reference for [`classify_degrees`] — the
    /// implementation this replaced (regression oracle for the
    /// single-pass rewrite).
    fn classify_reference(
        g: &gunrock_graph::Csr,
        items: &[u32],
        warp: u32,
        cta: u32,
    ) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let deg = |&it: &u32| g.out_degree(it);
        (
            compact(items, |it| deg(it) <= warp),
            compact(items, |it| {
                let d = deg(it);
                d > warp && d <= cta
            }),
            compact(items, |it| deg(it) > cta),
        )
    }

    #[test]
    fn single_pass_classification_matches_three_compacts() {
        let g = skewed_graph();
        let ctx = Context::new(&g);
        let (warp, cta) = (ctx.config.warp_size as u32, ctx.config.cta_size as u32);
        // small frontier: sequential path
        let small_input: Vec<u32> = (0..g.num_vertices() as u32).step_by(5).collect();
        assert!(small_input.len() < FRONTIER_SEQ_CUTOFF);
        // large frontier (with repeats): parallel path
        let large_input: Vec<u32> = (0..(FRONTIER_SEQ_CUTOFF as u32 * 2))
            .map(|i| i % g.num_vertices() as u32)
            .collect();
        for items in [small_input, large_input] {
            let got = classify_degrees(&ctx, &items, InputKind::Vertices, warp, cta);
            let want = classify_reference(&g, &items, warp, cta);
            assert_eq!(got, want);
            assert_eq!(got.0.len() + got.1.len() + got.2.len(), items.len());
        }
    }

    #[test]
    fn load_balanced_splits_when_rank_total_hits_limit() {
        // hub vertex with degree ~100; frontier repeats it so the rank
        // total crosses a small injected limit and forces the split path
        let deg = 100u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|d| (0, d)).collect();
        let g = GraphBuilder::new().directed().build(Coo::from_edges(deg as usize + 1, &edges));
        let input: Vec<u32> = vec![0; 50]; // 50 * 100 = 5000 ranks
        let f = Frontier::from_vec(input);
        let spec = AdvanceSpec::v2v();

        let ctx_ref = Context::new(&g);
        let reference = load_balanced(&ctx_ref, &f, spec, &AcceptAll);

        let ctx = Context::new(&g);
        let guarded = load_balanced_with_limit(&ctx, &f, spec, &AcceptAll, 256);
        assert_eq!(guarded.as_slice(), reference.as_slice(), "split path must preserve order");
        assert_eq!(ctx.counters.edges(), ctx_ref.counters.edges());
        assert_eq!(ctx.counters.edges(), 5000);
    }

    #[test]
    fn load_balanced_falls_back_for_single_oversized_item() {
        // one item whose own degree exceeds the limit: merge-path cannot
        // rank it, so the guard expands it thread-mapped
        let deg = 100u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|d| (0, d)).collect();
        let g = GraphBuilder::new().directed().build(Coo::from_edges(deg as usize + 1, &edges));
        let f = Frontier::from_vec(vec![0, 0, 0]);
        let spec = AdvanceSpec::v2v();

        let ctx = Context::new(&g);
        let out = load_balanced_with_limit(&ctx, &f, spec, &AcceptAll, 10);
        let mut got = out.into_vec();
        got.sort_unstable();
        let mut want: Vec<u32> = (1..=deg).flat_map(|d| [d, d, d]).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(ctx.counters.edges(), 300);
    }

    #[test]
    fn split_batches_stop_at_the_wall_clock_deadline() {
        use crate::policy::RunPolicy;
        // same hub shape as the split test: 50 * 100 = 5000 ranks in
        // ~20 batches under limit 256
        let deg = 100u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|d| (0, d)).collect();
        let g = GraphBuilder::new().directed().build(Coo::from_edges(deg as usize + 1, &edges));
        let f = Frontier::from_vec(vec![0; 50]);
        let ctx = Context::new(&g)
            .with_policy(RunPolicy::unbounded().wall_clock_budget(std::time::Duration::ZERO));
        let guard = ctx.guard(); // arms the (already-expired) deadline
        let out = load_balanced_with_limit(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll, 256);
        assert!(out.is_empty(), "expired deadline must stop before the first batch");
        assert_eq!(guard.check(0), Some(gunrock_engine::stats::RunOutcome::TimedOut));

        // without arming the guard, the same call runs to completion
        let ctx2 = Context::new(&g);
        let full = load_balanced_with_limit(&ctx2, &f, AdvanceSpec::v2v(), &AcceptAll, 256);
        assert_eq!(full.len(), 5000);
    }

    #[test]
    fn production_limit_never_triggers_split_on_normal_graphs() {
        let g = skewed_graph();
        let f = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        let ctx_a = Context::new(&g);
        let ctx_b = Context::new(&g);
        let a = load_balanced(&ctx_a, &f, AdvanceSpec::v2v(), &AcceptAll);
        let b = load_balanced_with_limit(
            &ctx_b,
            &f,
            AdvanceSpec::v2v(),
            &AcceptAll,
            u32::MAX as u64,
        );
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn neighbor_count_matches_degree_sum() {
        let g = skewed_graph();
        let ctx = Context::new(&g);
        let input = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        assert_eq!(
            frontier_neighbor_count(&ctx, &input, InputKind::Vertices),
            g.num_edges() as u64
        );
    }

    use super::super::AdvanceMode;
}
