//! Push-direction advance strategies (§4.4).
//!
//! All three strategies call the functor inline per edge (kernel fusion)
//! and produce a compacted output frontier in **global edge-rank order**:
//! `thread_mapped` and `load_balanced` both expand through a scan of
//! frontier degrees into exact output offsets, so their outputs are
//! bit-identical; `twc` concatenates its three degree buckets, each in
//! edge-rank order.
//!
//! The hot paths are zero-allocation in the steady state: every scratch
//! buffer (degrees, scanned offsets, merge-path partitions, slot arrays,
//! compacted outputs) is checked out of the context's
//! [`gunrock_engine::pool::BufferPool`] and returned when the advance
//! finishes, so after a warm-up iteration the pool's `allocations`
//! counter stops moving.

use super::{expansion_vertex, AdvanceSpec, InputKind, OutputKind};
use crate::context::Context;
use crate::functor::AdvanceFunctor;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::config::{FRONTIER_SEQ_CUTOFF, SEQUENTIAL_CUTOFF};
use gunrock_engine::frontier::Frontier;
use gunrock_engine::scan::scan_exclusive_u32_into;
use gunrock_engine::search::merge_path_partitions_into;
use gunrock_engine::unsafe_slice::UnsafeSlice;
use gunrock_graph::{EdgeId, VertexId};
use rayon::prelude::*;

/// Marks an edge rank whose `cond` failed in a flat output slot array.
/// Collision with a real vertex/edge id is impossible because
/// `Csr::validate`/`GraphBuilder` reject graphs with `num_vertices` or
/// `num_edges` at `u32::MAX` — every legal id is strictly smaller.
const INVALID_SLOT: u32 = u32::MAX;

/// Total neighbor count of the frontier — the workload size an advance
/// will generate, used by the Auto strategy switch, the serial
/// fast-path gate, and the direction-optimizing policy.
pub fn frontier_neighbor_count(ctx: &Context<'_>, input: &Frontier, kind: InputKind) -> u64 {
    let g = ctx.graph;
    if input.len() < FRONTIER_SEQ_CUTOFF {
        input
            .as_slice()
            .iter()
            .map(|&it| g.out_degree(expansion_vertex(ctx, kind, it)) as u64)
            .sum()
    } else {
        input
            .as_slice()
            .par_iter()
            .map(|&it| g.out_degree(expansion_vertex(ctx, kind, it)) as u64)
            .sum()
    }
}

/// Fills `out` with the out-degree of every frontier item's expansion
/// vertex, reusing `out`'s capacity (pooled in the callers).
fn gather_degrees_into(ctx: &Context<'_>, items: &[u32], input: InputKind, out: &mut Vec<u32>) {
    let g = ctx.graph;
    if items.len() < FRONTIER_SEQ_CUTOFF {
        out.clear();
        out.reserve(items.len());
        for &it in items {
            out.push(g.out_degree(expansion_vertex(ctx, input, it)));
        }
    } else {
        items
            .par_iter()
            .map(|&it| g.out_degree(expansion_vertex(ctx, input, it)))
            .collect_into_vec(out);
    }
}

/// Sum of a degree array, widened to `u64` so overflow is detected
/// rather than wrapped.
fn degree_sum(degrees: &[u32]) -> u64 {
    if degrees.len() < FRONTIER_SEQ_CUTOFF {
        degrees.iter().map(|&d| d as u64).sum()
    } else {
        degrees.par_iter().map(|&d| d as u64).sum()
    }
}

/// Expands one item's neighbor list serially, appending successful
/// traversals to `out`. Returns edges examined.
#[inline]
fn expand_serial<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    functor: &F,
    spec: AdvanceSpec,
    item: u32,
    out: &mut Vec<u32>,
) -> u64 {
    let g = ctx.graph;
    let src = expansion_vertex(ctx, spec.input, item);
    let range = g.edge_range(src);
    let examined = range.len() as u64;
    let cols = g.col_indices();
    for e in range {
        let dst = cols[e];
        if functor.cond_edge(src, dst, e as EdgeId) {
            functor.apply_edge(src, dst, e as EdgeId);
            match spec.output {
                OutputKind::Vertices => out.push(dst),
                OutputKind::Edges => out.push(e as EdgeId),
                OutputKind::None => {}
            }
        }
    }
    examined
}

/// Expands one item's neighbor list into its exact slot range of a flat
/// output array: successes pack at the front of `[offset, offset+degree)`,
/// [`INVALID_SLOT`] fills the tail for culled edges. Every slot in the
/// range is written exactly once.
#[inline]
fn expand_flat<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    functor: &F,
    spec: AdvanceSpec,
    item: u32,
    offset: u32,
    out: &UnsafeSlice<'_, u32>,
) {
    let g = ctx.graph;
    let src = expansion_vertex(ctx, spec.input, item);
    let range = g.edge_range(src);
    // CAST: offset is an edge rank below the caller's u32 total; widening
    // u32 -> usize is lossless.
    let end = offset as usize + range.len();
    let cols = g.col_indices();
    // CAST: same widening as above.
    let mut w = offset as usize;
    for e in range {
        let dst = cols[e];
        if functor.cond_edge(src, dst, e as EdgeId) {
            functor.apply_edge(src, dst, e as EdgeId);
            let v = match spec.output {
                OutputKind::Vertices => dst,
                OutputKind::Edges => e as EdgeId,
                OutputKind::None => unreachable!("flat expansion requires an output kind"),
            };
            // SAFETY: this item's slot range [offset, end) is disjoint
            // from every other item's (exclusive scan of degrees), and w
            // stays within it.
            unsafe { out.write(w, v) };
            w += 1;
        }
    }
    for idx in w..end {
        // SAFETY: same disjoint range; each tail index written once.
        unsafe { out.write(idx, INVALID_SLOT) };
    }
}

/// Appends the non-[`INVALID_SLOT`] values of `slots` onto `out` in
/// order — the order-preserving compaction of the flat scan-offset
/// expansion. Serial below [`SEQUENTIAL_CUTOFF`]; the parallel path
/// scatters through pooled per-chunk counts, so the hot loop stays
/// allocation-free once `out` has capacity.
fn compact_slots_into(ctx: &Context<'_>, slots: &[u32], out: &mut Vec<u32>) {
    let n = slots.len();
    out.reserve(n);
    if n < SEQUENTIAL_CUTOFF || rayon::current_num_threads() == 1 {
        for &v in slots {
            if v != INVALID_SLOT {
                out.push(v);
            }
        }
        return;
    }
    let pool = ctx.pool();
    let chunk = n.div_ceil(rayon::current_num_threads() * 4).max(1);
    let num_chunks = n.div_ceil(chunk);
    let mut counts = pool.take_u32(num_chunks);
    slots
        .par_chunks(chunk)
        // CAST: per-chunk counts are bounded by slots.len(), which the
        // callers guarantee is below u32::MAX (flat rankings are u32).
        .map(|c| c.iter().filter(|&&v| v != INVALID_SLOT).count() as u32)
        .collect_into_vec(&mut counts);
    let mut bases = pool.take_u32(num_chunks);
    let kept = scan_exclusive_u32_into(&counts, &mut bases) as usize;
    pool.put_u32(counts);
    let start = out.len();
    // SAFETY: u32 is Copy with no drop glue, reserve() above guarantees
    // capacity for start + n >= start + kept, and the scatter below
    // writes every index in [start, start + kept) exactly once before
    // any read.
    unsafe { out.set_len(start + kept) };
    {
        gunrock_engine::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut out[..]);
        slots.par_chunks(chunk).zip(bases.par_iter()).for_each(|(c, &base)| {
            let mut w = start + base as usize;
            for &v in c {
                if v != INVALID_SLOT {
                    // SAFETY: this chunk writes the disjoint range
                    // [start+base, start+base+count) — bases are the
                    // exclusive scan of the per-chunk counts.
                    unsafe { out_ref.write(w, v) };
                    w += 1;
                }
            }
        });
    }
    pool.put_u32(bases);
}

/// Single-threaded advance, used for tiny frontiers (the small-frontier
/// fast path behind `EngineConfig::serial_threshold`) and whenever the
/// pool has a single worker thread: no rayon dispatch, no
/// scan — one pass appending into a pooled buffer whose capacity already
/// covers the `work` estimate, so the loop performs zero heap
/// allocations. Output order is edge-rank order, identical to
/// [`thread_mapped`]. Targets the high-diameter regime (road networks,
/// long-tail BFS levels) where fork/join latency dwarfs the few hundred
/// edges of actual work.
pub fn serial<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
    work: u64,
) -> Frontier {
    let mut out = if spec.output != OutputKind::None {
        // CAST: work counts edges of an in-memory graph; it fits usize on
        // the 64-bit targets we build for (the flat path's u32 ranking
        // limit does not apply here — serial appends, it never ranks).
        ctx.pool().take_u32(work as usize)
    } else {
        // ALLOC-OK(effect-only: expand_serial never pushes, so Vec::new never allocates)
        Vec::new()
    };
    let mut edges = 0u64;
    for &item in input.as_slice() {
        edges += expand_serial(ctx, functor, spec, item, &mut out);
    }
    ctx.counters.add_edges(edges);
    Frontier::from_vec(out)
}

/// Per-thread fine-grained strategy: each task owns a grain of frontier
/// items and walks each item's neighbor list serially. Balanced within a
/// task group, "but not across CTAs" — skewed degrees serialize on the
/// task owning the hub.
///
/// Implemented as a two-pass scan-offset expansion into ONE pooled flat
/// buffer: pass 1 gathers per-item degrees and scans them into exact
/// write offsets; pass 2 expands every item into its disjoint slot range
/// ([`INVALID_SLOT`] holes where `cond` culled); an order-preserving
/// compaction yields the output. No per-task `Vec`s, no concatenation.
pub fn thread_mapped<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    let items = input.as_slice();
    if items.is_empty() {
        return Frontier::new();
    }
    // With a single worker thread the multi-pass scan-offset pipeline
    // (gather degrees, scan, flat expand, compact) is pure overhead:
    // there is no parallelism to balance, and each pass re-touches the
    // whole working set. Delegate to the serial expansion, which emits
    // the same edge-rank order in one pass over the frontier.
    if rayon::current_num_threads() == 1 {
        // Effect-only advances never touch the output buffer, so skip
        // the degree pass that would only be used to size it.
        let work = if spec.output == OutputKind::None {
            0
        } else {
            frontier_neighbor_count(ctx, input, spec.input)
        };
        return serial(ctx, input, spec, functor, work);
    }
    // Effect-only advance: no output buffer, no scan — walk and count.
    if spec.output == OutputKind::None {
        let grain = grain_size(items.len());
        let edges: u64 = items
            .par_chunks(grain)
            .map(|chunk| {
                // ALLOC-OK(effect-only: expand_serial never pushes with OutputKind::None, so this Vec never allocates)
                let mut sink = Vec::new();
                chunk
                    .iter()
                    .map(|&item| expand_serial(ctx, functor, spec, item, &mut sink))
                    .sum::<u64>()
            })
            .sum();
        ctx.counters.add_edges(edges);
        return Frontier::new();
    }
    let pool = ctx.pool();
    // Pass 1: per-item degrees, scanned into exact write offsets.
    let mut degrees = pool.take_u32(items.len());
    gather_degrees_into(ctx, items, spec.input, &mut degrees);
    let total = degree_sum(&degrees);
    if total == 0 {
        pool.put_u32(degrees);
        return Frontier::new();
    }
    if total >= u32::MAX as u64 {
        // The flat ranking is u32-indexed; a frontier expanding to four
        // billion edges falls back to the chunked path.
        pool.put_u32(degrees);
        return thread_mapped_chunked(ctx, input, spec, functor);
    }
    ctx.counters.add_edges(total);
    // CAST: guarded just above — total < u32::MAX fits usize.
    let total = total as usize;
    let mut scanned = pool.take_u32(items.len());
    scan_exclusive_u32_into(&degrees, &mut scanned);
    pool.put_u32(degrees);
    // Pass 2: expand every item into its slot range of one flat buffer.
    let mut slots = pool.take_u32(total);
    // SAFETY: u32 is Copy with no drop glue, the pool guarantees
    // capacity() >= total, and the scatter below writes every index in
    // [0, total) exactly once before any read (successes at the front of
    // each item's range, INVALID_SLOT in the tail).
    unsafe { slots.set_len(total) };
    {
        gunrock_engine::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut slots);
        let grain = grain_size(items.len());
        items.par_chunks(grain).enumerate().for_each(|(ci, chunk)| {
            let base = ci * grain;
            for (j, &item) in chunk.iter().enumerate() {
                expand_flat(ctx, functor, spec, item, scanned[base + j], &out_ref);
            }
        });
    }
    pool.put_u32(scanned);
    let mut out = pool.take_u32(total);
    compact_slots_into(ctx, &slots, &mut out);
    pool.put_u32(slots);
    Frontier::from_vec(out)
}

/// Chunked fallback for frontiers whose total neighbor count does not
/// fit the u32 flat ranking: per-task local vectors concatenated in
/// chunk order (the pre-pool implementation). Output order matches the
/// flat path exactly.
fn thread_mapped_chunked<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    let grain = grain_size(input.len());
    let per_chunk: Vec<(Vec<u32>, u64)> = input
        .as_slice()
        .par_chunks(grain)
        .map(|chunk| {
            // ALLOC-OK(u32-overflow fallback: only reachable when one frontier expands over four billion edges, never on the pooled steady-state path)
            let mut local = Vec::new();
            let mut edges = 0u64;
            for &item in chunk {
                edges += expand_serial(ctx, functor, spec, item, &mut local);
            }
            (local, edges)
        })
        // ALLOC-OK(u32-overflow fallback, see above)
        .collect();
    let edges: u64 = per_chunk.iter().map(|(_, e)| e).sum();
    ctx.counters.add_edges(edges);
    // ALLOC-OK(u32-overflow fallback, see above)
    let chunks: Vec<Vec<u32>> = per_chunk.into_iter().map(|(v, _)| v).collect();
    Frontier::from_vec(concat_chunks(chunks))
}

/// Splits the frontier into the three TWC degree classes — `(small,
/// medium, large)` = (≤ warp, warp..=cta, > cta) — in ONE pass over the
/// frontier, reading each item's degree exactly once. Relative order
/// within each bucket matches frontier order.
fn classify_degrees(
    ctx: &Context<'_>,
    items: &[u32],
    input: InputKind,
    warp: u32,
    cta: u32,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let g = ctx.graph;
    let place = |item: u32, buckets: &mut (Vec<u32>, Vec<u32>, Vec<u32>)| {
        let d = g.out_degree(expansion_vertex(ctx, input, item));
        if d <= warp {
            buckets.0.push(item);
        } else if d <= cta {
            buckets.1.push(item);
        } else {
            buckets.2.push(item);
        }
    };
    if items.len() < FRONTIER_SEQ_CUTOFF {
        // ALLOC-OK(twc classification buckets; twc is an explicit opt-in strategy outside the pooled Auto path)
        let mut buckets = (Vec::new(), Vec::new(), Vec::new());
        for &item in items {
            place(item, &mut buckets);
        }
        return buckets;
    }
    let per_chunk: Vec<(Vec<u32>, Vec<u32>, Vec<u32>)> = items
        .par_chunks(grain_size(items.len()))
        .map(|chunk| {
            // ALLOC-OK(twc per-chunk classification buckets, opt-in strategy)
            let mut buckets = (Vec::new(), Vec::new(), Vec::new());
            for &item in chunk {
                place(item, &mut buckets);
            }
            buckets
        })
        // ALLOC-OK(twc per-chunk classification buckets, opt-in strategy)
        .collect();
    // ALLOC-OK(twc bucket spines, one small Vec per degree class)
    let mut smalls = Vec::with_capacity(per_chunk.len());
    // ALLOC-OK(twc bucket spines, see above)
    let mut mediums = Vec::with_capacity(per_chunk.len());
    // ALLOC-OK(twc bucket spines, see above)
    let mut larges = Vec::with_capacity(per_chunk.len());
    for (s, m, l) in per_chunk {
        smalls.push(s);
        mediums.push(m);
        larges.push(l);
    }
    (concat_chunks(smalls), concat_chunks(mediums), concat_chunks(larges))
}

/// Per-warp / per-CTA coarse-grained strategy (Merrill et al.): the
/// frontier is split into three degree classes, each processed with a
/// cooperation width matched to its size — whole "CTA" chunks for huge
/// lists, per-"warp" tasks for medium lists, per-thread grains for small
/// lists. Higher throughput on high-variance frontiers, at the cost of
/// one classification pass.
pub fn twc<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    let g = ctx.graph;
    // CAST: warp/cta sizes are small powers of two (EngineConfig validates
    // them), far below u32::MAX.
    let warp = ctx.config.warp_size as u32;
    let cta = ctx.config.cta_size as u32;
    let (small, medium, large) = classify_degrees(ctx, input.as_slice(), spec.input, warp, cta);

    // Small lists: fine-grained grains of items (pooled flat expansion).
    let small_f = Frontier::from_vec(small);
    let small_out = thread_mapped(ctx, &small_f, spec, functor);
    ctx.recycle(small_f);
    if medium.is_empty() && large.is_empty() {
        // Single-bucket frontier: hand the pooled output straight
        // through, no merge, no copy.
        return small_out;
    }

    // Medium lists: one task per item (a "warp" cooperates on one list).
    let medium_chunks: Vec<(Vec<u32>, u64)> = medium
        .par_iter()
        .map(|&item| {
            // ALLOC-OK(twc per-item warp local; opt-in strategy outside the pooled Auto path)
            let mut local = Vec::new();
            let edges = expand_serial(ctx, functor, spec, item, &mut local);
            (local, edges)
        })
        // ALLOC-OK(twc per-item warp locals, see above)
        .collect();
    ctx.counters.add_edges(medium_chunks.iter().map(|(_, e)| e).sum());

    // Large lists: the whole "CTA" cooperates on one neighbor list,
    // processing it in cta-sized slices in parallel.
    // ALLOC-OK(twc per-CTA part spine, opt-in strategy)
    let mut large_parts: Vec<Vec<u32>> = Vec::new();
    let mut large_edges = 0u64;
    for &item in &large {
        let src = expansion_vertex(ctx, spec.input, item);
        let range = g.edge_range(src);
        large_edges += range.len() as u64;
        let cols = &g.col_indices()[range.clone()];
        let base = range.start;
        let mut parts: Vec<Vec<u32>> = cols
            .par_chunks(ctx.config.cta_size)
            .enumerate()
            .map(|(ci, slice)| {
                // ALLOC-OK(twc per-CTA local, opt-in strategy)
                let mut local = Vec::new();
                let start = base + ci * ctx.config.cta_size;
                for (i, &dst) in slice.iter().enumerate() {
                    let e = (start + i) as EdgeId;
                    if functor.cond_edge(src, dst, e) {
                        functor.apply_edge(src, dst, e);
                        match spec.output {
                            OutputKind::Vertices => local.push(dst),
                            OutputKind::Edges => local.push(e),
                            OutputKind::None => {}
                        }
                    }
                }
                local
            })
            // ALLOC-OK(twc per-CTA locals, see above)
            .collect();
        large_parts.append(&mut parts);
    }
    ctx.counters.add_edges(large_edges);
    if spec.output == OutputKind::None {
        return Frontier::new();
    }

    // Merge the three buckets with ONE copy per element into a pooled
    // buffer. The old `concat_chunks(vec![small, medium, large])` first
    // materialized the medium/large buckets via concat_chunks and then
    // copied all three again — a double copy of every medium/large
    // element plus a heap-allocated spine.
    let medium_len: usize = medium_chunks.iter().map(|(v, _)| v.len()).sum();
    let large_len: usize = large_parts.iter().map(Vec::len).sum();
    let mut merged = ctx.pool().take_u32(small_out.len() + medium_len + large_len);
    merged.extend_from_slice(small_out.as_slice());
    for (v, _) in &medium_chunks {
        merged.extend_from_slice(v);
    }
    for p in &large_parts {
        merged.extend_from_slice(p);
    }
    ctx.recycle(small_out);
    Frontier::from_vec(merged)
}

/// Load-balanced strategy (Davidson et al.): scan frontier degrees into a
/// global edge ranking, split the ranking into equal-width chunks, locate
/// each chunk's first source by binary search over the scanned offsets
/// (merge-path), then walk. Every task touches exactly `cta_size` edges
/// regardless of degree skew: balanced within and across blocks.
pub fn load_balanced<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
) -> Frontier {
    load_balanced_with_limit(ctx, input, spec, functor, u32::MAX as u64)
}

/// Load-balanced advance with an explicit cap on how many edge ranks one
/// merge-path batch may hold. The ranking is scanned in `u32`, so a
/// frontier whose total neighbor count reaches `u32::MAX` would silently
/// wrap and corrupt the partition; when the total reaches `limit` the
/// frontier is split into consecutive batches each below it, preserving
/// the strategy's edge-rank output order across batches. A single item
/// whose own degree reaches the limit is expanded via [`thread_mapped`]
/// (its output for one item is also in edge order).
///
/// `limit` is `u32::MAX` in production ([`load_balanced`]); tests inject
/// small limits to exercise the guard without building 4-billion-edge
/// frontiers.
pub(crate) fn load_balanced_with_limit<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
    limit: u64,
) -> Frontier {
    let items = input.as_slice();
    if items.is_empty() {
        return Frontier::new();
    }
    let pool = ctx.pool();
    // Phase 1: per-item degrees (u64 total so overflow is detected, not
    // wrapped).
    let mut degrees = pool.take_u32(items.len());
    gather_degrees_into(ctx, items, spec.input, &mut degrees);
    let total = degree_sum(&degrees);
    if total == 0 {
        pool.put_u32(degrees);
        return Frontier::new();
    }
    if total < limit {
        ctx.counters.add_edges(total);
        let mut out = if spec.output != OutputKind::None {
            // CAST: guarded — this branch requires total < limit <= u32::MAX.
            pool.take_u32(total as usize)
        } else {
            // ALLOC-OK(effect-only: lb_batch appends nothing, so this Vec never allocates)
            Vec::new()
        };
        // CAST: guarded — total < limit <= u32::MAX.
        lb_batch(ctx, items, &degrees, total as u32, spec, functor, &mut out);
        pool.put_u32(degrees);
        return Frontier::from_vec(out);
    }
    // Guard path: the ranking would overflow u32. Split the frontier into
    // consecutive batches, each with a sub-limit rank total; batch outputs
    // concatenate in frontier order, so the overall output stays in
    // global edge-rank order.
    // ALLOC-OK(u32-overflow guard path: final size unknowable upfront and far beyond any pool class worth pinning, never the steady-state path)
    let mut out: Vec<u32> = Vec::new();
    let mut start = 0usize;
    while start < items.len() {
        // One huge split advance must still honor the enactment's
        // wall-clock budget: check between batches (never mid-batch, so
        // each batch's functor effects stay complete). The enact loop's
        // next guard check reports TimedOut.
        if ctx.deadline_exceeded() {
            break;
        }
        let mut end = start;
        let mut batch_total = 0u64;
        while end < items.len() {
            let d = degrees[end] as u64;
            if d >= limit || batch_total + d >= limit {
                break;
            }
            batch_total += d;
            end += 1;
        }
        if end == start {
            // One item's own degree reaches the limit; merge-path can't
            // rank it, so expand just that item thread-mapped (which
            // counts its own edges).
            let part = thread_mapped(ctx, &Frontier::single(items[start]), spec, functor);
            out.extend_from_slice(part.as_slice());
            ctx.recycle(part);
            start += 1;
        } else {
            if batch_total > 0 {
                ctx.counters.add_edges(batch_total);
                lb_batch(
                    ctx,
                    &items[start..end],
                    &degrees[start..end],
                    // CAST: the batching loop caps batch_total below the u32 limit.
                    batch_total as u32,
                    spec,
                    functor,
                    &mut out,
                );
            }
            start = end;
        }
    }
    pool.put_u32(degrees);
    Frontier::from_vec(out)
}

/// One merge-path batch: scan `degrees` into a `u32` edge ranking
/// (caller guarantees `total < u32::MAX`), partition it into equal-width
/// chunks, walk each chunk. Output slot w belongs to edge rank w, making
/// output order deterministic; the compacted successes are **appended**
/// onto `out` (untouched for for-effect specs). All scratch is pooled.
/// Does NOT touch `ctx.counters` — the caller attributes edges.
#[allow(clippy::too_many_arguments)]
fn lb_batch<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    items: &[u32],
    degrees: &[u32],
    total: u32,
    spec: AdvanceSpec,
    functor: &F,
    out: &mut Vec<u32>,
) {
    let g = ctx.graph;
    let pool = ctx.pool();
    let mut scanned = pool.take_u32(items.len());
    scan_exclusive_u32_into(degrees, &mut scanned);
    let chunk = ctx.config.cta_size;
    // Phase 2: merge-path partition of the edge ranking.
    // CAST: total widens u32 -> usize, lossless.
    let mut starts = pool.take_u32((total as usize).div_ceil(chunk));
    merge_path_partitions_into(&scanned, total, chunk, &mut starts);
    // Phase 3: walk each chunk; slot w of the output belongs to edge rank
    // w, making output order deterministic.
    let collect_output = spec.output != OutputKind::None;
    let mut slots = if collect_output {
        // CAST: lb_batch's contract is total < u32::MAX (callers guard), so edge
        // ranks, chunk bounds, and row starts all fit u32; id widenings are lossless.
        let mut s = pool.take_u32(total as usize);
        s.resize(total as usize, INVALID_SLOT);
        s
    } else {
        // ALLOC-OK(effect-only: no output slots, Vec::new never allocates)
        Vec::new()
    };
    {
        gunrock_engine::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut slots);
        starts.par_iter().enumerate().for_each(|(ci, &seg_start)| {
            let w0 = (ci * chunk) as u32;
            let w1 = (((ci + 1) * chunk) as u32).min(total);
            let mut seg = seg_start as usize;
            // cache the current segment's expansion data
            let mut src: VertexId = expansion_vertex(ctx, spec.input, items[seg]);
            let mut seg_base = scanned[seg];
            let mut row_start = g.edge_range(src).start as u32;
            let cols = g.col_indices();
            for w in w0..w1 {
                // advance to the segment owning rank w (skips empty lists)
                while seg + 1 < items.len() && scanned[seg + 1] <= w {
                    seg += 1;
                    src = expansion_vertex(ctx, spec.input, items[seg]);
                    seg_base = scanned[seg];
                    row_start = g.edge_range(src).start as u32;
                }
                let e = row_start + (w - seg_base);
                let dst = cols[e as usize];
                if functor.cond_edge(src, dst, e) {
                    functor.apply_edge(src, dst, e);
                    if collect_output {
                        let v = match spec.output {
                            OutputKind::Vertices => dst,
                            OutputKind::Edges => e,
                            OutputKind::None => unreachable!(),
                        };
                        // SAFETY: each rank w written by exactly one chunk.
                        unsafe { out_ref.write(w as usize, v) };
                    }
                }
            }
        });
    }
    pool.put_u32(scanned);
    pool.put_u32(starts);
    if collect_output {
        compact_slots_into(ctx, &slots, out);
        pool.put_u32(slots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::{AcceptAll, EdgeCond};
    use gunrock_engine::compact::compact;
    use gunrock_engine::config::EngineConfig;
    use gunrock_graph::generators::rmat;
    use gunrock_graph::{Coo, GraphBuilder};

    fn skewed_graph() -> gunrock_graph::Csr {
        GraphBuilder::new().build(rmat(9, 16, Default::default(), 5))
    }

    fn modes_output(
        g: &gunrock_graph::Csr,
        input: Vec<u32>,
        spec: AdvanceSpec,
    ) -> Vec<Vec<u32>> {
        let ctx = Context::new(g);
        let f = Frontier::from_vec(input);
        [
            thread_mapped(&ctx, &f, spec, &AcceptAll),
            twc(&ctx, &f, spec, &AcceptAll),
            load_balanced(&ctx, &f, spec, &AcceptAll),
        ]
        .into_iter()
        .map(|fr| {
            let mut v = fr.into_vec();
            v.sort_unstable();
            v
        })
        .collect()
    }

    #[test]
    fn strategies_agree_on_skewed_graph() {
        let g = skewed_graph();
        let input: Vec<u32> = (0..g.num_vertices() as u32).step_by(3).collect();
        let outs = modes_output(&g, input, AdvanceSpec::v2v());
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
        assert!(!outs[0].is_empty());
    }

    #[test]
    fn strategies_agree_on_edge_output() {
        let g = skewed_graph();
        let input: Vec<u32> = (0..g.num_vertices() as u32).step_by(7).collect();
        let outs = modes_output(&g, input, AdvanceSpec::v2e());
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
    }

    #[test]
    fn load_balanced_output_is_in_edge_rank_order() {
        let g = GraphBuilder::new()
            .directed()
            .build(Coo::from_edges(4, &[(0, 3), (0, 1), (2, 0), (2, 3)]));
        let ctx = Context::new(&g);
        let out = load_balanced(
            &ctx,
            &Frontier::from_vec(vec![0, 2]),
            AdvanceSpec::v2v(),
            &AcceptAll,
        );
        // CSR sorts (0->1),(0->3),(2->0),(2->3); frontier order [0, 2]
        assert_eq!(out.as_slice(), &[1, 3, 0, 3]);
    }

    #[test]
    fn thread_mapped_output_matches_load_balanced_exactly() {
        // the flat scan-offset rewrite makes thread_mapped's output
        // order identical to load_balanced's (global edge-rank order),
        // not merely set-equal
        let g = skewed_graph();
        let input: Vec<u32> = (0..g.num_vertices() as u32).step_by(2).collect();
        let ctx = Context::new(&g);
        let f = Frontier::from_vec(input);
        let tm = thread_mapped(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
        let lb = load_balanced(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
        assert_eq!(tm.as_slice(), lb.as_slice());
    }

    #[test]
    fn flat_expansion_with_culling_preserves_edge_rank_order_at_scale() {
        // large frontier: parallel gather, parallel scan, parallel
        // compaction — with holes from a culling cond
        let g = skewed_graph();
        let keep_odd = EdgeCond(|_s: u32, d: u32, _e: u32| d % 2 == 1);
        let n = g.num_vertices() as u32;
        let items: Vec<u32> = (0..(FRONTIER_SEQ_CUTOFF as u32 * 3)).map(|i| i % n).collect();
        let ctx = Context::new(&g);
        let f = Frontier::from_vec(items.clone());
        let got = thread_mapped(&ctx, &f, AdvanceSpec::v2v(), &keep_odd);
        let mut want = Vec::new();
        for &it in &items {
            for e in g.edge_range(it) {
                let d = g.col_indices()[e];
                if d % 2 == 1 {
                    want.push(d);
                }
            }
        }
        assert_eq!(got.as_slice(), &want[..]);
    }

    #[test]
    fn serial_fast_path_matches_thread_mapped_exactly() {
        let g = skewed_graph();
        let input = Frontier::from_vec(vec![1, 5, 9, 33]);
        let spec = AdvanceSpec::v2v();
        let ctx_serial = Context::new(&g); // default serial_threshold 4096
        let ctx_par =
            Context::new(&g).with_config(EngineConfig::new().with_serial_threshold(0));
        let a = super::super::advance(&ctx_serial, &input, spec, &AcceptAll);
        let b = super::super::advance(&ctx_par, &input, spec, &AcceptAll);
        assert_eq!(a.as_slice(), b.as_slice(), "fast path must be bit-identical");
        assert_eq!(ctx_serial.counters.edges(), ctx_par.counters.edges());
        assert!(ctx_serial.counters.edges() > 0);
    }

    #[test]
    fn twc_merge_preserves_bucket_order_with_single_copy() {
        // one small (deg 2), one medium (deg 64), one large (deg 300)
        // vertex; the merged output must be small ++ medium ++ large,
        // each bucket's successes in CSR edge order (satellite S6)
        let mut edges: Vec<(u32, u32)> = vec![(0, 3), (0, 4)];
        for i in 0..64 {
            edges.push((1, 5 + i));
        }
        for i in 0..300 {
            edges.push((2, 69 + i));
        }
        let g = GraphBuilder::new().directed().build(Coo::from_edges(369, &edges));
        assert!(g.out_degree(0) <= 32);
        assert!(g.out_degree(1) > 32 && g.out_degree(1) <= 256);
        assert!(g.out_degree(2) > 256);
        let ctx = Context::new(&g);
        // frontier deliberately interleaves the buckets
        let f = Frontier::from_vec(vec![2, 0, 1]);
        let out = twc(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
        let mut want: Vec<u32> = Vec::new();
        for v in [0u32, 1, 2] {
            want.extend(g.edge_range(v).map(|e| g.col_indices()[e]));
        }
        assert_eq!(out.as_slice(), &want[..]);
        assert_eq!(ctx.counters.edges(), 366);
    }

    #[test]
    fn pooled_advance_steady_state_performs_zero_allocations() {
        let g = skewed_graph();
        let ctx = Context::new(&g);
        let f = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        // warm-up populates the pool's working set for both strategies
        for _ in 0..3 {
            let out = thread_mapped(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
            ctx.recycle(out);
            let lb = load_balanced(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
            ctx.recycle(lb);
        }
        let warm = ctx.pool().stats().allocations;
        for _ in 0..20 {
            let out = thread_mapped(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
            ctx.recycle(out);
            let lb = load_balanced(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll);
            ctx.recycle(lb);
        }
        let stats = ctx.pool().stats();
        assert_eq!(stats.allocations, warm, "steady-state advance must not allocate");
        assert_eq!(stats.live, 0, "every scratch buffer returned to the pool");
    }

    #[test]
    fn cond_false_edges_are_culled_everywhere() {
        let g = skewed_graph();
        let keep_even = EdgeCond(|_s: u32, d: u32, _e: u32| d.is_multiple_of(2));
        let ctx = Context::new(&g);
        let input = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        for out in [
            thread_mapped(&ctx, &input, AdvanceSpec::v2v(), &keep_even),
            twc(&ctx, &input, AdvanceSpec::v2v(), &keep_even),
            load_balanced(&ctx, &input, AdvanceSpec::v2v(), &keep_even),
        ] {
            assert!(out.as_slice().iter().all(|&v| v % 2 == 0));
        }
    }

    #[test]
    fn edge_counters_count_full_neighbor_lists() {
        let g = skewed_graph();
        let input = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        let expect = g.num_edges() as u64;
        for mode in [AdvanceMode::ThreadMapped, AdvanceMode::Twc, AdvanceMode::LoadBalanced] {
            let ctx = Context::new(&g);
            let _ = super::super::advance(
                &ctx,
                &input,
                AdvanceSpec::v2v().with_mode(mode),
                &AcceptAll,
            );
            assert_eq!(ctx.counters.edges(), expect, "mode {mode:?}");
        }
    }

    /// Three-compact reference for [`classify_degrees`] — the
    /// implementation this replaced (regression oracle for the
    /// single-pass rewrite).
    fn classify_reference(
        g: &gunrock_graph::Csr,
        items: &[u32],
        warp: u32,
        cta: u32,
    ) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let deg = |&it: &u32| g.out_degree(it);
        (
            compact(items, |it| deg(it) <= warp),
            compact(items, |it| {
                let d = deg(it);
                d > warp && d <= cta
            }),
            compact(items, |it| deg(it) > cta),
        )
    }

    #[test]
    fn single_pass_classification_matches_three_compacts() {
        let g = skewed_graph();
        let ctx = Context::new(&g);
        let (warp, cta) = (ctx.config.warp_size as u32, ctx.config.cta_size as u32);
        // small frontier: sequential path
        let small_input: Vec<u32> = (0..g.num_vertices() as u32).step_by(5).collect();
        assert!(small_input.len() < FRONTIER_SEQ_CUTOFF);
        // large frontier (with repeats): parallel path
        let large_input: Vec<u32> = (0..(FRONTIER_SEQ_CUTOFF as u32 * 2))
            .map(|i| i % g.num_vertices() as u32)
            .collect();
        for items in [small_input, large_input] {
            let got = classify_degrees(&ctx, &items, InputKind::Vertices, warp, cta);
            let want = classify_reference(&g, &items, warp, cta);
            assert_eq!(got, want);
            assert_eq!(got.0.len() + got.1.len() + got.2.len(), items.len());
        }
    }

    #[test]
    fn load_balanced_splits_when_rank_total_hits_limit() {
        // hub vertex with degree ~100; frontier repeats it so the rank
        // total crosses a small injected limit and forces the split path
        let deg = 100u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|d| (0, d)).collect();
        let g = GraphBuilder::new().directed().build(Coo::from_edges(deg as usize + 1, &edges));
        let input: Vec<u32> = vec![0; 50]; // 50 * 100 = 5000 ranks
        let f = Frontier::from_vec(input);
        let spec = AdvanceSpec::v2v();

        let ctx_ref = Context::new(&g);
        let reference = load_balanced(&ctx_ref, &f, spec, &AcceptAll);

        let ctx = Context::new(&g);
        let guarded = load_balanced_with_limit(&ctx, &f, spec, &AcceptAll, 256);
        assert_eq!(guarded.as_slice(), reference.as_slice(), "split path must preserve order");
        assert_eq!(ctx.counters.edges(), ctx_ref.counters.edges());
        assert_eq!(ctx.counters.edges(), 5000);
    }

    #[test]
    fn load_balanced_falls_back_for_single_oversized_item() {
        // one item whose own degree exceeds the limit: merge-path cannot
        // rank it, so the guard expands it thread-mapped
        let deg = 100u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|d| (0, d)).collect();
        let g = GraphBuilder::new().directed().build(Coo::from_edges(deg as usize + 1, &edges));
        let f = Frontier::from_vec(vec![0, 0, 0]);
        let spec = AdvanceSpec::v2v();

        let ctx = Context::new(&g);
        let out = load_balanced_with_limit(&ctx, &f, spec, &AcceptAll, 10);
        let mut got = out.into_vec();
        got.sort_unstable();
        let mut want: Vec<u32> = (1..=deg).flat_map(|d| [d, d, d]).collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert_eq!(ctx.counters.edges(), 300);
    }

    #[test]
    fn split_batches_stop_at_the_wall_clock_deadline() {
        use crate::policy::RunPolicy;
        // same hub shape as the split test: 50 * 100 = 5000 ranks in
        // ~20 batches under limit 256
        let deg = 100u32;
        let edges: Vec<(u32, u32)> = (1..=deg).map(|d| (0, d)).collect();
        let g = GraphBuilder::new().directed().build(Coo::from_edges(deg as usize + 1, &edges));
        let f = Frontier::from_vec(vec![0; 50]);
        let ctx = Context::new(&g)
            .with_policy(RunPolicy::unbounded().wall_clock_budget(std::time::Duration::ZERO));
        let guard = ctx.guard(); // arms the (already-expired) deadline
        let out = load_balanced_with_limit(&ctx, &f, AdvanceSpec::v2v(), &AcceptAll, 256);
        assert!(out.is_empty(), "expired deadline must stop before the first batch");
        assert_eq!(guard.check(0), Some(gunrock_engine::stats::RunOutcome::TimedOut));

        // without arming the guard, the same call runs to completion
        let ctx2 = Context::new(&g);
        let full = load_balanced_with_limit(&ctx2, &f, AdvanceSpec::v2v(), &AcceptAll, 256);
        assert_eq!(full.len(), 5000);
    }

    #[test]
    fn production_limit_never_triggers_split_on_normal_graphs() {
        let g = skewed_graph();
        let f = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        let ctx_a = Context::new(&g);
        let ctx_b = Context::new(&g);
        let a = load_balanced(&ctx_a, &f, AdvanceSpec::v2v(), &AcceptAll);
        let b = load_balanced_with_limit(
            &ctx_b,
            &f,
            AdvanceSpec::v2v(),
            &AcceptAll,
            u32::MAX as u64,
        );
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn neighbor_count_matches_degree_sum() {
        let g = skewed_graph();
        let ctx = Context::new(&g);
        let input = Frontier::from_vec((0..g.num_vertices() as u32).collect());
        assert_eq!(
            frontier_neighbor_count(&ctx, &input, InputKind::Vertices),
            g.num_edges() as u64
        );
    }

    use super::super::AdvanceMode;
}
