//! Fully-fused advance+filter — the §7 "kernel fusion" frontier.
//!
//! "Gunrock's implementation generally allows more opportunities to fuse
//! multiple operations into a single kernel than GAS+GPU implementations
//! (§4.3), but does not achieve the level of fusion of hardwired
//! implementations. This interesting (and unsolved, in the general case)
//! research problem represents the largest performance gap between
//! hardwired and Gunrock primitives."
//!
//! This module closes that gap for the traversal pattern: the visited
//! test-and-set (the filter's bitmask culling) runs *inside* the advance
//! loop, so the duplicated intermediate frontier is never materialized —
//! one kernel, like the hardwired b40c expansion. The trade-off the
//! paper implies still holds: the fused form is specialized (it bakes in
//! set-semantics output), whereas the two-kernel form composes with any
//! filter.

use super::{expansion_vertex, AdvanceSpec, OutputKind};
use crate::context::Context;
use crate::functor::AdvanceFunctor;
use crate::isolate::isolated;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::bitmap::BitSet;
use gunrock_engine::compact::compact;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::scan::scan_exclusive_u32;
use gunrock_engine::search::merge_path_partitions;
use gunrock_engine::stats::{OperatorKind, StepDirection};
use gunrock_engine::unsafe_slice::UnsafeSlice;
use gunrock_graph::EdgeId;
use rayon::prelude::*;
use std::time::Instant;

/// Marks an edge rank that produced no output (cond failed or the vertex
/// was already visited). Cannot collide with a real vertex id: graph
/// construction rejects `num_vertices >= u32::MAX` (see `Csr::validate`).
const INVALID_SLOT: u32 = u32::MAX;

/// Push advance with the visited-bitmap filter fused into the edge loop:
/// a destination enters the output frontier iff the functor accepts the
/// edge AND the `test_and_set` on `visited` wins — each vertex globally
/// at most once, with no intermediate duplicated frontier. Uses the
/// hybrid workload mapping (thread-mapped below the LB threshold,
/// load-balanced above).
pub fn advance_filter_fused<F: AdvanceFunctor, B: BitSet>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
    visited: &B,
) -> Frontier {
    assert_eq!(
        spec.output,
        OutputKind::Vertices,
        "fused advance+filter produces vertex frontiers"
    );
    if input.is_empty() {
        return Frontier::new();
    }
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| (Instant::now(), ctx.counters.edges()));
    let result = isolated(ctx, "advance", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("advance:fused");
        }
        let work = super::push::frontier_neighbor_count(ctx, input, spec.input);
        // The load-balanced path ranks edges in u32 (like `load_balanced`);
        // route ranking totals at or above u32::MAX to the thread-mapped
        // path, which has no such limit.
        // CAST: u64 -> usize is lossless on the 64-bit targets this engine supports;
        // the u32::MAX widening is exact.
        if work as usize > ctx.config.lb_threshold && work < u32::MAX as u64 {
            (fused_load_balanced(ctx, input, spec, functor, visited), "fused:load_balanced")
        } else {
            (fused_thread_mapped(ctx, input, spec, functor, visited), "fused:thread_mapped")
        }
    });
    let Some((out, strategy)) = result else { return Frontier::new() };
    if let (Some((start, edges0)), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Advance,
            strategy,
            Some(StepDirection::Push),
            input.len() as u64,
            out.len() as u64,
            ctx.counters.edges() - edges0,
            start.elapsed(),
        );
    }
    out
}

fn fused_thread_mapped<F: AdvanceFunctor, B: BitSet>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
    visited: &B,
) -> Frontier {
    let g = ctx.graph;
    let grain = grain_size(input.len());
    let per_chunk: Vec<(Vec<u32>, u64)> = input
        .as_slice()
        .par_chunks(grain)
        .map(|chunk| {
            let mut local = Vec::new(); // ALLOC-OK(per-task local; fused kernel materializes no intermediate frontier)
            let mut edges = 0u64;
            let cols = g.col_indices();
            for &item in chunk {
                let src = expansion_vertex(ctx, spec.input, item);
                let range = g.edge_range(src);
                edges += range.len() as u64;
                for e in range {
                    let dst = cols[e];
                    if functor.cond_edge(src, dst, e as EdgeId)
                        // CAST: vertex ids are u32 widened to usize for indexing — lossless.
                        && !visited.test_and_set(dst as usize)
                    {
                        functor.apply_edge(src, dst, e as EdgeId);
                        local.push(dst);
                    }
                }
            }
            (local, edges)
        })
        .collect(); // ALLOC-OK(one merge per fused launch)
    ctx.counters.add_edges(per_chunk.iter().map(|(_, e)| e).sum());
    // ALLOC-OK(one merge per fused launch)
    Frontier::from_vec(concat_chunks(per_chunk.into_iter().map(|(v, _)| v).collect()))
}

fn fused_load_balanced<F: AdvanceFunctor, B: BitSet>(
    ctx: &Context<'_>,
    input: &Frontier,
    spec: AdvanceSpec,
    functor: &F,
    visited: &B,
) -> Frontier {
    let g = ctx.graph;
    let items = input.as_slice();
    let degrees: Vec<u32> = items
        .par_iter()
        .map(|&it| g.out_degree(expansion_vertex(ctx, spec.input, it)))
        .collect(); // ALLOC-OK(fused LB runs only above lb_threshold, never in the steady-state small loop)
    let (scanned, total) = scan_exclusive_u32(&degrees);
    ctx.counters.add_edges(total as u64);
    if total == 0 {
        return Frontier::new();
    }
    let chunk = ctx.config.cta_size;
    let starts = merge_path_partitions(&scanned, total, chunk);
    // CAST: the caller routes here only when total < u32::MAX, so every edge
    // rank (w, seg_base, row_start) and chunk bound fits u32; vertex/edge ids
    // widen to usize losslessly.
    let mut slots: Vec<u32> = vec![INVALID_SLOT; total as usize]; // ALLOC-OK(sized by this launch's total edge work)
    {
        gunrock_engine::racecheck::begin_phase();
        let out_ref = UnsafeSlice::new(&mut slots);
        starts.par_iter().enumerate().for_each(|(ci, &seg_start)| {
            let w0 = (ci * chunk) as u32;
            let w1 = (((ci + 1) * chunk) as u32).min(total);
            let mut seg = seg_start as usize;
            let mut src = expansion_vertex(ctx, spec.input, items[seg]);
            let mut seg_base = scanned[seg];
            let mut row_start = g.edge_range(src).start as u32;
            let cols = g.col_indices();
            for w in w0..w1 {
                while seg + 1 < items.len() && scanned[seg + 1] <= w {
                    seg += 1;
                    src = expansion_vertex(ctx, spec.input, items[seg]);
                    seg_base = scanned[seg];
                    row_start = g.edge_range(src).start as u32;
                }
                let e = row_start + (w - seg_base);
                let dst = cols[e as usize];
                if functor.cond_edge(src, dst, e) && !visited.test_and_set(dst as usize) {
                    functor.apply_edge(src, dst, e);
                    // SAFETY: each rank w written by exactly one chunk.
                    unsafe { out_ref.write(w as usize, dst) };
                }
            }
        });
    }
    Frontier::from_vec(compact(&slots, |&v| v != INVALID_SLOT))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::AcceptAll;
    use gunrock_engine::bitmap::AtomicBitmap;
    use gunrock_graph::{generators, Coo, GraphBuilder};

    #[test]
    fn fused_output_is_a_set_of_new_discoveries() {
        // diamond: 0-1, 0-2, 1-3, 2-3: both 1 and 2 reach 3, fused
        // output must contain 3 exactly once
        let g =
            GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]));
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(4);
        visited.set(0);
        visited.set(1);
        visited.set(2);
        let out = advance_filter_fused(
            &ctx,
            &Frontier::from_vec(vec![1, 2]),
            AdvanceSpec::v2v(),
            &AcceptAll,
            &visited,
        );
        assert_eq!(out.as_slice(), &[3]);
    }

    #[test]
    fn fused_equals_advance_then_culling_filter() {
        let g = GraphBuilder::new().build(generators::rmat(9, 16, Default::default(), 3));
        let n = g.num_vertices();
        let frontier = Frontier::from_vec((0..n as u32).step_by(5).collect());
        // fused path
        let fused = {
            let ctx = Context::new(&g);
            let visited = AtomicBitmap::new(n);
            for v in &frontier {
                visited.set(v as usize);
            }
            let mut v =
                advance_filter_fused(&ctx, &frontier, AdvanceSpec::v2v(), &AcceptAll, &visited)
                    .into_vec();
            v.sort_unstable();
            v
        };
        // two-kernel path
        let two_step = {
            let ctx = Context::new(&g);
            let visited = AtomicBitmap::new(n);
            for v in &frontier {
                visited.set(v as usize);
            }
            let raw = crate::advance::advance(&ctx, &frontier, AdvanceSpec::v2v(), &AcceptAll);
            let mut v = crate::filter::culling::filter_with_culling(
                &ctx,
                &raw,
                &visited,
                &crate::functor::VertexCond(|_| true),
                crate::filter::culling::CullingConfig::default(),
            )
            .into_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(fused, two_step);
    }

    #[test]
    fn both_workload_mappings_agree() {
        let g = GraphBuilder::new().build(generators::rmat(9, 16, Default::default(), 7));
        let n = g.num_vertices();
        let frontier = Frontier::from_vec((0..n as u32).step_by(3).collect());
        let run = |threshold: usize| {
            let config = gunrock_engine::EngineConfig::new().with_lb_threshold(threshold);
            let ctx = Context::new(&g).with_config(config);
            let visited = AtomicBitmap::new(n);
            let mut v =
                advance_filter_fused(&ctx, &frontier, AdvanceSpec::v2v(), &AcceptAll, &visited)
                    .into_vec();
            v.sort_unstable();
            v
        };
        assert_eq!(run(usize::MAX), run(0)); // thread-mapped vs load-balanced
    }

    #[test]
    fn empty_input() {
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(2);
        let out = advance_filter_fused(
            &ctx,
            &Frontier::new(),
            AdvanceSpec::v2v(),
            &AcceptAll,
            &visited,
        );
        assert!(out.is_empty());
    }
}
