//! Pull-direction advance (§4.1.1).
//!
//! "Gunrock internally converts the current frontier into a bitmap of
//! vertices, generates a new frontier of all unvisited nodes, then uses
//! an advance step to 'pull' the computation from these nodes'
//! predecessors if they are valid in the bitmap."
//!
//! Each *unvisited* candidate scans its in-neighbors until one is found
//! in the current-frontier bitmap and the functor accepts the edge; the
//! early exit is what saves edge visits once the frontier dwarfs the
//! unvisited set (Beamer et al.). Note the functor sees edge ids of the
//! *reverse* graph (weights transpose along, so weight lookups stay
//! correct).

use crate::context::Context;
use crate::functor::AdvanceFunctor;
use crate::isolate::isolated;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_engine::config::SEQUENTIAL_CUTOFF;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::{OperatorKind, StepDirection};
use gunrock_graph::EdgeId;
use rayon::prelude::*;
use std::time::Instant;

/// Edge-scan interval between cooperative abort polls inside one pull
/// chunk: frequent enough that a deadline or cancel lands within
/// microseconds, rare enough to stay invisible in the scan loop. The
/// poll uses [`Context::abort_mid_operator`], so a run with an active
/// checkpoint policy completes the operator instead of truncating —
/// snapshots must only be cut at consistent operator boundaries.
const ABORT_POLL_EDGES: u64 = 4096;

/// Builds the frontier-membership bitmap for a pull step.
pub fn frontier_bitmap(num_vertices: usize, frontier: &Frontier) -> AtomicBitmap {
    let bm = AtomicBitmap::new(num_vertices);
    if frontier.len() < SEQUENTIAL_CUTOFF {
        // CAST: vertex ids are u32 widened to usize for bitmap indexing — lossless.
        for v in frontier {
            bm.set(v as usize);
        }
    } else {
        frontier.as_slice().par_iter().for_each(|&v| bm.set(v as usize));
    }
    bm
}

/// Runs one pull-direction advance: for each candidate vertex (typically
/// the unvisited set), scan in-neighbors against `in_frontier`; the first
/// edge accepted by the functor admits the candidate to the output
/// frontier and stops its scan.
pub fn advance_pull<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    candidates: &[u32],
    in_frontier: &AtomicBitmap,
    functor: &F,
) -> Frontier {
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| (Instant::now(), ctx.counters.edges()));
    let result = isolated(ctx, "advance", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("advance:pull");
        }
        let rev = ctx.reverse_graph();
        let grain = grain_size(candidates.len());
        let per_chunk: Vec<(Vec<u32>, u64)> = candidates
            .par_chunks(grain)
            .map(|chunk| {
                let mut local = Vec::new(); // ALLOC-OK(per-task local; pull runs once per direction switch, not per iteration)
                let mut edges = 0u64;
                // cancel/deadline abort: a raised flag truncates this chunk
                // (and skips it entirely when raised before the chunk
                // starts); the enact loop's next guard check reports the
                // trip and discards the partial frontier. Suppressed when
                // checkpointing, so exit snapshots see complete operators.
                if ctx.abort_mid_operator() {
                    return (local, edges);
                }
                let mut next_poll = ABORT_POLL_EDGES;
                let cols = rev.col_indices();
                'scan: for &v in chunk {
                    for e in rev.edge_range(v) {
                        edges += 1;
                        let u = cols[e];
                        // CAST: u widens u32 -> usize; e < num_edges < EdgeId::MAX by Csr::validate.
                        if in_frontier.get(u as usize) && functor.cond_edge(u, v, e as EdgeId) {
                            functor.apply_edge(u, v, e as EdgeId);
                            local.push(v);
                            break; // one valid predecessor suffices
                        }
                    }
                    if edges >= next_poll {
                        next_poll = edges + ABORT_POLL_EDGES;
                        if ctx.abort_mid_operator() {
                            break 'scan;
                        }
                    }
                }
                (local, edges)
            })
            .collect(); // ALLOC-OK(one merge per pull launch)
        ctx.counters.add_edges(per_chunk.iter().map(|(_, e)| e).sum());
        // ALLOC-OK(one merge per pull launch)
        Frontier::from_vec(concat_chunks(per_chunk.into_iter().map(|(v, _)| v).collect()))
    });
    let Some(out) = result else { return Frontier::new() };
    if let (Some((start, edges0)), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Advance,
            "pull",
            Some(StepDirection::Pull),
            candidates.len() as u64,
            out.len() as u64,
            ctx.counters.edges() - edges0,
            start.elapsed(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::AcceptAll;
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    fn pull_discovers_exactly_the_next_bfs_level() {
        // path 0 - 1 - 2 - 3 (undirected)
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
        let ctx = Context::new(&g).with_reverse(&g);
        let frontier = Frontier::single(1);
        let bm = frontier_bitmap(4, &frontier);
        // candidates: unvisited = {2, 3} (0 already visited)
        let out = advance_pull(&ctx, &[2, 3], &bm, &AcceptAll);
        assert_eq!(out.as_slice(), &[2]);
    }

    #[test]
    fn pull_early_exit_limits_edges_examined() {
        // hub 0 connected to everything; frontier = {0}; all others pull
        let edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let g = GraphBuilder::new().build(Coo::from_edges(100, &edges));
        let ctx = Context::new(&g).with_reverse(&g);
        let bm = frontier_bitmap(100, &Frontier::single(0));
        let candidates: Vec<u32> = (1..100).collect();
        let out = advance_pull(&ctx, &candidates, &bm, &AcceptAll);
        assert_eq!(out.len(), 99);
        // each candidate's in-list starts with the hub: one edge each
        assert_eq!(ctx.counters.edges(), 99);
    }

    #[test]
    fn raised_cancel_flag_truncates_the_pull_scan() {
        use crate::policy::RunPolicy;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // large synthetic instance: star hub 0 -> {1..N}, frontier = {0},
        // every other vertex is an unvisited candidate
        let n: u32 = 50_000;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let g = GraphBuilder::new().build(Coo::from_edges(n as usize, &edges));
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = Context::new(&g)
            .with_reverse(&g)
            .with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
        let bm = frontier_bitmap(n as usize, &Frontier::single(0));
        let candidates: Vec<u32> = (1..n).collect();
        // flag down: the full next level comes back
        let full = advance_pull(&ctx, &candidates, &bm, &AcceptAll);
        assert_eq!(full.len(), (n - 1) as usize);
        // flag up before launch: every chunk bails out at its first poll,
        // long before the frontier is fully scanned
        flag.store(true, Ordering::Release);
        let truncated = advance_pull(&ctx, &candidates, &bm, &AcceptAll);
        assert!(
            truncated.len() < full.len(),
            "cancel mid-operator must truncate: got {} of {}",
            truncated.len(),
            full.len()
        );
        assert!(!ctx.is_poisoned(), "cooperative abort is not a failure");
    }

    #[test]
    fn bitmap_reflects_frontier_membership() {
        let bm = frontier_bitmap(10, &Frontier::from_vec(vec![1, 7]));
        assert!(bm.get(1) && bm.get(7));
        assert!(!bm.get(0) && !bm.get(9));
    }

    #[test]
    fn candidates_with_no_frontier_neighbor_stay_out() {
        // two disconnected edges: 0-1, 2-3
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (2, 3)]));
        let ctx = Context::new(&g).with_reverse(&g);
        let bm = frontier_bitmap(4, &Frontier::single(0));
        let out = advance_pull(&ctx, &[1, 2, 3], &bm, &AcceptAll);
        assert_eq!(out.as_slice(), &[1]);
    }
}
