//! Pull-direction advance (§4.1.1).
//!
//! "Gunrock internally converts the current frontier into a bitmap of
//! vertices, generates a new frontier of all unvisited nodes, then uses
//! an advance step to 'pull' the computation from these nodes'
//! predecessors if they are valid in the bitmap."
//!
//! Each *unvisited* candidate scans its in-neighbors until one is found
//! in the current-frontier bitmap and the functor accepts the edge; the
//! early exit is what saves edge visits once the frontier dwarfs the
//! unvisited set (Beamer et al.). Note the functor sees edge ids of the
//! *reverse* graph (weights transpose along, so weight lookups stay
//! correct).
//!
//! Two formulations are provided:
//!
//! * [`advance_pull`] — candidates as an explicit id list (the classic
//!   form; kept for callers that already hold a list);
//! * [`advance_pull_sweep`] — the masked word sweep (GraphBLAST's
//!   masked-SpMV view): candidates and output are word-addressable
//!   [`PooledBitmap`]s, empty mask words are skipped 64 bits at a time
//!   with `trailing_zeros` iteration inside non-empty ones, and
//!   discovered candidates are *cleared from the candidate bitmap in
//!   place* — the unvisited set maintains itself incrementally, no O(n)
//!   re-prune between iterations. Per-task word ranges are disjoint, so
//!   the sweep mutates its bitmaps without a single atomic RMW.

use crate::context::Context;
use crate::functor::AdvanceFunctor;
use crate::isolate::isolated;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::bitmap::{BitSet, PooledBitmap};
use gunrock_engine::config::SEQUENTIAL_CUTOFF;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::{OperatorKind, StepDirection};
use gunrock_graph::EdgeId;
use rayon::prelude::*;
use std::time::Instant;

/// Edge-scan interval between cooperative abort polls inside one pull
/// chunk: frequent enough that a deadline or cancel lands within
/// microseconds, rare enough to stay invisible in the scan loop. The
/// poll uses [`Context::abort_mid_operator`], so a run with an active
/// checkpoint policy completes the operator instead of truncating —
/// snapshots must only be cut at consistent operator boundaries.
const ABORT_POLL_EDGES: u64 = 4096;

/// Builds the frontier-membership bitmap for a pull step. Word storage
/// comes from the context's buffer pool (release it back with
/// [`PooledBitmap::release`] when the pull phase ends), so steady-state
/// direction switches perform no heap allocation and the pool counters
/// cover bitmap traffic.
pub fn frontier_bitmap(ctx: &Context<'_>, frontier: &Frontier) -> PooledBitmap {
    let mut bm = PooledBitmap::take(ctx.pool(), ctx.num_vertices());
    if frontier.len() < SEQUENTIAL_CUTOFF {
        bm.fill_from_frontier(frontier);
    } else {
        // CAST: vertex ids are u32 widened to usize for bitmap indexing — lossless.
        frontier.as_slice().par_iter().for_each(|&v| bm.set(v as usize));
    }
    bm
}

/// Runs one pull-direction advance: for each candidate vertex (typically
/// the unvisited set), scan in-neighbors against `in_frontier`; the first
/// edge accepted by the functor admits the candidate to the output
/// frontier and stops its scan.
pub fn advance_pull<F: AdvanceFunctor, B: BitSet>(
    ctx: &Context<'_>,
    candidates: &[u32],
    in_frontier: &B,
    functor: &F,
) -> Frontier {
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| (Instant::now(), ctx.counters.edges()));
    let result = isolated(ctx, "advance", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("advance:pull");
        }
        let rev = ctx.reverse_graph();
        let grain = grain_size(candidates.len());
        let per_chunk: Vec<(Vec<u32>, u64)> = candidates
            .par_chunks(grain)
            .map(|chunk| {
                let mut local = Vec::new(); // ALLOC-OK(per-task local on the list-candidates path; the steady-state pull loop uses advance_pull_sweep instead)
                let mut edges = 0u64;
                // cancel/deadline abort: a raised flag truncates this chunk
                // (and skips it entirely when raised before the chunk
                // starts); the enact loop's next guard check reports the
                // trip and discards the partial frontier. Suppressed when
                // checkpointing, so exit snapshots see complete operators.
                if ctx.abort_mid_operator() {
                    return (local, edges);
                }
                let mut next_poll = ABORT_POLL_EDGES;
                let cols = rev.col_indices();
                'scan: for &v in chunk {
                    for e in rev.edge_range(v) {
                        edges += 1;
                        let u = cols[e];
                        // CAST: u widens u32 -> usize; e < num_edges < EdgeId::MAX by Csr::validate.
                        if in_frontier.get(u as usize) && functor.cond_edge(u, v, e as EdgeId) {
                            functor.apply_edge(u, v, e as EdgeId);
                            local.push(v);
                            break; // one valid predecessor suffices
                        }
                    }
                    if edges >= next_poll {
                        next_poll = edges + ABORT_POLL_EDGES;
                        if ctx.abort_mid_operator() {
                            break 'scan;
                        }
                    }
                }
                (local, edges)
            })
            .collect(); // ALLOC-OK(one merge per pull launch)
        ctx.counters.add_edges(per_chunk.iter().map(|(_, e)| e).sum());
        // ALLOC-OK(one merge per pull launch)
        Frontier::from_vec(concat_chunks(per_chunk.into_iter().map(|(v, _)| v).collect()))
    });
    let Some(out) = result else { return Frontier::new() };
    if let (Some((start, edges0)), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step_with_candidates(
            OperatorKind::Advance,
            "pull",
            Some(StepDirection::Pull),
            in_frontier.count_ones() as u64,
            candidates.len() as u64,
            out.len() as u64,
            ctx.counters.edges() - edges0,
            start.elapsed(),
        );
    }
    out
}

/// The masked word sweep: one pull-direction advance where candidates,
/// current frontier, and output are all dense bitmaps.
///
/// For every non-zero word of `candidates` (zero words — fully visited
/// neighborhoods — are skipped wholesale), each set bit `v` scans its
/// in-neighbors against `in_frontier`; the first accepted edge sets `v`
/// in `out` and *clears it from `candidates`*, so the caller's unvisited
/// set shrinks incrementally with zero bookkeeping. Word ranges are
/// partitioned disjointly across tasks and `out` shares the partition
/// (bit `v` lives at the same word index in both bitmaps), so all bitmap
/// writes are plain stores.
///
/// `out` must be cleared on entry. Returns the number of vertices
/// discovered. All three bitmaps must span `ctx.num_vertices()` bits.
pub fn advance_pull_sweep<F: AdvanceFunctor>(
    ctx: &Context<'_>,
    candidates: &mut PooledBitmap,
    in_frontier: &PooledBitmap,
    out: &mut PooledBitmap,
    functor: &F,
) -> u64 {
    let n = ctx.num_vertices();
    assert_eq!(candidates.len(), n, "candidate bitmap must span the graph");
    assert_eq!(in_frontier.len(), n, "frontier bitmap must span the graph");
    assert_eq!(out.len(), n, "output bitmap must span the graph");
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| {
        (
            Instant::now(),
            ctx.counters.edges(),
            in_frontier.count_ones(),
            candidates.count_ones(),
        )
    });
    let result = isolated(ctx, "advance", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("advance:pull_sweep");
        }
        let rev = ctx.reverse_graph();
        let cols = rev.col_indices();
        let nw = candidates.word_count();
        let wgrain = grain_size(nw);
        let (discovered, edges) = candidates
            .words_mut()
            .par_chunks_mut(wgrain)
            .zip(out.words_mut().par_chunks_mut(wgrain))
            .enumerate()
            .map(|(ci, (cand_words, out_words))| {
                let mut found = 0u64;
                let mut edges = 0u64;
                // cancel/deadline abort, as in the list-candidates path:
                // truncation is suppressed while checkpointing.
                if ctx.abort_mid_operator() {
                    return (found, edges);
                }
                let mut next_poll = ABORT_POLL_EDGES;
                'sweep: for (i, (cw, ow)) in
                    cand_words.iter_mut().zip(out_words.iter_mut()).enumerate()
                {
                    // whole-word skip: a zero mask word is 64 vertices with
                    // nothing to pull
                    let mut bits = *cw.get_mut();
                    if bits == 0 {
                        continue;
                    }
                    let word_base = ((ci * wgrain + i) * 64) as u64;
                    while bits != 0 {
                        let b = bits.trailing_zeros() as u64;
                        bits &= bits - 1;
                        // CAST: word_base + b < num_vertices < u32::MAX by Csr::validate
                        // (candidate bitmaps mask their tail bits to zero).
                        let v = (word_base + b) as u32;
                        for e in rev.edge_range(v) {
                            edges += 1;
                            let u = cols[e];
                            // CAST: u widens u32 -> usize; e < num_edges < EdgeId::MAX by Csr::validate.
                            if in_frontier.get(u as usize)
                                && functor.cond_edge(u, v, e as EdgeId)
                            {
                                functor.apply_edge(u, v, e as EdgeId);
                                let mask = 1u64 << b;
                                *ow.get_mut() |= mask;
                                *cw.get_mut() &= !mask;
                                found += 1;
                                break; // one valid predecessor suffices
                            }
                        }
                        if edges >= next_poll {
                            next_poll = edges + ABORT_POLL_EDGES;
                            if ctx.abort_mid_operator() {
                                break 'sweep;
                            }
                        }
                    }
                }
                (found, edges)
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        ctx.counters.add_edges(edges);
        discovered
    });
    let Some(discovered) = result else { return 0 };
    if let (Some((start, edges0, in_pop, cand_pop)), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step_with_candidates(
            OperatorKind::Advance,
            "pull_sweep",
            Some(StepDirection::Pull),
            in_pop as u64,
            cand_pop as u64,
            discovered,
            ctx.counters.edges() - edges0,
            start.elapsed(),
        );
    }
    discovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::AcceptAll;
    use gunrock_graph::{Coo, GraphBuilder};

    #[test]
    fn pull_discovers_exactly_the_next_bfs_level() {
        // path 0 - 1 - 2 - 3 (undirected)
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3)]));
        let ctx = Context::new(&g).with_reverse(&g);
        let frontier = Frontier::single(1);
        let bm = frontier_bitmap(&ctx, &frontier);
        // candidates: unvisited = {2, 3} (0 already visited)
        let out = advance_pull(&ctx, &[2, 3], &bm, &AcceptAll);
        assert_eq!(out.as_slice(), &[2]);
        bm.release(ctx.pool());
    }

    #[test]
    fn pull_early_exit_limits_edges_examined() {
        // hub 0 connected to everything; frontier = {0}; all others pull
        let edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let g = GraphBuilder::new().build(Coo::from_edges(100, &edges));
        let ctx = Context::new(&g).with_reverse(&g);
        let bm = frontier_bitmap(&ctx, &Frontier::single(0));
        let candidates: Vec<u32> = (1..100).collect();
        let out = advance_pull(&ctx, &candidates, &bm, &AcceptAll);
        assert_eq!(out.len(), 99);
        // each candidate's in-list starts with the hub: one edge each
        assert_eq!(ctx.counters.edges(), 99);
    }

    #[test]
    fn sweep_matches_list_pull_and_maintains_candidates() {
        let edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
        let g = GraphBuilder::new().build(Coo::from_edges(100, &edges));
        let ctx = Context::new(&g).with_reverse(&g);
        let in_frontier = frontier_bitmap(&ctx, &Frontier::single(0));
        let mut candidates = PooledBitmap::take(ctx.pool(), 100);
        candidates.fill_from_frontier(&Frontier::from_vec((1..100).collect()));
        let mut out = PooledBitmap::take(ctx.pool(), 100);
        let discovered =
            advance_pull_sweep(&ctx, &mut candidates, &in_frontier, &mut out, &AcceptAll);
        assert_eq!(discovered, 99);
        assert_eq!(out.count_ones(), 99);
        assert!(!out.get(0));
        // discovered candidates were cleared in place — incremental
        // maintenance, no re-prune pass
        assert_eq!(candidates.count_ones(), 0);
        // early exit still bounds edge work: one hub edge per candidate
        assert_eq!(ctx.counters.edges(), 99);
    }

    #[test]
    fn sweep_skips_vertices_with_no_frontier_predecessor() {
        // two disconnected edges: 0-1, 2-3; frontier = {0}
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (2, 3)]));
        let ctx = Context::new(&g).with_reverse(&g);
        let in_frontier = frontier_bitmap(&ctx, &Frontier::single(0));
        let mut candidates = PooledBitmap::take(ctx.pool(), 4);
        candidates.fill_from_frontier(&Frontier::from_vec(vec![1, 2, 3]));
        let mut out = PooledBitmap::take(ctx.pool(), 4);
        let discovered =
            advance_pull_sweep(&ctx, &mut candidates, &in_frontier, &mut out, &AcceptAll);
        assert_eq!(discovered, 1);
        assert_eq!(out.iter_ones().collect::<Vec<_>>(), vec![1]);
        // non-discovered candidates stay in the candidate set
        assert_eq!(candidates.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn raised_cancel_flag_truncates_the_pull_scan() {
        use crate::policy::RunPolicy;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // large synthetic instance: star hub 0 -> {1..N}, frontier = {0},
        // every other vertex is an unvisited candidate
        let n: u32 = 50_000;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let g = GraphBuilder::new().build(Coo::from_edges(n as usize, &edges));
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = Context::new(&g)
            .with_reverse(&g)
            .with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
        let bm = frontier_bitmap(&ctx, &Frontier::single(0));
        let candidates: Vec<u32> = (1..n).collect();
        // flag down: the full next level comes back
        let full = advance_pull(&ctx, &candidates, &bm, &AcceptAll);
        assert_eq!(full.len(), (n - 1) as usize);
        // flag up before launch: every chunk bails out at its first poll,
        // long before the frontier is fully scanned
        flag.store(true, Ordering::Release);
        let truncated = advance_pull(&ctx, &candidates, &bm, &AcceptAll);
        assert!(
            truncated.len() < full.len(),
            "cancel mid-operator must truncate: got {} of {}",
            truncated.len(),
            full.len()
        );
        assert!(!ctx.is_poisoned(), "cooperative abort is not a failure");
    }

    #[test]
    fn raised_cancel_flag_truncates_the_word_sweep() {
        use crate::policy::RunPolicy;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        let n: u32 = 50_000;
        let edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        let g = GraphBuilder::new().build(Coo::from_edges(n as usize, &edges));
        let flag = Arc::new(AtomicBool::new(false));
        let ctx = Context::new(&g)
            .with_reverse(&g)
            .with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
        let in_frontier = frontier_bitmap(&ctx, &Frontier::single(0));
        let all_candidates = Frontier::from_vec((1..n).collect());
        let mut candidates = PooledBitmap::take(ctx.pool(), n as usize);
        candidates.fill_from_frontier(&all_candidates);
        let mut out = PooledBitmap::take(ctx.pool(), n as usize);
        let full =
            advance_pull_sweep(&ctx, &mut candidates, &in_frontier, &mut out, &AcceptAll);
        assert_eq!(full, (n - 1) as u64);
        // reset state, raise the flag: chunks bail at their entry poll
        candidates.clear_all();
        candidates.fill_from_frontier(&all_candidates);
        out.clear_all();
        flag.store(true, Ordering::Release);
        let truncated =
            advance_pull_sweep(&ctx, &mut candidates, &in_frontier, &mut out, &AcceptAll);
        assert!(
            truncated < full,
            "cancel mid-operator must truncate: got {truncated} of {full}"
        );
        assert!(!ctx.is_poisoned(), "cooperative abort is not a failure");
    }

    #[test]
    fn bitmap_reflects_frontier_membership() {
        let g = GraphBuilder::new().build(Coo::from_edges(10, &[(0, 1)]));
        let ctx = Context::new(&g);
        let bm = frontier_bitmap(&ctx, &Frontier::from_vec(vec![1, 7]));
        assert!(bm.get(1) && bm.get(7));
        assert!(!bm.get(0) && !bm.get(9));
        // storage came from (and returns to) the context's pool
        assert_eq!(ctx.pool().stats().checkouts, 1);
        bm.release(ctx.pool());
        assert_eq!(ctx.pool().stats().releases, 1);
    }

    #[test]
    fn candidates_with_no_frontier_neighbor_stay_out() {
        // two disconnected edges: 0-1, 2-3
        let g = GraphBuilder::new().build(Coo::from_edges(4, &[(0, 1), (2, 3)]));
        let ctx = Context::new(&g).with_reverse(&g);
        let bm = frontier_bitmap(&ctx, &Frontier::single(0));
        let out = advance_pull(&ctx, &[1, 2, 3], &bm, &AcceptAll);
        assert_eq!(out.as_slice(), &[1]);
    }
}
