//! Bit-parallel multi-source batched advance (MS-BFS; PAPERS.md).
//!
//! The frontier abstraction amortizes one sweep over many vertices; lane
//! packing amortizes one sweep over many *traversals*. Up to
//! [`LANES`](gunrock_engine::lanes::LANES) independent source queries run
//! in a single traversal: vertex `v` carries one `u64` frontier word
//! whose bit `l` means "lane `l` reached `v` this level", and a matching
//! `seen` word accumulating every lane that has ever reached `v`.
//!
//! One batched level is two phases inside one kernel launch:
//!
//! 1. **Scatter** — every active vertex ORs its whole frontier word into
//!    each out-neighbor's `next` word with a single `fetch_or`: up to 64
//!    traversals' worth of discovery per atomic, per edge.
//! 2. **Update sweep** — disjoint word ranges (one word per vertex) are
//!    swept without atomics: `new = next & !seen`, `seen |= new`,
//!    `next = new`. Zero `next` words — vertices no lane reached — are
//!    skipped wholesale, exactly like the masked pull sweep's zero-mask
//!    skip. A visitor callback sees each discovered vertex once with its
//!    new-lane word, which is where per-lane depth extraction lives.
//!
//! Below `EngineConfig::serial_threshold` active vertices both phases run
//! single-threaded on the same pooled buffers (mirroring the push-side
//! serial fast path), so tiny levels skip the fork/join entirely.

use crate::context::Context;
use crate::isolate::isolated;
use crate::util::grain_size;
use gunrock_engine::lanes::LaneMap;
use gunrock_engine::stats::{OperatorKind, StepDirection};
use rayon::prelude::*;
use std::time::Instant;

/// Edge-scan interval between cooperative abort polls inside one scatter
/// chunk — same cadence as the pull sweep: frequent enough that a
/// deadline or cancel lands within microseconds, rare enough to stay
/// invisible in the scan loop.
const ABORT_POLL_EDGES: u64 = 4096;

/// Result of one batched advance level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MsbfsSweep {
    /// Vertices that gained at least one new lane this level (each
    /// counted once, however many lanes reached it).
    pub discovered: u64,
    /// OR over every discovered vertex's new-lane word: bit `l` set
    /// means lane `l` discovered something this level and is still live.
    /// The caller feeds this back as the next level's `frontier_lanes`.
    pub lanes: u64,
}

/// Runs one bit-parallel multi-source advance level.
///
/// `frontier` holds the current level's lane words, `seen` the
/// accumulated discovery words, and `next` — which **must be all zero on
/// entry** — receives the new frontier: after the sweep `next[v]` is
/// exactly the set of lanes that discovered `v` this level. Callers
/// ping-pong `frontier`/`next` between levels (swap, then clear the new
/// scratch map).
///
/// `active` is the number of vertices with a non-zero `frontier` word
/// (the previous sweep's `discovered`; the distinct-source count at the
/// seed level) and `frontier_lanes` the OR over the frontier's words
/// (the previous sweep's `lanes`; the batch mask at the seed level) —
/// both are carried by the caller so the operator never pays an extra
/// O(n) sweep just for bookkeeping. They feed the serial-fast-path gate
/// and the `msbfs` StepRecord's `lanes_active` field respectively.
///
/// `visitor(v, new_lanes)` is invoked exactly once per discovered vertex
/// from disjoint word ranges (never twice for one vertex in one level),
/// which is where per-lane depth extraction hooks in.
///
/// The level runs panic-isolated: an injected fault (`advance:msbfs`) or
/// visitor panic poisons the context and returns an empty sweep; the
/// enact loop's next guard check reports `Failed`.
///
/// All three lane maps must span `ctx.num_vertices()` words.
pub fn advance_msbfs<V>(
    ctx: &Context<'_>,
    frontier: &LaneMap,
    seen: &mut LaneMap,
    next: &mut LaneMap,
    active: u64,
    frontier_lanes: u64,
    visitor: V,
) -> MsbfsSweep
where
    V: Fn(u32, u64) + Sync,
{
    let n = ctx.num_vertices();
    assert_eq!(frontier.len(), n, "frontier lane map must span the graph");
    assert_eq!(seen.len(), n, "seen lane map must span the graph");
    assert_eq!(next.len(), n, "next lane map must span the graph");
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| (Instant::now(), ctx.counters.edges()));
    let t = ctx.config.serial_threshold;
    // CAST: active is a vertex count < u32::MAX; widening compare only.
    let serial = t > 0 && active as usize <= t;
    let result = isolated(ctx, "advance", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("advance:msbfs");
        }
        if serial {
            scatter_serial(ctx, frontier, seen, next);
        } else {
            scatter(ctx, frontier, seen, next);
        }
        // Phase boundary: the scatter's atomic ORs and the update
        // sweep's plain stores never overlap in time.
        gunrock_engine::racecheck::begin_phase();
        if serial {
            update_serial(seen, next, &visitor)
        } else {
            update(seen, next, &visitor)
        }
    });
    let Some((discovered, lanes)) = result else { return MsbfsSweep::default() };
    if let (Some((start, edges0)), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step_lanes(
            OperatorKind::Advance,
            if serial { "msbfs:serial" } else { "msbfs" },
            Some(StepDirection::Push),
            active,
            u64::from(frontier_lanes.count_ones()),
            discovered,
            ctx.counters.edges() - edges0,
            start.elapsed(),
        );
    }
    MsbfsSweep { discovered, lanes }
}

/// Phase 1, parallel: every active vertex ORs its lane word into each
/// out-neighbor's `next` word. Disjoint vertex ranges read the frontier;
/// writes to `next` go through `fetch_or` because neighbors are shared
/// across tasks. Lanes the neighbor has already seen — or already
/// received from an earlier edge this level — are culled before the RMW
/// (the update sweep would drop them anyway via `next & !seen`), so
/// saturated words cost a read instead of a cache-line-dirtying OR and
/// the update sweep keeps its whole-word zero skip on dense levels.
/// `seen` is read-only during this phase (the update sweep that mutates
/// it runs strictly after), so the loads race with nothing.
fn scatter(ctx: &Context<'_>, frontier: &LaneMap, seen: &LaneMap, next: &mut LaneMap) {
    let g = ctx.graph;
    let cols = g.col_indices();
    let next_ref: &LaneMap = next;
    let vgrain = grain_size(frontier.len());
    let edges = frontier
        .words()
        .par_chunks(vgrain)
        .enumerate()
        .map(|(ci, fwords)| {
            let mut edges = 0u64;
            // cancel/deadline abort: a raised flag truncates this chunk
            // (and skips it entirely when raised before the chunk
            // starts); suppressed while checkpointing so exit snapshots
            // see complete operators.
            if ctx.abort_mid_operator() {
                return edges;
            }
            let mut next_poll = ABORT_POLL_EDGES;
            'scan: for (i, fw) in fwords.iter().enumerate() {
                // ORDERING: Relaxed — the frontier map is read-only during
                // the scatter phase; the previous sweep's join barrier
                // published these words.
                let fword = fw.load(std::sync::atomic::Ordering::Relaxed);
                // whole-word skip: a zero lane word is an inactive vertex
                if fword == 0 {
                    continue;
                }
                // CAST: ci * vgrain + i < num_vertices < u32::MAX by Csr::validate.
                let v = (ci * vgrain + i) as u32;
                for e in g.edge_range(v) {
                    edges += 1;
                    // CAST: u widens u32 -> usize for lane-map indexing — lossless.
                    let u = cols[e] as usize;
                    let want = fword & !seen.load(u);
                    // two threads can both pass this check and OR the
                    // same lanes; fetch_or is idempotent, so the race
                    // only costs a duplicate RMW, never a lost lane
                    if want != 0 && next_ref.load(u) & want != want {
                        next_ref.fetch_or(u, want);
                    }
                }
                if edges >= next_poll {
                    next_poll = edges + ABORT_POLL_EDGES;
                    if ctx.abort_mid_operator() {
                        break 'scan;
                    }
                }
            }
            edges
        })
        .sum();
    ctx.counters.add_edges(edges);
}

/// Phase 1, serial fast path: same scatter (including the seen-lane
/// culling) on one thread. `next` is held exclusively, so even the
/// neighbor ORs are plain read-modify-writes.
fn scatter_serial(ctx: &Context<'_>, frontier: &LaneMap, seen: &LaneMap, next: &mut LaneMap) {
    let g = ctx.graph;
    let cols = g.col_indices();
    let nwords = next.words_mut();
    let mut edges = 0u64;
    let mut next_poll = ABORT_POLL_EDGES;
    if ctx.abort_mid_operator() {
        return;
    }
    'scan: for v in 0..frontier.len() {
        let fword = frontier.load(v);
        // whole-word skip: a zero lane word is an inactive vertex
        if fword == 0 {
            continue;
        }
        // CAST: v < num_vertices < u32::MAX by Csr::validate.
        for e in g.edge_range(v as u32) {
            edges += 1;
            // CAST: u widens u32 -> usize for lane-map indexing — lossless.
            let u = cols[e] as usize;
            let want = fword & !seen.load(u);
            if want != 0 {
                *nwords[u].get_mut() |= want;
            }
        }
        if edges >= next_poll {
            next_poll = edges + ABORT_POLL_EDGES;
            if ctx.abort_mid_operator() {
                break 'scan;
            }
        }
    }
    ctx.counters.add_edges(edges);
}

/// Phase 2, parallel: disjoint word ranges of `next` and `seen` are
/// swept together without atomics — `new = next & !seen`, `seen |= new`,
/// `next = new` — and the visitor sees each discovered vertex once.
fn update<V>(seen: &mut LaneMap, next: &mut LaneMap, visitor: &V) -> (u64, u64)
where
    V: Fn(u32, u64) + Sync,
{
    let wgrain = grain_size(next.len());
    next.words_mut()
        .par_chunks_mut(wgrain)
        .zip(seen.words_mut().par_chunks_mut(wgrain))
        .enumerate()
        .map(|(ci, (next_words, seen_words))| {
            let mut found = 0u64;
            let mut lanes = 0u64;
            for (i, (nw, sw)) in next_words.iter_mut().zip(seen_words.iter_mut()).enumerate() {
                // whole-word skip: no lane reached this vertex
                let nxt = *nw.get_mut();
                if nxt == 0 {
                    continue;
                }
                let new = nxt & !*sw.get_mut();
                *nw.get_mut() = new;
                if new != 0 {
                    *sw.get_mut() |= new;
                    found += 1;
                    lanes |= new;
                    // CAST: ci * wgrain + i < num_vertices < u32::MAX by Csr::validate.
                    visitor((ci * wgrain + i) as u32, new);
                }
            }
            (found, lanes)
        })
        .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 | b.1))
}

/// Phase 2, serial fast path: the same update sweep on one thread.
fn update_serial<V>(seen: &mut LaneMap, next: &mut LaneMap, visitor: &V) -> (u64, u64)
where
    V: Fn(u32, u64) + Sync,
{
    let mut found = 0u64;
    let mut lanes = 0u64;
    for (v, (nw, sw)) in
        next.words_mut().iter_mut().zip(seen.words_mut().iter_mut()).enumerate()
    {
        let nxt = *nw.get_mut();
        if nxt == 0 {
            continue;
        }
        let new = nxt & !*sw.get_mut();
        *nw.get_mut() = new;
        if new != 0 {
            *sw.get_mut() |= new;
            found += 1;
            lanes |= new;
            // CAST: v < num_vertices < u32::MAX by Csr::validate.
            visitor(v as u32, new);
        }
    }
    (found, lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gunrock_engine::lanes::{lane_mask, LaneMap};
    use gunrock_engine::EngineConfig;
    use gunrock_graph::{Coo, GraphBuilder};
    use std::sync::atomic::{AtomicU32, Ordering};

    fn path4() -> gunrock_graph::Csr {
        // directed path 0 -> 1 -> 2 -> 3
        GraphBuilder::new().directed().build(Coo::from_edges(4, &[(0, 1), (1, 2), (2, 3)]))
    }

    fn run_level(
        ctx: &Context<'_>,
        frontier: &LaneMap,
        seen: &mut LaneMap,
        next: &mut LaneMap,
        active: u64,
        lanes: u64,
    ) -> (MsbfsSweep, Vec<(u32, u64)>) {
        let log = std::sync::Mutex::new(Vec::new());
        let sweep = advance_msbfs(ctx, frontier, seen, next, active, lanes, |v, nl| {
            log.lock().unwrap().push((v, nl));
        });
        let mut hits = log.into_inner().unwrap();
        hits.sort_unstable();
        (sweep, hits)
    }

    #[test]
    fn two_lanes_advance_independently() {
        let g = path4();
        let ctx = Context::new(&g);
        let mut frontier = LaneMap::take(ctx.pool(), 4);
        let mut seen = LaneMap::take(ctx.pool(), 4);
        let mut next = LaneMap::take(ctx.pool(), 4);
        // lane 0 from vertex 0, lane 1 from vertex 2
        frontier.set_lane(0, 0);
        frontier.set_lane(2, 1);
        seen.set_lane(0, 0);
        seen.set_lane(2, 1);
        let (s1, hits) = run_level(&ctx, &frontier, &mut seen, &mut next, 2, 0b11);
        assert_eq!(s1.discovered, 2, "lane 0 reaches 1, lane 1 reaches 3");
        assert_eq!(s1.lanes, 0b11);
        assert_eq!(hits, vec![(1, 0b01), (3, 0b10)]);
        // ping-pong: next becomes the frontier, old frontier is scratch
        std::mem::swap(&mut frontier, &mut next);
        next.clear_all();
        let (s2, hits) = run_level(&ctx, &frontier, &mut seen, &mut next, 2, s1.lanes);
        assert_eq!(s2.discovered, 1, "only lane 0 still moving (1 -> 2)");
        assert_eq!(s2.lanes, 0b01, "lane 1 retired at the path end");
        assert_eq!(hits, vec![(2, 0b01)]);
        for lm in [frontier, seen, next] {
            lm.release(ctx.pool());
        }
    }

    #[test]
    fn seen_lanes_are_not_rediscovered() {
        // triangle 0 -> 1 -> 2 -> 0
        let g =
            GraphBuilder::new().directed().build(Coo::from_edges(3, &[(0, 1), (1, 2), (2, 0)]));
        let ctx = Context::new(&g);
        let mut frontier = LaneMap::take(ctx.pool(), 3);
        let mut seen = LaneMap::take(ctx.pool(), 3);
        let mut next = LaneMap::take(ctx.pool(), 3);
        frontier.set_lane(0, 0);
        seen.set_lane(0, 0);
        let mut total = 0;
        let mut active = 1u64;
        let mut lanes = lane_mask(1);
        for _ in 0..4 {
            let (s, _) = run_level(&ctx, &frontier, &mut seen, &mut next, active, lanes);
            total += s.discovered;
            active = s.discovered;
            lanes = s.lanes;
            std::mem::swap(&mut frontier, &mut next);
            next.clear_all();
        }
        assert_eq!(total, 2, "lane 0 visits 1 and 2 once, then goes quiet");
        assert_eq!(lanes, 0);
        for lm in [frontier, seen, next] {
            lm.release(ctx.pool());
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_agree() {
        // star hub plus a tail, 64 lanes all seeded at the hub
        let mut edges: Vec<(u32, u32)> = (1..40).map(|v| (0, v)).collect();
        edges.push((39, 40));
        let g = GraphBuilder::new().directed().build(Coo::from_edges(41, &edges));
        let n = 41usize;
        let depths_for = |config: EngineConfig| {
            let ctx = Context::new(&g).with_config(config);
            let mut frontier = LaneMap::take(ctx.pool(), n);
            let mut seen = LaneMap::take(ctx.pool(), n);
            let mut next = LaneMap::take(ctx.pool(), n);
            for l in 0..64 {
                frontier.set_lane(0, l);
                seen.set_lane(0, l);
            }
            let depths: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
            let mut active = 1u64;
            let mut lanes = u64::MAX;
            let mut level = 1u32;
            while active > 0 {
                let s = advance_msbfs(
                    &ctx,
                    &frontier,
                    &mut seen,
                    &mut next,
                    active,
                    lanes,
                    |v, _| {
                        depths[v as usize].store(level, Ordering::Relaxed);
                    },
                );
                active = s.discovered;
                lanes = s.lanes;
                level += 1;
                std::mem::swap(&mut frontier, &mut next);
                next.clear_all();
            }
            for lm in [frontier, seen, next] {
                lm.release(ctx.pool());
            }
            depths.into_iter().map(|d| d.into_inner()).collect::<Vec<_>>()
        };
        // threshold 0 disables the serial path; a huge threshold forces it
        let parallel = depths_for(EngineConfig::default().with_serial_threshold(0));
        let serial = depths_for(EngineConfig::default().with_serial_threshold(1 << 20));
        assert_eq!(parallel, serial);
        assert_eq!(parallel[1], 1);
        assert_eq!(parallel[40], 2);
    }

    #[test]
    fn msbfs_steps_carry_lane_counts() {
        let g = path4();
        let ctx = Context::new(&g).with_stats();
        let frontier = LaneMap::take(ctx.pool(), 4);
        let mut seen = LaneMap::take(ctx.pool(), 4);
        let mut next = LaneMap::take(ctx.pool(), 4);
        frontier.set_lane(0, 0);
        frontier.set_lane(0, 5);
        seen.set_lane(0, 0);
        seen.set_lane(0, 5);
        let s = advance_msbfs(&ctx, &frontier, &mut seen, &mut next, 1, 0b100001, |_, _| {});
        assert_eq!(s.discovered, 1);
        let stats = ctx.run_stats();
        let step = &stats.steps[0];
        assert_eq!(step.strategy, "msbfs:serial");
        assert_eq!(step.lanes_active, 2);
        assert_eq!(step.output_len, 1);
        for lm in [frontier, seen, next] {
            lm.release(ctx.pool());
        }
    }

    #[test]
    fn injected_panic_poisons_and_returns_empty_sweep() {
        use gunrock_engine::faults::{FaultInjector, FaultKind, FaultPlan};
        use std::sync::Arc;
        let g = path4();
        let plan = FaultPlan::none(3).with_rate(FaultKind::Panic, 1.0);
        let ctx = Context::new(&g).with_faults(Arc::new(FaultInjector::new(plan)));
        let frontier = LaneMap::take(ctx.pool(), 4);
        let mut seen = LaneMap::take(ctx.pool(), 4);
        let mut next = LaneMap::take(ctx.pool(), 4);
        frontier.set_lane(0, 0);
        seen.set_lane(0, 0);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let s = advance_msbfs(&ctx, &frontier, &mut seen, &mut next, 1, 1, |_, _| {});
        std::panic::set_hook(prev);
        assert_eq!(s, MsbfsSweep::default());
        assert!(ctx.is_poisoned());
        for lm in [frontier, seen, next] {
            lm.release(ctx.pool());
        }
    }
}
