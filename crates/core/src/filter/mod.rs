//! The **filter** operator (§4.1): "generates a new frontier from the
//! current frontier by choosing a subset of the current frontier based on
//! programmer-specified criteria."
//!
//! Two implementations, as in Gunrock:
//!
//! * [`filter`] — the exact scan-compact filter: order-preserving, no
//!   duplicates survive if the predicate is a uniqueness test.
//! * [`culling`] — the heuristic filter used with *idempotent* advance:
//!   cheap hash/bitmask culling passes that remove most (here: all
//!   already-visited, most intra-frontier) redundant entries without
//!   atomics on the algorithm's data.

pub mod culling;

use crate::context::Context;
use crate::functor::FilterFunctor;
use crate::isolate::isolated;
use gunrock_engine::compact::compact_map;
use gunrock_engine::config::FRONTIER_SEQ_CUTOFF;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::OperatorKind;
use std::time::Instant;

/// Exact filter: keeps frontier elements whose `cond` holds, running
/// `apply` on survivors (fused), preserving order via scan-compact.
/// Panic-isolated like advance: a functor panic poisons the context and
/// returns an empty frontier.
pub fn filter<F: FilterFunctor>(ctx: &Context<'_>, input: &Frontier, functor: &F) -> Frontier {
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| Instant::now());
    let result = isolated(ctx, "filter", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("filter");
        }
        ctx.counters.add_filtered(input.len() as u64);
        let items = input.as_slice();
        if items.len() < FRONTIER_SEQ_CUTOFF || rayon::current_num_threads() == 1 {
            // small-frontier path (also taken whenever the pool has a
            // single worker thread): one serial pass into a pooled
            // buffer, zero allocations in the steady state of
            // high-diameter enact loops (the filter half of the serial
            // fast path). On one thread this also keeps iterative
            // filters (CC hooking/jumping) ping-ponging between warm
            // pooled buffers instead of walking fresh cold allocations.
            let mut out = ctx.pool().take_u32(items.len());
            for &id in items {
                if functor.cond(id) {
                    functor.apply(id);
                    out.push(id);
                }
            }
            out
        } else {
            compact_map(items, |&id| {
                if functor.cond(id) {
                    functor.apply(id);
                    Some(id)
                } else {
                    None
                }
            })
        }
    });
    let Some(kept) = result else { return Frontier::new() };
    let out = Frontier::from_vec(kept);
    if let (Some(start), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Filter,
            "scan_compact",
            None,
            input.len() as u64,
            out.len() as u64,
            0,
            start.elapsed(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::VertexCond;
    use gunrock_graph::{Coo, GraphBuilder};
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn keeps_matching_in_order() {
        let g = GraphBuilder::new().build(Coo::from_edges(10, &[(0, 1)]));
        let ctx = Context::new(&g);
        let input = Frontier::from_vec(vec![5, 2, 8, 3]);
        let out = filter(&ctx, &input, &VertexCond(|v: u32| v.is_multiple_of(2)));
        assert_eq!(out.as_slice(), &[2, 8]);
        assert_eq!(ctx.counters.elements_filtered.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn apply_runs_only_on_survivors() {
        struct Probe {
            applied: AtomicU32,
        }
        impl crate::functor::FilterFunctor for Probe {
            fn cond(&self, id: u32) -> bool {
                id < 100
            }
            fn apply(&self, _: u32) {
                self.applied.fetch_add(1, Ordering::Relaxed);
            }
        }
        let g = GraphBuilder::new().build(Coo::from_edges(2, &[(0, 1)]));
        let ctx = Context::new(&g);
        let probe = Probe { applied: AtomicU32::new(0) };
        let out = filter(&ctx, &Frontier::from_vec(vec![1, 200, 3]), &probe);
        assert_eq!(out.len(), 2);
        assert_eq!(probe.applied.load(Ordering::Relaxed), 2);
    }
}
