//! Heuristic duplicate culling for idempotent traversal (§4.1.1, §5.1).
//!
//! With an idempotent advance (no atomics guarding discovery), the output
//! frontier contains duplicates whenever frontier vertices share
//! neighbors. "Gunrock's filter step can perform a series of inexpensive
//! heuristics to reduce, but not eliminate, redundant entries":
//!
//! * **history culling** — a small per-task hash table of recently seen
//!   ids catches bursts of duplicates cheaply and *approximately*
//!   (collisions let duplicates through);
//! * **bitmask culling** — a `test_and_set` on the global visited bitmap
//!   guarantees each vertex ultimately enters a frontier at most once.
//!
//! Both are orthogonal to the user functor, which still runs fused on the
//! survivors.

use crate::context::Context;
use crate::functor::FilterFunctor;
use crate::isolate::isolated;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::bitmap::AtomicBitmap;
use gunrock_engine::config::FRONTIER_SEQ_CUTOFF;
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::OperatorKind;
use rayon::prelude::*;
use std::time::Instant;

/// Which culling heuristics to run (both on by default, as in Gunrock's
/// fastest BFS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CullingConfig {
    /// Enable the per-task history hash table.
    pub history: bool,
    /// log2 of the history table size.
    pub history_bits: u32,
    /// Enable the global visited-bitmap test-and-set.
    pub bitmask: bool,
}

impl Default for CullingConfig {
    fn default() -> Self {
        CullingConfig { history: true, history_bits: 8, bitmask: true }
    }
}

impl CullingConfig {
    /// No culling at all (duplicates pass straight through to the
    /// functor) — the ablation baseline.
    pub fn none() -> Self {
        CullingConfig { history: false, history_bits: 0, bitmask: false }
    }
}

/// Marks an unoccupied history-table slot. Cannot collide with a real
/// vertex id: graph construction rejects `num_vertices >= u32::MAX`
/// (see `Csr::validate`), so every legal id is strictly smaller.
const EMPTY_SLOT: u32 = u32::MAX;

/// Runs the culling cascade (history hash, then bitmask test-and-set,
/// then the fused user functor) over `chunk`, appending survivors to
/// `out`. `history` must be `1 << cfg.history_bits` slots of
/// `EMPTY_SLOT` when `cfg.history` holds, and may be empty otherwise.
fn cull_chunk<F: FilterFunctor>(
    chunk: &[u32],
    cfg: CullingConfig,
    history: &mut [u32],
    visited: &AtomicBitmap,
    functor: &F,
    out: &mut Vec<u32>,
) {
    let mask = history.len().wrapping_sub(1);
    for &id in chunk {
        if cfg.history {
            // cheap multiplicative hash into the small table
            // CAST: vertex ids are u32 widened to usize — lossless.
            let slot = (id as usize).wrapping_mul(0x9E37_79B9) & mask;
            if history[slot] == id {
                continue; // recently seen: cull
            }
            history[slot] = id;
        }
        if cfg.bitmask && visited.test_and_set(id as usize) {
            continue; // already discovered: cull
        }
        if functor.cond(id) {
            functor.apply(id);
            out.push(id);
        }
    }
}

/// Heuristic filter: culls redundant ids per `cfg`, then applies the
/// user functor to survivors. `visited` is the algorithm's discovery
/// bitmap (shared with the advance step in idempotent mode).
pub fn filter_with_culling<F: FilterFunctor>(
    ctx: &Context<'_>,
    input: &Frontier,
    visited: &AtomicBitmap,
    functor: &F,
    cfg: CullingConfig,
) -> Frontier {
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| Instant::now());
    let result = isolated(ctx, "filter", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("filter:culling");
        }
        ctx.counters.add_filtered(input.len() as u64);
        let items = input.as_slice();
        if items.len() < FRONTIER_SEQ_CUTOFF {
            // small-frontier path: serial cull into pooled buffers
            // (output and history table both come back from the pool),
            // so steady-state iterations allocate nothing
            let mut out = ctx.pool().take_u32(items.len());
            let mut history =
                ctx.pool().take_u32(if cfg.history { 1 << cfg.history_bits } else { 0 });
            history.resize(if cfg.history { 1 << cfg.history_bits } else { 0 }, EMPTY_SLOT);
            cull_chunk(items, cfg, &mut history, visited, functor, &mut out);
            ctx.pool().put_u32(history);
            out
        } else {
            // Large-frontier path: per-task locals sized by the split,
            // merged once. The steady-state loop of a high-diameter
            // traversal takes the pooled serial branch above instead.
            let grain = grain_size(items.len());
            let chunks: Vec<Vec<u32>> = items
                .par_chunks(grain)
                .map(|chunk| {
                    let mut local = Vec::new(); // ALLOC-OK(per-task local on the large-frontier path)
                    let mut history = if cfg.history {
                        vec![EMPTY_SLOT; 1 << cfg.history_bits] // ALLOC-OK(per-task history table, large path only)
                    } else {
                        Vec::new() // ALLOC-OK(empty sentinel, no heap)
                    };
                    cull_chunk(chunk, cfg, &mut history, visited, functor, &mut local);
                    local
                })
                .collect(); // ALLOC-OK(one merge per large-frontier launch)
            concat_chunks(chunks)
        }
    });
    let Some(merged) = result else { return Frontier::new() };
    let out = Frontier::from_vec(merged);
    if let (Some(start), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Filter,
            "culling",
            None,
            input.len() as u64,
            out.len() as u64,
            0,
            start.elapsed(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::VertexCond;
    use gunrock_graph::{Coo, GraphBuilder};

    fn ctx_fixture() -> (gunrock_graph::Csr,) {
        (GraphBuilder::new().build(Coo::from_edges(64, &[(0, 1)])),)
    }

    #[test]
    fn bitmask_guarantees_each_id_survives_once() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let dup_heavy = Frontier::from_vec(vec![3, 3, 5, 3, 5, 7, 3]);
        let out = filter_with_culling(
            &ctx,
            &dup_heavy,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        let mut v = out.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![3, 5, 7]);
        // a second pass culls everything: all already visited
        let again = filter_with_culling(
            &ctx,
            &Frontier::from_vec(vec![3, 5, 7]),
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert!(again.is_empty());
    }

    #[test]
    fn history_only_reduces_but_may_not_eliminate() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let cfg = CullingConfig { history: true, history_bits: 4, bitmask: false };
        // consecutive duplicates are caught by the history table
        let input = Frontier::from_vec(vec![9, 9, 9, 9, 2, 2]);
        let out = filter_with_culling(&ctx, &input, &visited, &VertexCond(|_| true), cfg);
        assert_eq!(out.len(), 2);
        // visited bitmap untouched in history-only mode
        assert_eq!(visited.count_ones(), 0);
    }

    #[test]
    fn no_culling_passes_duplicates_to_functor() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let input = Frontier::from_vec(vec![1, 1, 1]);
        let out = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::none(),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn functor_cond_still_applies_after_culling() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let input = Frontier::from_vec(vec![2, 3, 4, 5]);
        let out = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|v: u32| v.is_multiple_of(2)),
            CullingConfig::default(),
        );
        let mut v = out.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 4]);
        // note: culled-by-functor ids are still marked visited (they were
        // discovered), matching BFS semantics where cond is a validity
        // test on already-labeled vertices
        assert_eq!(visited.count_ones(), 4);
    }
}
