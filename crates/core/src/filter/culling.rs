//! Heuristic duplicate culling for idempotent traversal (§4.1.1, §5.1).
//!
//! With an idempotent advance (no atomics guarding discovery), the output
//! frontier contains duplicates whenever frontier vertices share
//! neighbors. "Gunrock's filter step can perform a series of inexpensive
//! heuristics to reduce, but not eliminate, redundant entries":
//!
//! * **history culling** — a small per-task hash table of recently seen
//!   ids catches bursts of duplicates cheaply and *approximately*
//!   (collisions let duplicates through);
//! * **bitmask culling** — a `test_and_set` on the global visited bitmap
//!   guarantees each vertex ultimately enters a frontier at most once.
//!
//! Both are orthogonal to the user functor, which still runs fused on the
//! survivors.
//!
//! Two input shapes are supported: [`filter_with_culling`] takes a sparse
//! id-list frontier (the push-direction form), while
//! [`filter_with_culling_bitmap`] takes the dense [`PooledBitmap`] a
//! masked pull sweep produced and culls a whole word per `fetch_or` —
//! the GraphBLAST masked view, where "filter" degenerates into a word-wise
//! mask merge plus survivor extraction.

use crate::context::Context;
use crate::functor::FilterFunctor;
use crate::isolate::isolated;
use crate::util::{concat_chunks, grain_size};
use gunrock_engine::bitmap::{BitSet, PooledBitmap};
use gunrock_engine::config::{FRONTIER_SEQ_CUTOFF, SEQUENTIAL_CUTOFF};
use gunrock_engine::frontier::Frontier;
use gunrock_engine::stats::OperatorKind;
use rayon::prelude::*;
use std::time::Instant;

/// Which culling heuristics to run (both on by default, as in Gunrock's
/// fastest BFS).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CullingConfig {
    /// Enable the per-task history hash table.
    pub history: bool,
    /// log2 of the history table size.
    pub history_bits: u32,
    /// Enable the global visited-bitmap test-and-set.
    pub bitmask: bool,
}

impl Default for CullingConfig {
    fn default() -> Self {
        CullingConfig { history: true, history_bits: 8, bitmask: true }
    }
}

impl CullingConfig {
    /// No culling at all (duplicates pass straight through to the
    /// functor) — the ablation baseline.
    pub fn none() -> Self {
        CullingConfig { history: false, history_bits: 0, bitmask: false }
    }
}

/// Marks an unoccupied history-table slot. Cannot collide with a real
/// vertex id: graph construction rejects `num_vertices >= u32::MAX`
/// (see `Csr::validate`), so every legal id is strictly smaller.
const EMPTY_SLOT: u32 = u32::MAX;

/// Item interval between cooperative abort polls inside one cull chunk:
/// a raised cancel flag or expired deadline truncates the chunk instead
/// of overshooting by a whole filter launch.
const ABORT_POLL_ITEMS: u32 = 1024;

/// Runs the culling cascade (history hash, then bitmask test-and-set,
/// then the fused user functor) over `chunk`, appending survivors to
/// `out`. `history` must be `1 << cfg.history_bits` slots of
/// `EMPTY_SLOT` when `cfg.history` holds, and may be empty otherwise.
/// Polls `ctx` for a cancel/deadline abort and returns early (survivors
/// so far stay in `out`); the enact loop's guard discards the partial
/// frontier at the next boundary. Truncation is suppressed when a
/// checkpoint policy is active ([`Context::abort_mid_operator`]), so
/// snapshot boundaries always see a complete cull.
fn cull_chunk<F: FilterFunctor, B: BitSet>(
    ctx: &Context<'_>,
    chunk: &[u32],
    cfg: CullingConfig,
    history: &mut [u32],
    visited: &B,
    functor: &F,
    out: &mut Vec<u32>,
) {
    if ctx.abort_mid_operator() {
        return;
    }
    let mask = history.len().wrapping_sub(1);
    let mut since_poll = 0u32;
    for &id in chunk {
        since_poll += 1;
        if since_poll >= ABORT_POLL_ITEMS {
            since_poll = 0;
            if ctx.abort_mid_operator() {
                return;
            }
        }
        if cfg.history {
            // cheap multiplicative hash into the small table
            // CAST: vertex ids are u32 widened to usize — lossless.
            let slot = (id as usize).wrapping_mul(0x9E37_79B9) & mask;
            if history[slot] == id {
                continue; // recently seen: cull
            }
            history[slot] = id;
        }
        if cfg.bitmask && visited.test_and_set(id as usize) {
            continue; // already discovered: cull
        }
        if functor.cond(id) {
            functor.apply(id);
            out.push(id);
        }
    }
}

/// Heuristic filter: culls redundant ids per `cfg`, then applies the
/// user functor to survivors. `visited` is the algorithm's discovery
/// bitmap (shared with the advance step in idempotent mode).
pub fn filter_with_culling<F: FilterFunctor, B: BitSet>(
    ctx: &Context<'_>,
    input: &Frontier,
    visited: &B,
    functor: &F,
    cfg: CullingConfig,
) -> Frontier {
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| Instant::now());
    let result = isolated(ctx, "filter", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("filter:culling");
        }
        ctx.counters.add_filtered(input.len() as u64);
        let items = input.as_slice();
        if items.len() < FRONTIER_SEQ_CUTOFF {
            // small-frontier path: serial cull into pooled buffers
            // (output and history table both come back from the pool),
            // so steady-state iterations allocate nothing
            let mut out = ctx.pool().take_u32(items.len());
            let mut history =
                ctx.pool().take_u32(if cfg.history { 1 << cfg.history_bits } else { 0 });
            history.resize(if cfg.history { 1 << cfg.history_bits } else { 0 }, EMPTY_SLOT);
            cull_chunk(ctx, items, cfg, &mut history, visited, functor, &mut out);
            ctx.pool().put_u32(history);
            out
        } else {
            // Large-frontier path: per-task locals sized by the split,
            // merged once. The steady-state loop of a high-diameter
            // traversal takes the pooled serial branch above instead.
            let grain = grain_size(items.len());
            let chunks: Vec<Vec<u32>> = items
                .par_chunks(grain)
                .map(|chunk| {
                    let mut local = Vec::new(); // ALLOC-OK(per-task local on the large-frontier path)
                    let mut history = if cfg.history {
                        vec![EMPTY_SLOT; 1 << cfg.history_bits] // ALLOC-OK(per-task history table, large path only)
                    } else {
                        Vec::new() // ALLOC-OK(empty sentinel, no heap)
                    };
                    cull_chunk(ctx, chunk, cfg, &mut history, visited, functor, &mut local);
                    local
                })
                .collect(); // ALLOC-OK(one merge per large-frontier launch)
            concat_chunks(chunks)
        }
    });
    let Some(merged) = result else { return Frontier::new() };
    let out = Frontier::from_vec(merged);
    if let (Some(start), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Filter,
            "culling",
            None,
            input.len() as u64,
            out.len() as u64,
            0,
            start.elapsed(),
        );
    }
    out
}

/// Word-range cull for the bitmap input shape: for each non-zero word of
/// `input` in `lo..hi`, one `fetch_or_word` against `visited` marks every
/// incoming id discovered (including ids the functor later rejects —
/// the same discovery semantics as the list path) and yields the
/// newly-discovered subset in a single word op; survivors of the fused
/// functor are appended to `out` in ascending id order. Zero input words
/// (and words `visited` already saturates, which `fetch_or` reports as
/// `newly == 0`) are skipped without per-bit work. Polls for
/// cancel/deadline aborts like [`cull_chunk`].
#[allow(clippy::too_many_arguments)]
fn cull_words<F: FilterFunctor, B: BitSet>(
    ctx: &Context<'_>,
    input: &PooledBitmap,
    lo: usize,
    hi: usize,
    cfg: CullingConfig,
    visited: &B,
    functor: &F,
    out: &mut Vec<u32>,
) {
    if ctx.abort_mid_operator() {
        return;
    }
    let mut since_poll = 0u32;
    for wi in lo..hi {
        let w = input.load_word(wi);
        if w == 0 {
            continue; // whole-word skip: 64 absent ids
        }
        let mut bits = if cfg.bitmask { w & !visited.fetch_or_word(wi, w) } else { w };
        // CAST: wi * 64 < num_vertices < u32::MAX by Csr::validate.
        let base = (wi * 64) as u32;
        while bits != 0 {
            let b = bits.trailing_zeros();
            bits &= bits - 1;
            let id = base + b;
            since_poll += 1;
            if since_poll >= ABORT_POLL_ITEMS {
                since_poll = 0;
                if ctx.abort_mid_operator() {
                    return;
                }
            }
            if functor.cond(id) {
                functor.apply(id);
                out.push(id);
            }
        }
    }
}

/// The bitmap-shaped culling filter: takes the dense output of a masked
/// pull sweep, merges it into `visited` one `fetch_or` per word, and
/// extracts the next list frontier from the newly-discovered bits.
///
/// A bitmap cannot hold duplicates, so `cfg.history` is irrelevant here
/// and ignored; `cfg.bitmask` off degenerates into plain extraction of
/// every set bit. The returned frontier's storage comes from the
/// context's buffer pool — hand it back via [`Context::recycle`] (the
/// enact loops already do) to keep steady state allocation-free.
pub fn filter_with_culling_bitmap<F: FilterFunctor, B: BitSet>(
    ctx: &Context<'_>,
    input: &PooledBitmap,
    visited: &B,
    functor: &F,
    cfg: CullingConfig,
) -> Frontier {
    assert_eq!(input.len(), visited.len(), "input and visited bitmaps must span the same ids");
    // Kernel-launch boundary for the racecheck phase ledger.
    gunrock_engine::racecheck::begin_phase();
    let timer = ctx.sink().map(|_| Instant::now());
    let input_pop = input.count_ones();
    let result = isolated(ctx, "filter", || {
        if let Some(inj) = ctx.injector() {
            inj.maybe_panic("filter:culling_bitmap");
        }
        ctx.counters.add_filtered(input_pop as u64);
        let nw = input.word_count();
        if input.len() < SEQUENTIAL_CUTOFF {
            // small-graph path: one serial sweep into a pooled buffer
            let mut out = ctx.pool().take_u32(input_pop);
            cull_words(ctx, input, 0, nw, cfg, visited, functor, &mut out);
            out
        } else {
            // Parallel path over disjoint word ranges. Each task sizes its
            // pooled buffer by a popcount pre-pass: the count is exact, so
            // pushes never grow the buffer (a grown buffer would land in a
            // different pool size class and leak out of steady state).
            let wgrain = grain_size(nw);
            let parts: Vec<Vec<u32>> = (0..nw.div_ceil(wgrain))
                .into_par_iter()
                .map(|ci| {
                    let lo = ci * wgrain;
                    let hi = (lo + wgrain).min(nw);
                    // CAST: count_ones() of a u64 is at most 64, far below usize::MAX.
                    let pop: usize =
                        (lo..hi).map(|wi| input.load_word(wi).count_ones() as usize).sum();
                    let mut local = ctx.pool().take_u32(pop);
                    cull_words(ctx, input, lo, hi, cfg, visited, functor, &mut local);
                    local
                })
                .collect(); // ALLOC-OK(one merge per bitmap-filter launch)
            let total: usize = parts.iter().map(Vec::len).sum();
            let mut out = ctx.pool().take_u32(total);
            for p in parts {
                out.extend_from_slice(&p);
                ctx.pool().put_u32(p);
            }
            out
        }
    });
    let Some(merged) = result else { return Frontier::new() };
    let out = Frontier::from_vec(merged);
    if let (Some(start), Some(sink)) = (timer, ctx.sink()) {
        sink.record_step(
            OperatorKind::Filter,
            "culling_bitmap",
            None,
            input_pop as u64,
            out.len() as u64,
            0,
            start.elapsed(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functor::VertexCond;
    use gunrock_engine::bitmap::AtomicBitmap;
    use gunrock_graph::{Coo, GraphBuilder};

    fn ctx_fixture() -> (gunrock_graph::Csr,) {
        (GraphBuilder::new().build(Coo::from_edges(64, &[(0, 1)])),)
    }

    #[test]
    fn bitmask_guarantees_each_id_survives_once() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let dup_heavy = Frontier::from_vec(vec![3, 3, 5, 3, 5, 7, 3]);
        let out = filter_with_culling(
            &ctx,
            &dup_heavy,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        let mut v = out.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![3, 5, 7]);
        // a second pass culls everything: all already visited
        let again = filter_with_culling(
            &ctx,
            &Frontier::from_vec(vec![3, 5, 7]),
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert!(again.is_empty());
    }

    #[test]
    fn history_only_reduces_but_may_not_eliminate() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let cfg = CullingConfig { history: true, history_bits: 4, bitmask: false };
        // consecutive duplicates are caught by the history table
        let input = Frontier::from_vec(vec![9, 9, 9, 9, 2, 2]);
        let out = filter_with_culling(&ctx, &input, &visited, &VertexCond(|_| true), cfg);
        assert_eq!(out.len(), 2);
        // visited bitmap untouched in history-only mode
        assert_eq!(visited.count_ones(), 0);
    }

    #[test]
    fn raised_cancel_flag_truncates_the_cull() {
        use crate::policy::RunPolicy;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // large synthetic frontier (well past FRONTIER_SEQ_CUTOFF) of
        // distinct ids, so an uncancelled run keeps every one of them
        let n: u32 = 200_000;
        let g = GraphBuilder::new().build(Coo::from_edges(n as usize, &[(0, 1)]));
        let flag = Arc::new(AtomicBool::new(false));
        let ctx =
            Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
        let input = Frontier::from_vec((0..n).collect());
        let visited = AtomicBitmap::new(n as usize);
        let full = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert_eq!(full.len(), n as usize);
        // flag up before launch: every chunk returns at its entry poll
        flag.store(true, Ordering::Release);
        let fresh_visited = AtomicBitmap::new(n as usize);
        let truncated = filter_with_culling(
            &ctx,
            &input,
            &fresh_visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert!(
            truncated.len() < full.len(),
            "cancel mid-operator must truncate: got {} of {}",
            truncated.len(),
            full.len()
        );
        assert!(!ctx.is_poisoned(), "cooperative abort is not a failure");
    }

    #[test]
    fn raised_cancel_flag_truncates_the_bitmap_cull() {
        use crate::policy::RunPolicy;
        use gunrock_engine::bitmap::PooledBitmap;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Arc;
        // dense input bitmap well past SEQUENTIAL_CUTOFF, so the parallel
        // word-range path runs and each task hits its entry/mid polls
        let n: u32 = 200_000;
        let g = GraphBuilder::new().build(Coo::from_edges(n as usize, &[(0, 1)]));
        let flag = Arc::new(AtomicBool::new(false));
        let ctx =
            Context::new(&g).with_policy(RunPolicy::unbounded().cancel_flag(flag.clone()));
        let mut input = PooledBitmap::take(ctx.pool(), n as usize);
        input.fill_from_frontier(&Frontier::from_vec((0..n).collect()));
        let visited = AtomicBitmap::new(n as usize);
        let full = filter_with_culling_bitmap(
            &ctx,
            &input,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert_eq!(full.len(), n as usize);
        // flag up before launch: every word-range task bails at a poll
        flag.store(true, Ordering::Release);
        let fresh_visited = AtomicBitmap::new(n as usize);
        let truncated = filter_with_culling_bitmap(
            &ctx,
            &input,
            &fresh_visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        assert!(
            truncated.len() < full.len(),
            "cancel mid-operator must truncate: got {} of {}",
            truncated.len(),
            full.len()
        );
        assert!(!ctx.is_poisoned(), "cooperative abort is not a failure");
        input.release(ctx.pool());
    }

    #[test]
    fn no_culling_passes_duplicates_to_functor() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let input = Frontier::from_vec(vec![1, 1, 1]);
        let out = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::none(),
        );
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn bitmap_filter_extracts_new_bits_and_merges_visited() {
        use gunrock_engine::bitmap::PooledBitmap;
        let g = GraphBuilder::new().build(Coo::from_edges(128, &[(0, 1)]));
        let ctx = Context::new(&g);
        let input = PooledBitmap::take(ctx.pool(), 128);
        for v in [3usize, 5, 7, 70] {
            input.set(v);
        }
        let visited = AtomicBitmap::new(128);
        visited.set(5); // already discovered: must be culled
        let out = filter_with_culling_bitmap(
            &ctx,
            &input,
            &visited,
            &VertexCond(|v: u32| v != 70),
            CullingConfig::default(),
        );
        assert_eq!(out.as_slice(), &[3, 7]);
        // discovery semantics: the cond-rejected id is still marked
        // visited, exactly as the list path does
        assert!(visited.get(70));
        assert_eq!(visited.count_ones(), 4);
        input.release(ctx.pool());
    }

    #[test]
    fn bitmap_filter_parallel_path_matches_serial_semantics() {
        use gunrock_engine::bitmap::PooledBitmap;
        let n = 10_000usize; // past SEQUENTIAL_CUTOFF: exercises word-chunked path
        let g = GraphBuilder::new().build(Coo::from_edges(n, &[(0, 1)]));
        let ctx = Context::new(&g);
        let input = PooledBitmap::take(ctx.pool(), n);
        for v in (0..n).step_by(3) {
            input.set(v);
        }
        let visited = AtomicBitmap::new(n);
        for v in (0..n).step_by(9) {
            visited.set(v);
        }
        let out = filter_with_culling_bitmap(
            &ctx,
            &input,
            &visited,
            &VertexCond(|_| true),
            CullingConfig::default(),
        );
        let expect: Vec<u32> = (0..n as u32).filter(|v| v % 3 == 0 && v % 9 != 0).collect();
        assert_eq!(out.as_slice(), expect.as_slice());
        // every input bit is merged into visited
        assert_eq!(visited.count_ones(), n.div_ceil(3));
        input.release(ctx.pool());
    }

    #[test]
    fn functor_cond_still_applies_after_culling() {
        let (g,) = ctx_fixture();
        let ctx = Context::new(&g);
        let visited = AtomicBitmap::new(64);
        let input = Frontier::from_vec(vec![2, 3, 4, 5]);
        let out = filter_with_culling(
            &ctx,
            &input,
            &visited,
            &VertexCond(|v: u32| v.is_multiple_of(2)),
            CullingConfig::default(),
        );
        let mut v = out.into_vec();
        v.sort_unstable();
        assert_eq!(v, vec![2, 4]);
        // note: culled-by-functor ids are still marked visited (they were
        // discovered), matching BFS semantics where cond is a validity
        // test on already-labeled vertices
        assert_eq!(visited.count_ones(), 4);
    }
}
